//! Persist and reload scheduling artefacts: the scheme text format, the
//! textual instruction listing, and the binary instruction encoding —
//! the outputs a compiler backend would archive (paper Sec. V-A/V-F).
//!
//! Run with: `cargo run --release --example save_restore`

use soma::core::{isa, lower, read_scheme, write_scheme, ParsedSchedule};
use soma::model::zoo;
use soma::prelude::*;

fn main() {
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.3, seed: 11, ..SearchConfig::default() };

    // Search round by round — a stepping session can be paused, observed
    // or abandoned between allocator rounds — then serialise the best.
    let mut session = Scheduler::new(&net, &hw).config(cfg).build();
    while session.step() == StepOutcome::Running {
        eprintln!(
            "allocator round {} done: best cost {:.3e}, {} evals",
            session.rounds(),
            session.best().map_or(f64::NAN, |b| b.cost),
            session.evals()
        );
    }
    let outcome = session.into_outcome();
    let scheme_text = write_scheme(&net, &outcome.best.encoding);
    println!("--- scheme file ---\n{scheme_text}");

    // Reload it and verify it reproduces the exact same evaluation.
    let reloaded = read_scheme(&net, &scheme_text).expect("scheme round-trips");
    let sched = ParsedSchedule::new(&net, &reloaded).expect("reloaded scheme parses");
    let report = evaluate(&net, &sched, &hw).expect("reloaded scheme simulates");
    assert_eq!(report.latency_cycles, outcome.best.report.latency_cycles);
    println!("reloaded scheme reproduces latency: {} cycles\n", report.latency_cycles);

    // Lower to instructions; show the listing and the binary round trip.
    let prog = lower(&sched);
    println!("--- instruction listing (first 12 lines) ---");
    for line in prog.to_text().lines().take(12) {
        println!("{line}");
    }
    let bytes = isa::encode(&prog);
    let back = isa::decode(&bytes).expect("binary round-trips");
    assert_eq!(back, prog);
    println!(
        "\nbinary program: {} bytes for {} instructions (round-trip verified)",
        bytes.len(),
        prog.len()
    );
}
