//! Walkthrough of the tensor-centric notation on the paper's Fig. 4
//! five-layer network: encode an LFA with mixed FLC/DRAM cuts, parse both
//! stages, and print the derived tiles, DRAM tensors and buffer profile.
//!
//! Run with: `cargo run --release --example notation_parse`

use soma::core::{lifetime, lower, parse_lfa, Dlsa, Lfa};
use soma::model::zoo;

fn main() {
    let net = zoo::fig4(1);

    // The paper's example: order [A,B,C,E,D], FLC {1,2}, DRAM cut {2},
    // tiling numbers A:2, B:1, [C,E,D]:2.
    let mut lfa = Lfa::fully_fused(&net, 2);
    lfa.flc = [1, 2].into_iter().collect();
    lfa.dram_cuts = [2].into_iter().collect();
    lfa.tiling = vec![2, 1, 2];

    let plan = parse_lfa(&net, &lfa).expect("the Fig. 4 encoding is valid");

    println!("COMPUTE row ({} tiles):", plan.n_tiles());
    for (pos, t) in plan.tiles.iter().enumerate() {
        println!(
            "  [{pos:>2}] {}{}  flg={} lg={}  ops={:>9}  out={}B (nominal {}B)",
            net.layer(t.layer).name,
            t.tile_idx + 1,
            t.flg,
            t.lg,
            t.ops,
            t.out_bytes,
            t.out_bytes_nom
        );
    }

    println!("\nDRAM tensors (canonical need-order):");
    for (i, t) in plan.dram_tensors.iter().enumerate() {
        println!(
            "  [{i:>2}] {:?}  {}B  {}  anchor tile {} (last use {})",
            t.kind,
            t.bytes,
            if t.is_load { "load" } else { "store" },
            t.anchor,
            t.last_use
        );
    }

    let dlsa = Dlsa::double_buffer(&plan);
    let profile = lifetime::buffer_profile(&plan, &dlsa);
    println!("\nBuffer profile under double-buffer DLSA (bytes per tile):");
    for (pos, b) in profile.iter().enumerate() {
        println!("  tile {pos:>2}: {b:>8} B");
    }

    let prog = lower(&soma::core::ParsedSchedule { plan, dlsa });
    println!(
        "\nlowered program: {} DRAM instructions, {} compute instructions",
        prog.dram_queue.len(),
        prog.compute_queue.len()
    );
}
