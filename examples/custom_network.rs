//! Bring your own model: build a custom DNN with [`NetworkBuilder`],
//! schedule it with SoMa, and inspect what the scheduler decided — the
//! downstream-user workflow (model description in, scheme + reports out,
//! paper Sec. V-A).
//!
//! Run with: `cargo run --release --example custom_network`

use soma::core::write_scheme;
use soma::model::{EltOp, VecOp};
use soma::prelude::*;

fn main() {
    // A small detection-style backbone: strided stem, two residual
    // stages, a depthwise block, and a two-headed output.
    let mut b = NetworkBuilder::new("custom-backbone", 1);
    let img = b.external(FmapShape::new(1, 3, 128, 128));
    let stem = b.conv("stem", &[img], 32, 3, 2);
    let s1a = b.conv("s1a", &[stem], 64, 3, 1);
    let s1b = b.conv("s1b", &[s1a], 64, 3, 1);
    let res1 = b.eltwise("res1", EltOp::Add, &[s1a, s1b]);
    let act1 = b.vector("act1", VecOp::Relu, res1);
    let down = b.conv("down", &[act1], 128, 3, 2);
    let dw = b.dwconv("dw", down, 3, 1);
    let pw = b.conv("pw", &[dw], 128, 1, 1);
    let head_a = b.conv("head_box", &[pw], 16, 1, 1);
    let head_b = b.conv("head_cls", &[pw], 80, 1, 1);
    b.mark_output(head_a);
    b.mark_output(head_b);
    let net = b.finish();

    println!(
        "{}: {} layers, {:.0} MOPs, {:.0} KB weights",
        net.name(),
        net.len(),
        net.total_ops() as f64 / 1e6,
        net.total_weight_bytes() as f64 / 1024.0
    );

    // Portfolio mode: race four seeds in parallel, keep the envelope best.
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.4, ..SearchConfig::default() };
    let out = Scheduler::new(&net, &hw).config(cfg).seeds([77, 78, 79, 80]).run();
    let shape = out.shape(&net);

    println!(
        "best scheme: {} LGs / {} FLGs / {} tiles, latency {} cycles ({:.3} ms), \
         energy {:.3} mJ, peak buffer {:.2} MB",
        shape.lgs,
        shape.flgs,
        shape.tiles,
        out.best.report.latency_cycles,
        hw.cycles_to_seconds(out.best.report.latency_cycles) * 1e3,
        out.best.report.energy.total_pj() / 1e9,
        out.best.report.peak_buffer as f64 / (1 << 20) as f64
    );
    println!("\n--- scheme (save this next to your model) ---");
    println!("{}", write_scheme(&net, &out.best.encoding));
}
