//! GPT-2 prefill vs decode scheduling: reproduces the paper's LLM analysis
//! (Sec. VI-B) — decode has so little compute density that DRAM scheduling
//! barely helps, and utilisation saturates with batch size as the KV cache
//! grows comparable to the weights.
//!
//! Run with: `cargo run --release --example gpt2_llm [effort]`

use soma::model::zoo;
use soma::prelude::*;

fn main() {
    let effort: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let hw = HardwareConfig::edge();
    let seq = 512;

    println!("GPT-2-Small on {} (token length {seq}), effort {effort}\n", hw.name);
    println!(
        "{:<22} {:>6} {:>12} {:>10} {:>12}",
        "workload", "batch", "latency(ms)", "util", "energy(mJ)"
    );

    for batch in [1u32, 4, 16, 64] {
        for (phase, net) in [
            ("prefill", zoo::gpt2_small_prefill(batch, seq)),
            ("decode", zoo::gpt2_small_decode(batch, seq)),
        ] {
            let cfg = SearchConfig { effort, seed: 7, ..SearchConfig::default() };
            let out = Scheduler::new(&net, &hw).config(cfg).run();
            println!(
                "{:<22} {:>6} {:>12.3} {:>9.2}% {:>12.2}",
                format!("gpt2-small-{phase}"),
                batch,
                hw.cycles_to_seconds(out.best.report.latency_cycles) * 1e3,
                100.0 * out.best.report.compute_util,
                out.best.report.energy.total_pj() / 1e9
            );
        }
    }

    println!("\nExpected shape (paper Sec. VI-B): decode utilisation stays in the");
    println!("low single digits and grows sublinearly with batch because the KV");
    println!("cache load grows with batch while weights do not.");
}
