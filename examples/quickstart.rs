//! Quickstart: schedule the paper's Fig. 2 three-layer network on the edge
//! accelerator and compare the classical double-buffer baseline against the
//! full SoMa exploration, watching the search progress through a
//! [`Scheduler`] observer.
//!
//! Run with: `cargo run --release --example quickstart [effort]`

use soma::core::{Encoding, Lfa, ParsedSchedule};
use soma::model::zoo;
use soma::prelude::*;
use soma::sim::render_gantt;

fn main() {
    let effort: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();

    println!(
        "network: {} ({} layers, {:.2} GOPs, {:.2} MB weights)",
        net.name(),
        net.len(),
        net.total_ops() as f64 / 1e9,
        net.total_weight_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "hardware: {} ({} TOPS, {} MB GBUF, {} GB/s DRAM)\n",
        hw.name,
        hw.peak_tops(),
        hw.buffer_bytes >> 20,
        hw.dram_bytes_per_cycle
    );

    // Baseline: no fusion, minimum-granularity tiles, double-buffer DLSA.
    let baseline = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 4)))
        .expect("unfused encoding always parses");
    let base_report = evaluate(&net, &baseline, &hw).expect("double-buffer never deadlocks");
    println!("unfused double-buffer baseline:");
    println!("  latency       {} cycles", base_report.latency_cycles);
    println!("  energy        {:.3} mJ", base_report.energy.total_pj() / 1e9);
    println!("  compute util  {:.1}%", 100.0 * base_report.compute_util);
    println!("  DRAM traffic  {:.2} MB\n", base_report.dram_bytes as f64 / (1 << 20) as f64);

    // Full SoMa exploration (buffer allocator + two SA stages), with a
    // progress observer: every allocator round and stage reports in.
    let cfg = SearchConfig { effort, seed: 42, ..SearchConfig::default() };
    let outcome = Scheduler::new(&net, &hw)
        .config(cfg)
        .observer(|ev| match ev {
            SearchEvent::RoundStarted { round, stage1_budget } => {
                eprintln!(
                    "round {round}: stage-1 budget {:.2} MB",
                    *stage1_budget as f64 / (1 << 20) as f64
                );
            }
            SearchEvent::StageFinished { stage, cost, .. } => {
                eprintln!("  stage {stage}: cost {cost:.3e}");
            }
            SearchEvent::NewBest { cost, .. } => eprintln!("  new best: cost {cost:.3e}"),
            _ => {}
        })
        .run();
    println!("SoMa stage 1 (layer fusion, double-buffer):");
    println!("  latency       {} cycles", outcome.stage1.report.latency_cycles);
    println!("  energy        {:.3} mJ", outcome.stage1.report.energy.total_pj() / 1e9);
    println!("SoMa stage 2 (prefetch & delayed store):");
    println!("  latency       {} cycles", outcome.best.report.latency_cycles);
    println!("  energy        {:.3} mJ", outcome.best.report.energy.total_pj() / 1e9);
    println!(
        "  compute util  {:.1}% (theoretical max {:.1}%)",
        100.0 * outcome.best.report.compute_util,
        100.0 * outcome.best.report.theoretical_max_util
    );
    println!(
        "  speedup over baseline: {:.2}x\n",
        base_report.latency_cycles as f64 / outcome.best.report.latency_cycles as f64
    );

    // Execution graph of the final scheme (paper Fig. 8 style).
    let sched = ParsedSchedule::new(&net, &outcome.best.encoding).expect("best scheme parses");
    println!("{}", render_gantt(&net, &sched, &outcome.best.report.timeline, 100));
}
