//! Describe a scenario as *data*: the same custom backbone as
//! `examples/custom_network.rs`, but the network arrives as a
//! `soma-network v1` spec string instead of hand-written builder code,
//! and the platform is named through the scenario registry — nothing to
//! recompile when the model or platform changes.
//!
//! Run with: `cargo run --release --example scenario_file`

use soma::prelude::*;
use soma::spec::registry;

/// A small detection-style backbone: strided stem, a residual stage, a
/// depthwise block, and a two-headed output — in the text format a
/// downstream user would commit next to their model.
const BACKBONE: &str = "\
soma-network v1
name custom-backbone
precision 1
input img 1x3x128x128
conv stem from img cout=32 k=3x3 stride=2
conv s1a from stem cout=64 k=3x3 stride=1
conv s1b from s1a cout=64 k=3x3 stride=1
eltwise res1 add from s1a s1b
vector act1 relu from res1
conv down from act1 cout=128 k=3x3 stride=2
dwconv dw from down k=3 stride=1
conv pw from dw cout=128 k=1x1 stride=1
conv head_box from pw cout=16 k=1x1 stride=1
conv head_cls from pw cout=80 k=1x1 stride=1
output head_box head_cls
end
";

fn main() {
    let net = read_network(BACKBONE).expect("the committed spec parses");
    println!(
        "{}: {} layers, {:.0} MOPs, {:.0} KB weights (parsed from a spec string)",
        net.name(),
        net.len(),
        net.total_ops() as f64 / 1e6,
        net.total_weight_bytes() as f64 / 1024.0
    );

    // Hardware comes from the registry: any `<workload>@<preset>/b<n>`
    // id names a platform; here we only borrow its preset.
    let scenario = registry::lookup("fig2@edge/b1").expect("registry id resolves");
    let hw = scenario.hardware();

    let cfg = SearchConfig { effort: 0.4, ..SearchConfig::default() };
    let out = Scheduler::new(&net, &hw).config(cfg).seeds([77, 78, 79, 80]).run();
    let shape = out.shape(&net);
    println!(
        "best scheme on {}: {} LGs / {} FLGs / {} tiles, latency {} cycles ({:.3} ms), \
         energy {:.3} mJ",
        hw.name,
        shape.lgs,
        shape.flgs,
        shape.tiles,
        out.best.report.latency_cycles,
        hw.cycles_to_seconds(out.best.report.latency_cycles) * 1e3,
        out.best.report.energy.total_pj() / 1e9,
    );

    // The network round-trips: regenerating the spec from the parsed
    // graph and reading it back yields the identical layer graph, so
    // specs and code never drift.
    let regenerated = write_network(&net);
    let back = read_network(&regenerated).expect("regenerated spec parses");
    assert_eq!(back.layers(), net.layers());
    assert_eq!(back.outputs(), net.outputs());
    println!("spec round-trips bit-identically ({} bytes regenerated)", regenerated.len());
}
