//! Miniature design-space exploration (paper Fig. 7): latency of the best
//! SoMa scheme over a buffer-size x DRAM-bandwidth grid for a 16-TOPS edge
//! accelerator.
//!
//! Run with: `cargo run --release --example dse_sweep [batch] [effort]`

use soma::model::zoo;
use soma::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let effort: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);

    let net = zoo::resnet50(batch);
    let buffers_mib = [2u64, 4, 8, 16, 32];
    let bandwidths = [8.0f64, 16.0, 32.0, 64.0, 128.0];

    println!("{} batch {batch}: latency (ms) of the best SoMa scheme\n", net.name());
    print!("{:>10}", "buf\\bw");
    for bw in bandwidths {
        print!("{bw:>9.0}GB");
    }
    println!();

    for mib in buffers_mib {
        print!("{:>8}MB", mib);
        for bw in bandwidths {
            let hw = HardwareConfig::builder()
                .like(&HardwareConfig::edge())
                .name(format!("edge-{mib}MB-{bw}GBps"))
                .buffer_mib(mib)
                .dram_gbps(bw)
                .build();
            let cfg = SearchConfig { effort, seed: 99, ..SearchConfig::default() };
            let out = Scheduler::new(&net, &hw).config(cfg).run();
            print!("{:>11.2}", hw.cycles_to_seconds(out.best.report.latency_cycles) * 1e3);
        }
        println!();
    }

    println!("\nExpected shape (paper Fig. 7): at batch 1 bandwidth dominates (rows");
    println!("barely matter); larger buffers substitute for bandwidth as batch grows.");
}
