//! Execution-graph comparison (paper Fig. 8): render the DRAM/COMPUTE
//! timelines of Cocco, SoMa stage 1, and SoMa stage 2 on one network to
//! *see* where prefetching and delayed storing erase stalls.
//!
//! Run with: `cargo run --release --example execution_graph`

use soma::core::ParsedSchedule;
use soma::model::zoo;
use soma::prelude::*;
use soma::sim::{attribute_stalls, render_gantt, summarize};

fn main() {
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.5, seed: 2024, ..SearchConfig::default() };

    let cocco = Scheduler::cocco(&net, &hw).config(cfg.clone()).run().best;
    let soma = Scheduler::new(&net, &hw).config(cfg).run();

    for (title, eval) in [
        ("Cocco", &cocco),
        ("SoMa stage 1 (fusion only, double-buffer)", &soma.stage1),
        ("SoMa stage 2 (+ prefetch & delayed store)", &soma.best),
    ] {
        println!("=== {title} ===");
        let sched = ParsedSchedule::new(&net, &eval.encoding).expect("scheme parses");
        println!("{}", render_gantt(&net, &sched, &eval.report.timeline, 100));
        let stalls = attribute_stalls(&sched.plan, &sched.dlsa, &eval.report.timeline);
        let summary = summarize(&stalls);
        println!(
            "cost (E*D): {:.3e} | compute stall: {} cycles \
             (waiting on weights {}, ifmaps {}, stores {})\n",
            eval.cost,
            eval.report.timeline.compute_stall(),
            summary.weight_cycles,
            summary.ifmap_cycles,
            summary.store_cycles
        );
    }
}
