//! ResNet-50 on the 16-TOPS edge accelerator: the paper's default CNN
//! workload (Sec. VI-A). Compares Cocco against SoMa's two stages, the
//! breakdown behind Fig. 6's leftmost group.
//!
//! Run with: `cargo run --release --example resnet_edge [batch] [effort]`

use soma::model::zoo;
use soma::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let effort: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let net = zoo::resnet50(batch);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort, seed: 1234, ..SearchConfig::default() };

    println!(
        "{} | batch {batch} | {:.1} GOPs | {:.1} MB weights | effort {effort}",
        net.name(),
        net.total_ops() as f64 / 1e9,
        net.total_weight_bytes() as f64 / (1 << 20) as f64
    );

    let cocco = Scheduler::cocco(&net, &hw).config(cfg.clone()).run().best;
    let soma = Scheduler::new(&net, &hw).config(cfg).run();

    let ms = |cycles: u64| hw.cycles_to_seconds(cycles) * 1e3;
    let mj = |pj: f64| pj / 1e9;
    println!(
        "\n{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "latency(ms)", "energy(mJ)", "util", "dram util", "buf peak(MB)"
    );
    for (name, report) in
        [("Cocco", &cocco.report), ("Ours_1", &soma.stage1.report), ("Ours_2", &soma.best.report)]
    {
        println!(
            "{:<10} {:>12.3} {:>10.2} {:>9.1}% {:>9.1}% {:>10.2}",
            name,
            ms(report.latency_cycles),
            mj(report.energy.total_pj()),
            100.0 * report.compute_util,
            100.0 * report.dram_util,
            report.peak_buffer as f64 / (1 << 20) as f64
        );
    }

    let shape = soma.shape(&net);
    println!(
        "\nSoMa best scheme: {} LGs, {} FLGs, {} tiles, {} DRAM tensors",
        shape.lgs, shape.flgs, shape.tiles, shape.dram_tensors
    );
    println!(
        "speedup vs Cocco: {:.2}x | energy saving: {:.1}%",
        cocco.report.latency_cycles as f64 / soma.best.report.latency_cycles as f64,
        100.0 * (1.0 - soma.best.report.energy.total_pj() / cocco.report.energy.total_pj())
    );
}
