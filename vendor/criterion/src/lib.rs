//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the macro/API surface the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`black_box`]) and measures
//! wall-clock time with `std::time::Instant`: a short warm-up, then
//! `sample_size` samples whose median/min/max are printed one line per
//! benchmark. No statistical regression analysis, no HTML reports — enough
//! to spot order-of-magnitude movement in CI logs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample batching hint, mirrored from criterion (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs `f` against a fresh [`Bencher`] and prints the timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: Vec::with_capacity(self.sample_size), target: self.sample_size };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Collects one timing sample per requested iteration batch.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine` once per sample after a warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!(
            "{id:<48} median {:>12.3?}   min {:>12.3?}   max {:>12.3?}   ({} samples)",
            median,
            min,
            max,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
