//! Case execution: configuration, RNG, rejection accounting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirror of `proptest::test_runner::ProptestConfig` (subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Global cap on rejected cases (`prop_assume!` failures) before the
    /// test errors out as too narrow.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw a fresh input, don't count the case.
    Reject,
    /// An assertion failed: the whole test fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic RNG handed to strategies.
///
/// Seeds derive from the test name plus `PROPTEST_SEED` (default 2025), so
/// every test exercises a distinct but reproducible stream.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    fn for_test(name: &str) -> Self {
        let base: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(2025);
        // FNV-1a over the test name, folded into the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { rng: StdRng::seed_from_u64(base ^ h) }
    }

    /// Raw 64 random bits.
    pub fn next_raw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The underlying [`StdRng`], for range sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Drives one `proptest!`-generated test to completion.
pub struct Runner {
    rng: TestRng,
    cases_target: u32,
    cases_done: u32,
    rejects: u32,
    max_rejects: u32,
}

impl Runner {
    /// Builds a runner for the named test under `config`.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        Runner {
            rng: TestRng::for_test(name),
            cases_target: config.cases,
            cases_done: 0,
            rejects: 0,
            max_rejects: config.max_global_rejects,
        }
    }

    /// Whether another case should run.
    pub fn more(&self) -> bool {
        self.cases_done < self.cases_target
    }

    /// RNG for the next case.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Books the outcome of one case; panics the test on failure or on too
    /// many rejects.
    pub fn record(&mut self, name: &str, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.cases_done += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                if self.rejects > self.max_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejects ({} with only {}/{} cases done)",
                        self.rejects, self.cases_done, self.cases_target
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {} cases\n{msg}", self.cases_done)
            }
        }
    }
}
