//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like `proptest`'s `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; rejected draws are retried (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }
}

// A reference to a strategy is itself a strategy (lets `proptest!` re-use
// a named strategy without moving it).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 consecutive draws", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_raw() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_raw() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, spanning many magnitudes: mantissa in [0,1) times 2^[-64,64].
        let unit = (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_raw() % 129) as i32 - 64;
        let sign = if rng.next_raw() & 1 == 1 { -1.0 } else { 1.0 };
        sign * unit * 2.0f64.powi(exp)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
