//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! [`any`] strategies, tuple composition, [`Strategy::prop_map`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` in
//!   the assertion message) but is not minimised.
//! * **Deterministic.** Cases derive from a fixed seed (overridable with
//!   `PROPTEST_SEED`), so CI failures always reproduce locally.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    // Macros are exported at the crate root; re-export for symmetry.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)` block
/// becomes a `#[test]` that draws `config.cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::Runner::new(&config, stringify!($name));
            while runner.more() {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|rng: &mut $crate::test_runner::TestRng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })(runner.rng());
                runner.record(stringify!($name), outcome);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
