//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build environment has no registry access, so this crate implements
//! the exact subset of rand used by the workspace — [`Rng::gen_range`] over
//! integer ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] — backed by a real, well-distributed generator:
//! xoshiro256++ seeded through SplitMix64 (the same seeding scheme the
//! reference implementation recommends). It is deterministic per seed,
//! which is what the SA search and the paper artifact rely on.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` with SplitMix64, as the
    /// real rand crate does for small seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bits = splitmix64(&mut state);
            for (dst, src) in chunk.iter_mut().zip(bits.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A range that a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of the real rand crate, but statistically strong,
    /// fast, and — the property the search depends on — deterministic for
    /// a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
