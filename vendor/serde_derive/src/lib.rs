//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The build environment has no registry access, so this crate accepts the
//! same derive syntax (`#[derive(Serialize, Deserialize)]` with optional
//! `#[serde(...)]` attributes) and simply emits no code. Nothing in the
//! workspace currently relies on a `Serialize`/`Deserialize` *impl* — the
//! derives only mark types as serialisable for future wire formats. When a
//! registry becomes available, point `[workspace.dependencies] serde` back
//! at crates.io and delete `vendor/serde*`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
