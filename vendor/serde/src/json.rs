//! A minimal JSON document model for the offline serde stand-in.
//!
//! The real workspace dependency would be `serde_json`; with no registry
//! access this module provides the small subset the workspace needs to
//! persist run records: an explicit [`Value`] tree, a deterministic
//! compact writer ([`to_string`]) and a strict parser ([`parse`]).
//!
//! Determinism contract (the run-ledger tests compare files
//! byte-for-byte):
//!
//! * Object keys keep **insertion order** — writing never reorders.
//! * Numbers round-trip exactly: integers print as decimal digits;
//!   finite floats print through Rust's shortest-round-trip `Display`,
//!   so `parse(to_string(v))` reproduces the same `f64` bits.
//! * The writer emits no whitespace, so a value has exactly one
//!   canonical rendering.

use std::fmt::Write as _;

/// A JSON value. Numbers are split by how they parsed (`u64` first,
/// then `i64`, then `f64`); use the [`as_f64`](Value::as_f64) family of
/// accessors, which coerce across the numeric variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is preserved (and is the written order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Self {
        Value::Obj(Vec::new())
    }

    /// Appends a key to an object. Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Value) {
        match self {
            Value::Obj(entries) => entries.push((key.into(), value)),
            other => panic!("Value::push on a non-object {other:?}"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (coercing integer variants).
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Writes a value as compact JSON (no whitespace, insertion-ordered
/// keys, round-trip-exact numbers).
pub fn write(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display is the shortest string that parses
                // back to the identical f64 — the round-trip contract.
                let _ = write!(out, "{f}");
            } else {
                // Non-finite numbers have no JSON literal.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write(val, out);
            }
            out.push('}');
        }
    }
}

/// [`write`] into a fresh string.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write(v, &mut out);
    out
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Containers deeper than this are rejected: the parser recurses per
/// nesting level, so without a bound a hostile input (`[[[[...`) would
/// abort the process with a stack overflow instead of returning an
/// error. Workspace documents nest a handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, msg: msg.into() }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; reject rather than mis-decode.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte position.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            // `-0` must stay a float to preserve the sign bit.
            if text != "-0" {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Int(v));
                }
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

/// Parses one JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v), text);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1, 1.5e-300, std::f64::consts::PI, 1e20, -2.5, 16.0] {
            let text = to_string(&Value::Float(f));
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let text = to_string(&Value::Float(-0.0));
        let back = parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn large_u64_survives() {
        let v = Value::UInt(u64::MAX);
        assert_eq!(parse(&to_string(&v)).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn objects_preserve_key_order() {
        let mut obj = Value::obj();
        obj.push("zebra", 1u64.into());
        obj.push("apple", 2u64.into());
        let text = to_string(&obj);
        assert_eq!(text, "{\"zebra\":1,\"apple\":2}");
        assert_eq!(parse(&text).unwrap(), obj);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}✓";
        let text = to_string(&Value::Str(s.into()));
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = "{\"a\":[1,2.5,{\"b\":null}],\"c\":true}";
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        let e = parse("nulp").unwrap_err();
        assert!(e.to_string().contains("byte 0"), "{e}");
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(200_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        let mixed = "{\"a\":".repeat(5_000);
        assert!(parse(&mixed).is_err());
        // The limit leaves ample room for real documents.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_is_accepted_on_parse() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(to_string(&v), "{\"a\":[1,2]}");
    }
}
