//! Offline stand-in for the real `serde` crate.
//!
//! Provides the two marker traits and (behind the `derive` feature, as in
//! real serde) re-exports the no-op derive macros from
//! [`serde_derive`](../serde_derive). Most of the workspace only uses
//! serde to *annotate* types; the code paths that genuinely persist data
//! (the experiment run ledger) go through the explicit [`json`] document
//! model instead of derived impls. Swap back to crates.io serde by
//! editing `[workspace.dependencies]`.

pub mod json;

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Sub-module mirror so `serde::de::DeserializeOwned` paths resolve.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Sub-module mirror so `serde::ser::Serialize` paths resolve.
pub mod ser {
    pub use crate::Serialize;
}
