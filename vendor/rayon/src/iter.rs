//! Parallel iterators over the work-stealing pool.
//!
//! The surface is the subset of `rayon::prelude` this workspace uses —
//! [`IntoParallelIterator`] / [`IntoParallelRefIterator`] producing a
//! [`ParIter`], whose only adapters are [`map`](ParIter::map) and
//! [`collect`](ParIter::collect). Execution is a divide-and-conquer
//! [`join`](crate::join) over index ranges: each item's result is
//! written into that item's slot, so the collected order is the input
//! order **by construction**, independent of which worker ran what.

use crate::pool;

/// A pending parallel iteration over owned items, in input order.
#[must_use = "parallel iterators are lazy; call map()/collect()"]
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iteration, created by [`ParIter::map`].
#[must_use = "parallel iterators are lazy; call collect()"]
pub struct ParMap<T, F> {
    items: Vec<T>,
    func: F,
}

impl<T: Send> ParIter<T> {
    /// Applies `func` to every item in parallel. The closure must be
    /// `Sync` (it is shared by reference across workers) and is free to
    /// run items in any order — [`collect`](ParMap::collect) reassembles
    /// results in input order.
    pub fn map<R, F>(self, func: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Send + Sync,
        R: Send,
    {
        ParMap { items: self.items, func }
    }

    /// Collects the (unmapped) items, preserving input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T, F, R> ParMap<T, F>
where
    T: Send,
    F: Fn(T) -> R + Send + Sync,
    R: Send,
{
    /// Runs the map on the current pool (or the global pool when called
    /// from outside any pool) and collects results in input order.
    /// A panic in the closure finishes in-flight siblings, then
    /// propagates to the caller.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let func = self.func;
        let mut inputs: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let mut outputs: Vec<Option<R>> = (0..inputs.len()).map(|_| None).collect();
        pool::in_pool(|| apply_split(&mut inputs, &mut outputs, &func));
        outputs.into_iter().map(|slot| slot.expect("every slot filled")).collect()
    }
}

/// Splits the index range in half down to single items, forking each
/// half through [`join`](crate::join); leaves write `func(item)` into
/// the item's own output slot.
fn apply_split<T, R, F>(inputs: &mut [Option<T>], outputs: &mut [Option<R>], func: &F)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    debug_assert_eq!(inputs.len(), outputs.len());
    if inputs.len() <= 1 {
        if let Some(item) = inputs.first_mut().and_then(Option::take) {
            outputs[0] = Some(func(item));
        }
        return;
    }
    let mid = inputs.len() / 2;
    let (in_lo, in_hi) = inputs.split_at_mut(mid);
    let (out_lo, out_hi) = outputs.split_at_mut(mid);
    pool::join(|| apply_split(in_lo, out_lo, func), || apply_split(in_hi, out_hi, func));
}

/// Mirror of `rayon::prelude::IntoParallelIterator`, now backed by the
/// real pool. Items must be `Send`, exactly as under the real crate.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// The element type.
    type Item: Send;
    /// Starts a parallel iteration over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Iter = ParIter<I::Item>;
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Mirror of `rayon::prelude::IntoParallelRefIterator`: parallel
/// iteration over `&T`'s items.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;
    /// The element type (a reference, for collection types).
    type Item: Send + 'data;
    /// Starts a parallel iteration over references into `self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
    <&'data T as IntoIterator>::Item: Send,
{
    type Iter = ParIter<<&'data T as IntoIterator>::Item>;
    type Item = <&'data T as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter { items: self.into_iter().collect() }
    }
}
