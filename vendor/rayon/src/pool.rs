//! The work-stealing thread pool behind the facade: per-worker LIFO
//! deques, a shared FIFO injector queue, randomized stealing, and
//! parking/unparking for idle workers.
//!
//! # Architecture
//!
//! A [`Registry`] owns one mutex-guarded `VecDeque` per worker (the
//! worker pushes and pops at the **back** — LIFO, so nested splits stay
//! cache-hot — while thieves steal from the **front**, taking the oldest
//! and therefore largest pending subtree) plus a shared FIFO injector
//! for jobs arriving from outside the pool. Idle workers scan: own deque
//! first, then the injector, then the other deques in a per-worker
//! xorshift-randomized order; when a full scan finds nothing they park
//! on the registry's condvar. Every job push and every latch set bumps
//! an epoch counter under the same lock before notifying, which makes
//! the park/unpark protocol lost-wakeup-free (an eventcount).
//!
//! Blocking operations ([`join`], [`scope`], [`ThreadPool::install`])
//! never make a worker sleep while work remains: a worker waiting on a
//! latch keeps executing stolen jobs until the latch trips
//! (`Registry::wait_until`), so nested parallelism cannot deadlock the
//! pool. Panics inside jobs are caught at the job boundary, carried to
//! the blocked caller, and re-thrown there — a panicking task therefore
//! unwinds the caller instead of wedging a worker.
//!
//! # Determinism
//!
//! The pool makes no ordering promises between jobs; callers that need
//! deterministic results must merge in submission order (as
//! [`ParMap::collect`](crate::iter::ParMap::collect) does by writing
//! each result into its item's slot). Nothing here reads the
//! environment; thread counts are chosen by the caller or default to
//! [`std::thread::available_parallelism`].

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job waiting in some deque. The pointee is
/// either a stack frame blocked until the job's latch trips
/// ([`StackJob`]) or a heap allocation freed by execution ([`HeapJob`]),
/// so the pointer is valid for exactly one `execute` call.
#[derive(Clone, Copy)]
struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef only crosses threads together with the Send bounds on
// the closure it erases (enforced by the public `join`/`spawn` APIs).
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn new<J: Job>(job: *const J) -> JobRef {
        JobRef { ptr: job.cast(), exec: execute_erased::<J> }
    }

    unsafe fn execute(self) {
        (self.exec)(self.ptr);
    }
}

unsafe fn execute_erased<J: Job>(ptr: *const ()) {
    J::execute(ptr.cast());
}

trait Job {
    /// Runs the job. `this` must be valid and is consumed: `execute` is
    /// called at most once per job.
    unsafe fn execute(this: *const Self);
}

/// A job whose closure and result live on the stack of a caller that
/// blocks until [`Latch`] trips — `join`'s right-hand side and
/// `install`'s operation.
struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F, latch: Latch) -> Self {
        Self { func: Mutex::new(Some(func)), result: Mutex::new(None), latch }
    }

    /// Takes the stored result, re-raising the job's panic in the
    /// caller. Only valid after the latch tripped.
    fn into_result(self) -> R {
        match self.result.into_inner().expect("job result lock").expect("latch set before result") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        let func = this.func.lock().expect("job func lock").take().expect("job runs once");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *this.result.lock().expect("job result lock") = Some(result);
        // Last touch of `this`: after `set` the blocked owner may free
        // the job (see Latch::set for the use-after-free protocol).
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job — `scope` spawns. The closure
/// owns its bookkeeping (scope counter decrement, panic capture).
struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    fn job_ref(func: F) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        unsafe { JobRef::new(Box::into_raw(boxed)) }
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce() + Send,
{
    unsafe fn execute(this: *const Self) {
        let boxed = Box::from_raw(this.cast_mut());
        (boxed.func)();
    }
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

/// A one-shot "done" flag observed by a blocked caller.
///
/// `set` clones the registry handle **before** the releasing store: once
/// the flag is visible the waiting owner may return and free the latch's
/// memory, so the setter must not touch `self` afterwards — it notifies
/// through its own clone.
struct Latch {
    flag: AtomicBool,
    registry: Arc<Registry>,
}

impl Latch {
    fn new(registry: Arc<Registry>) -> Self {
        Self { flag: AtomicBool::new(false), registry }
    }

    fn probe(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    fn set(&self) {
        let registry = Arc::clone(&self.registry);
        self.flag.store(true, Ordering::Release);
        registry.notify();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct SleepState {
    /// Bumped (under the lock) on every event a sleeper could be waiting
    /// for: a job push or a latch set. Waiters re-check their condition
    /// whenever the epoch moved — the eventcount that makes parking
    /// lost-wakeup-free.
    epoch: u64,
    terminating: bool,
}

/// Shared state of one pool: deques, injector, and the sleep protocol.
struct Registry {
    /// One LIFO deque per worker: the owner pushes/pops at the back,
    /// thieves steal from the front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// FIFO queue for jobs injected from outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    sleep: Mutex<SleepState>,
    wakeup: Condvar,
}

thread_local! {
    /// (registry, worker index) of the pool this thread belongs to.
    static WORKER: std::cell::RefCell<Option<(Arc<Registry>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Per-thread xorshift state for randomized steal order.
    static STEAL_RNG: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The calling thread's (registry, index) if it is a pool worker.
fn current_worker() -> Option<(Arc<Registry>, usize)> {
    WORKER.with(|w| w.borrow().clone())
}

fn steal_seed(index: usize) -> u64 {
    // splitmix64 of the worker index: deterministic, well-mixed, nonzero.
    let mut z = (index as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

fn steal_next(bound: usize) -> usize {
    STEAL_RNG.with(|cell| {
        let mut x = cell.get();
        if x == 0 {
            x = 0x2545_f491_4f6c_dd1d; // non-worker threads share a fixed stream
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.set(x);
        (x % bound.max(1) as u64) as usize
    })
}

impl Registry {
    fn new(threads: usize) -> Arc<Registry> {
        Arc::new(Registry {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(SleepState { epoch: 0, terminating: false }),
            wakeup: Condvar::new(),
        })
    }

    /// Bumps the epoch and wakes every parked thread. Called after any
    /// state change a sleeper could be waiting on.
    fn notify(&self) {
        let mut s = self.sleep.lock().expect("sleep lock");
        s.epoch += 1;
        drop(s);
        self.wakeup.notify_all();
    }

    fn current_epoch(&self) -> u64 {
        self.sleep.lock().expect("sleep lock").epoch
    }

    /// Pushes onto a worker's own deque (LIFO end).
    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().expect("deque lock").push_back(job);
        self.notify();
    }

    /// Pushes onto the shared FIFO injector.
    fn inject(&self, job: JobRef) {
        self.injector.lock().expect("injector lock").push_back(job);
        self.notify();
    }

    /// Pops the calling worker's most recent push *iff* it is still the
    /// job it expects — i.e. it was not stolen in the meantime.
    fn pop_local_if(&self, index: usize, expected: JobRef) -> bool {
        let mut deque = self.deques[index].lock().expect("deque lock");
        if deque.back().is_some_and(|j| std::ptr::eq(j.ptr, expected.ptr)) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    /// One full scan for work: own deque (LIFO), injector (FIFO), then
    /// every other deque in randomized order (stealing the oldest job).
    fn find_work(&self, index: Option<usize>) -> Option<JobRef> {
        if let Some(i) = index {
            if let Some(job) = self.deques[i].lock().expect("deque lock").pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector lock").pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = steal_next(n);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == index {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().expect("deque lock").pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Blocks until `latch` trips, executing other pool work while
    /// waiting (workers must never sleep on a latch while runnable jobs
    /// exist — that is what makes nested `join`/`scope` deadlock-free).
    fn wait_until(&self, index: Option<usize>, latch: &Latch) {
        loop {
            let epoch = self.current_epoch();
            if latch.probe() {
                return;
            }
            if let Some(job) = self.find_work(index) {
                unsafe { job.execute() };
                continue;
            }
            let s = self.sleep.lock().expect("sleep lock");
            if latch.probe() {
                return;
            }
            if s.epoch == epoch {
                let _unused = self.wakeup.wait(s).expect("sleep lock");
            }
        }
    }

    /// Parks the calling (non-worker) thread until `latch` trips. The
    /// probe happens under the sleep lock, which `Latch::set`'s notify
    /// also takes, so the wakeup cannot be lost.
    fn wait_blocking(&self, latch: &Latch) {
        let mut s = self.sleep.lock().expect("sleep lock");
        while !latch.probe() {
            s = self.wakeup.wait(s).expect("sleep lock");
        }
    }

    /// Runs `op` on a worker of this pool and blocks until it finishes,
    /// re-raising its panic in the caller. The calling thread must not
    /// be a worker of this pool.
    fn run_on_worker<F, R>(self: &Arc<Self>, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(op, Latch::new(Arc::clone(self)));
        let job_ref = unsafe { JobRef::new(&job) };
        self.inject(job_ref);
        // External threads park rather than steal: running this pool's
        // jobs on a foreign thread would let nested `join`s migrate to
        // whatever pool that thread belongs to instead of this one.
        self.wait_blocking(&job.latch);
        job.into_result()
    }

    fn worker_main(self: Arc<Self>, index: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&self), index)));
        STEAL_RNG.with(|cell| cell.set(steal_seed(index)));
        loop {
            let epoch = self.current_epoch();
            if let Some(job) = self.find_work(Some(index)) {
                unsafe { job.execute() };
                continue;
            }
            let s = self.sleep.lock().expect("sleep lock");
            if s.terminating {
                return;
            }
            if s.epoch == epoch {
                let _unused = self.wakeup.wait(s).expect("sleep lock");
            }
        }
    }

    fn terminate(&self) {
        let mut s = self.sleep.lock().expect("sleep lock");
        s.terminating = true;
        s.epoch += 1;
        drop(s);
        self.wakeup.notify_all();
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both
/// results. `b` is published to the pool while the calling thread runs
/// `a`; if no other worker stole it in the meantime the caller runs it
/// inline (so a 1-thread pool degrades to exactly sequential `(a(), b())`
/// order). Called from outside any pool, the whole join migrates onto
/// the global pool first.
///
/// A panic in either closure propagates to the caller — after both
/// closures finished, so the panicking side can never leave the other
/// running against a freed stack. If both panic, `a`'s payload wins.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some((registry, index)) => join_on_worker(&registry, index, a, b),
        None => global_pool().registry.run_on_worker(|| join(a, b)),
    }
}

fn join_on_worker<A, B, RA, RB>(registry: &Arc<Registry>, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b, Latch::new(Arc::clone(registry)));
    let job_ref = unsafe { JobRef::new(&job_b) };
    registry.push_local(index, job_ref);

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Reclaim b if it was not stolen (the common, allocation-free path);
    // otherwise keep working until the thief's latch trips. This runs on
    // the panic path too: b may borrow our stack frame.
    if registry.pop_local_if(index, job_ref) {
        unsafe { job_ref.execute() };
    } else {
        registry.wait_until(Some(index), &job_b.latch);
    }

    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        Err(payload) => panic::resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// A scope for spawning jobs that may borrow the enclosing stack frame
/// (lifetime `'scope`). Created by [`scope`], which blocks until every
/// spawn completed.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Outstanding work units: 1 for the scope body plus 1 per spawn.
    pending: AtomicUsize,
    latch: Latch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over `'scope`, mirroring rayon.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the pool. The closure may borrow anything that
    /// outlives the [`scope`] call; [`scope`] does not return until
    /// every spawn (including nested ones) has finished.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `scope()` blocks until `pending` hits zero, so `self`
        // outlives the job even though the JobRef erases `'scope`.
        let this: *const Scope<'scope> = self;
        let job = unsafe { spawn_job_ref(this, body) };
        match current_worker() {
            Some((registry, index)) if Arc::ptr_eq(&registry, &self.registry) => {
                registry.push_local(index, job);
            }
            _ => self.registry.inject(job),
        }
    }

    fn job_completed(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.latch.set();
        }
    }
}

impl fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.pending.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// Send-able wrapper for the raw scope pointer captured by spawn jobs.
/// Soundness piggybacks on the [`scope`] contract: the pointee outlives
/// every job that holds one of these.
struct ScopePtr<'scope>(*const Scope<'scope>);
// SAFETY: Scope's shared state (pending/latch/panic slot) is Sync; the
// pointer itself only crosses threads inside pool jobs bounded by the
// scope's completion latch.
unsafe impl Send for ScopePtr<'_> {}

/// Erases `'scope` from a spawn closure. Caller guarantees the scope
/// outlives the job (the scope's pending counter + completion latch).
unsafe fn spawn_job_ref<'scope, F>(scope: *const Scope<'scope>, body: F) -> JobRef
where
    F: FnOnce(&Scope<'scope>) + Send + 'scope,
{
    let scope = ScopePtr(scope);
    let func = move || {
        // Rebind the whole wrapper: edition-2021 disjoint capture would
        // otherwise capture the raw `.0` field, which is not Send.
        let scope = scope;
        // SAFETY: see caller contract — the scope is alive until
        // `job_completed` below has run for every spawn.
        let scope = unsafe { &*scope.0 };
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
            let mut slot = scope.panic.lock().expect("scope panic lock");
            slot.get_or_insert(payload);
        }
        scope.job_completed();
    };
    // Transmute the closure's lifetime away; bounded by the scope latch.
    let erased: Box<dyn FnOnce() + Send + 'scope> = Box::new(func);
    let erased: Box<dyn FnOnce() + Send + 'static> = std::mem::transmute(erased);
    HeapJob::job_ref(erased)
}

/// Creates a [`Scope`] whose spawns may borrow the enclosing frame and
/// blocks until the body *and* every spawn completed. Runs on the
/// current pool, or migrates onto the global pool when called from
/// outside any pool.
///
/// Panics in the body or in any spawn propagate to the caller once all
/// work finished (body panic wins; among spawns, the first captured).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    match current_worker() {
        Some((registry, index)) => scope_on(&registry, Some(index), f),
        None => {
            let pool = global_pool();
            let registry = Arc::clone(&pool.registry);
            registry.run_on_worker(|| scope(f))
        }
    }
}

fn scope_on<'scope, F, R>(registry: &Arc<Registry>, index: Option<usize>, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: Arc::clone(registry),
        pending: AtomicUsize::new(1),
        latch: Latch::new(Arc::clone(registry)),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
    scope.job_completed(); // the body's own unit
    registry.wait_until(index, &scope.latch);
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = scope.panic.lock().expect("scope panic lock").take() {
                panic::resume_unwind(payload);
            }
            r
        }
    }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// Error building a [`ThreadPool`] (mirrors rayon's opaque build error).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`: configure a thread
/// count, then [`build`](Self::build) a scoped pool or
/// [`build_global`](Self::build_global) the process-wide one.
#[derive(Debug, Default)]
#[must_use = "a ThreadPoolBuilder does nothing until you call build()"]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` (the default) means
    /// [`std::thread::available_parallelism`].
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }

    /// Builds a pool with its own workers; dropping the pool parks no
    /// orphans — workers are told to terminate and joined.
    ///
    /// # Errors
    ///
    /// Returns an error if a worker thread cannot be spawned.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.resolved_threads();
        let registry = Registry::new(threads);
        let mut handles = Vec::with_capacity(threads);
        for index in 0..threads {
            let reg = Arc::clone(&registry);
            let handle = thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                .spawn(move || reg.worker_main(index))
                .map_err(|_| ThreadPoolBuildError { msg: "failed to spawn worker thread" })?;
            handles.push(handle);
        }
        Ok(ThreadPool { registry, handles })
    }

    /// Installs the process-wide global pool used by [`join`],
    /// [`scope`] and parallel iterators called from outside any pool.
    ///
    /// # Errors
    ///
    /// Returns an error if the global pool was already initialized
    /// (including implicitly, by a prior parallel call).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let pool = self.build()?;
        GLOBAL
            .set(pool)
            .map_err(|_| ThreadPoolBuildError { msg: "global thread pool already initialized" })
    }
}

/// A work-stealing pool with a fixed set of worker threads. Dropping the
/// pool terminates and joins its workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// The number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.registry.deques.len()
    }

    /// Runs `op` inside this pool — `join`/`scope`/parallel iterators
    /// called from `op` use this pool's workers — and blocks until it
    /// returns, re-raising its panic in the caller.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        match current_worker() {
            Some((registry, _)) if Arc::ptr_eq(&registry, &self.registry) => op(),
            _ => self.registry.run_on_worker(op),
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.current_num_threads())
            .finish_non_exhaustive()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _unused = handle.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The global pool, created on first use with the automatic thread
/// count unless [`ThreadPoolBuilder::build_global`] ran first.
pub(crate) fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new().build().expect("failed to build the global thread pool")
    })
}

/// The worker count of the current pool: the pool this thread works
/// for, else the global pool (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    match current_worker() {
        Some((registry, _)) => registry.deques.len(),
        None => global_pool().current_num_threads(),
    }
}

/// Runs `f` inside the current pool if the caller is already a worker,
/// else inside the global pool. The entry point parallel iterators use.
pub(crate) fn in_pool<F, R>(f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    match current_worker() {
        Some(_) => f(),
        None => global_pool().registry.run_on_worker(f),
    }
}
