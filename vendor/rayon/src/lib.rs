//! Offline stand-in for the `rayon` crate, backed by a **real
//! work-stealing thread pool** (it ran everything inline through PR 5;
//! that sequential stub is gone).
//!
//! The facade surface is the subset this workspace uses — [`join`],
//! [`scope`], `par_iter`/`into_par_iter` with `map`/`collect`, plus
//! [`ThreadPool`]/[`ThreadPoolBuilder`] for scoped pools — and it now
//! executes on `std::thread` workers with per-worker LIFO deques, a
//! shared FIFO injector queue, randomized stealing and parking for idle
//! workers (see [`pool`] for the full architecture). Rayon-only
//! adapters this workspace does not use (`par_chunks`, `reduce_with`,
//! `fold`, ...) are intentionally absent so their use fails loudly at
//! compile time instead of silently degrading.
//!
//! Calls from outside any pool migrate onto a lazily-created global
//! pool sized by [`std::thread::available_parallelism`];
//! [`ThreadPoolBuilder::build`] makes scoped pools whose
//! [`install`](ThreadPool::install) runs a closure (and everything it
//! forks) on that pool's workers instead.
//!
//! Ordering guarantee: `into_par_iter().map(f).collect()` returns
//! results in **input order** regardless of execution interleaving, and
//! `join(a, b)` on a 1-thread pool degrades to exactly sequential
//! `(a(), b())`. Code that merges in submission order is therefore
//! bit-identical across thread counts.

pub mod iter;
pub mod pool;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

pub mod prelude {
    //! Drop-in mirror of `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::thread;
    use std::time::Duration;

    /// Scoped 4-worker pool for tests that need real concurrency
    /// without touching the global pool.
    fn pool4() -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(4).build().expect("build pool")
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn map_collect_preserves_input_order() {
        let out: Vec<u64> = (0u64..257).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..257).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_over_references() {
        let data = vec![1u32, 2, 3, 4];
        let out: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    /// Steal correctness: with blocking leaf tasks on a multi-worker
    /// pool, work pushed by one worker must get stolen and executed by
    /// others — we assert ≥ 2 distinct threads participated and that
    /// every item ran exactly once with results still in input order.
    #[test]
    fn work_is_stolen_across_threads() {
        let pool = pool4();
        let ids = Mutex::new(HashSet::new());
        let out: Vec<usize> = pool.install(|| {
            (0..32usize)
                .into_par_iter()
                .map(|i| {
                    ids.lock().unwrap().insert(thread::current().id());
                    thread::sleep(Duration::from_millis(5));
                    i * 10
                })
                .collect()
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected at least 2 workers to participate, got {:?}",
            ids.lock().unwrap().len()
        );
    }

    #[test]
    fn nested_join_computes_fib() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = pool4();
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn scope_spawns_run_and_may_nest() {
        let pool = pool4();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|s| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_blocks_until_spawns_finish() {
        let pool = pool4();
        let done = Arc::new(AtomicUsize::new(0));
        let seen = pool.install(|| {
            let inner = Arc::clone(&done);
            scope(move |s| {
                let done = inner;
                for _ in 0..4 {
                    let done = Arc::clone(&done);
                    s.spawn(move |_| {
                        thread::sleep(Duration::from_millis(10));
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            done.load(Ordering::SeqCst)
        });
        assert_eq!(seen, 4, "scope returned before all spawns completed");
    }

    /// A panicking join arm must propagate to the caller — and the pool
    /// must stay usable afterwards (no wedged worker, no deadlock).
    #[test]
    fn join_panic_propagates_and_pool_survives() {
        let pool = pool4();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| join(|| panic!("left arm"), || 1 + 1));
        }));
        assert!(caught.is_err(), "panic in join arm must reach the caller");
        // Pool still answers work after the panic.
        let out: Vec<u32> = pool.install(|| (0..8u32).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out, (0..8u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scope_spawn_panic_propagates_and_pool_survives() {
        let pool = pool4();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    let ran = Arc::clone(&ran2);
                    s.spawn(move |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                    s.spawn(|_| panic!("spawned task panicked"));
                });
            });
        }));
        assert!(caught.is_err(), "panic in a spawn must reach the scope caller");
        // Reusable after the panic: a fresh install still works.
        assert_eq!(pool.install(|| join(|| 1, || 2)), (1, 2));
    }

    #[test]
    fn map_panic_propagates() {
        let pool = pool4();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _out: Vec<u32> = pool.install(|| {
                (0..16u32)
                    .into_par_iter()
                    .map(|x| if x == 11 { panic!("item 11") } else { x })
                    .collect()
            });
        }));
        assert!(caught.is_err());
    }

    /// Teardown: dropping a pool joins its workers; repeated
    /// build/drop cycles neither leak nor hang.
    #[test]
    fn pool_teardown_joins_workers() {
        for _ in 0..8 {
            let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("build");
            let sum: u64 = pool
                .install(|| (0..64u64).into_par_iter().map(|x| x * 2).collect::<Vec<_>>())
                .into_iter()
                .sum();
            assert_eq!(sum, 64 * 63);
            drop(pool); // must not hang
        }
    }

    #[test]
    fn install_reports_pool_size_and_nests() {
        let pool = pool4();
        assert_eq!(pool.current_num_threads(), 4);
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 4, "workers report their own pool's size");
        // install() from a worker of the same pool runs inline.
        let nested = pool.install(|| pool.install(|| 42));
        assert_eq!(nested, 42);
    }

    /// Calls from outside any pool migrate onto the (lazily built)
    /// global pool rather than running inline.
    #[test]
    fn external_calls_use_global_pool() {
        let n = current_num_threads();
        assert!(n >= 1);
        let (a, b) = join(|| 1u8, || 2u8);
        assert_eq!((a, b), (1, 2));
        let out: Vec<u8> = vec![3u8, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
    }

    /// One-thread pools degrade to exact sequential left-to-right
    /// execution order — the property the determinism story rests on.
    #[test]
    fn single_thread_pool_runs_in_submission_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().expect("build");
        let order = Mutex::new(Vec::new());
        pool.install(|| {
            let _out: Vec<()> = (0..8u32)
                .into_par_iter()
                .map(|i| {
                    order.lock().unwrap().push(i);
                })
                .collect();
        });
        assert_eq!(*order.lock().unwrap(), (0..8u32).collect::<Vec<_>>());
    }
}
