//! Offline stand-in for the `rayon` crate.
//!
//! The entry points (`par_iter`, `into_par_iter`, [`join`], [`scope`])
//! return **ordinary sequential iterators** / run closures inline, so code
//! written against this stub keeps compiling — and silently parallelises —
//! once the real rayon is restored in `[workspace.dependencies]`. Only the
//! adapters that exist on `std::iter::Iterator` are available; rayon-only
//! adapters (`par_chunks`, `reduce_with`, ...) are intentionally absent so
//! their use fails loudly at compile time instead of silently degrading.

pub mod prelude {
    //! Drop-in mirror of `rayon::prelude`.

    /// Sequential stand-in for `rayon::prelude::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// "Parallel" iteration — sequential under the stub.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::prelude::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'data;
        /// "Parallel" iteration over references — sequential under the stub.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        type Item = <&'data T as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Runs both closures (sequentially, left first) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Scope handle accepted by [`scope`] spawns.
pub struct Scope<'scope> {
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `body` immediately (sequential stand-in for `Scope::spawn`).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        body(self);
    }
}

/// Runs `f` with a [`Scope`] whose spawns execute inline.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope { _marker: std::marker::PhantomData })
}
