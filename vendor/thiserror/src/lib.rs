//! Offline placeholder for the `thiserror` crate.
//!
//! `thiserror`'s value is its `#[derive(Error)]` macro, which cannot be
//! reproduced faithfully without `syn`/`quote` (unavailable offline), so
//! this placeholder ships **no derive**. Error types in this workspace
//! hand-implement `std::fmt::Display` and `std::error::Error` — see
//! `soma-core/src/error.rs` for the house pattern. The crate exists so
//! `[workspace.dependencies] thiserror` resolves today and can be pointed
//! back at crates.io (making `#[derive(Error)]` available) without touching
//! any member manifest.

/// Re-export matching `thiserror`'s own re-export, so `thiserror::Error`
/// paths in trait position keep resolving.
pub use std::error::Error;
