//! # SoMa
//!
//! A from-scratch Rust reproduction of **"SoMa: Identifying, Exploring, and
//! Understanding the DRAM Communication Scheduling Space for DNN
//! Accelerators"** (HPCA 2025).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`model`] — DNN workload graphs and the model zoo.
//! * [`arch`] — accelerator hardware configuration and energy model.
//! * [`core`] — the tensor-centric notation and its parser.
//! * [`sim`] — the evaluator (timeline simulator + core-array model).
//! * [`search`] — the [`Scheduler`](search::Scheduler) session API over
//!   the two-stage SA framework, buffer allocator and the Cocco
//!   baseline.
//! * [`spec`] — declarative scenario specs: parseable network /
//!   hardware / experiment descriptions and the scenario registry
//!   (`<workload>@<preset>/b<batch>` ids).
//! * [`serve`] — scheduling-as-a-service: the line-delimited JSON
//!   protocol, admission control, the daemon with its ledger-backed
//!   result cache, and a reference client.
//! * [`obs`] — campaign observability: the streaming stats engine
//!   (percentiles, histograms, per-stage breakdowns), the
//!   machine-readable [`CampaignSummary`](obs::CampaignSummary) CI
//!   artifact, and the render model behind the `watch` TUI.
//!
//! # Quickstart
//!
//! Build a search with the [`Scheduler`](search::Scheduler), then either
//! drive it to completion with `run()` or step it round by round:
//!
//! ```
//! use soma::prelude::*;
//!
//! let net = soma::model::zoo::fig2(1);
//! let hw = HardwareConfig::edge();
//! let cfg = SearchConfig { effort: 0.05, seed: 7, ..SearchConfig::default() };
//! let outcome = Scheduler::new(&net, &hw).config(cfg).run();
//! assert!(outcome.best.report.latency_cycles > 0);
//! ```

pub use soma_arch as arch;
pub use soma_core as core;
pub use soma_model as model;
pub use soma_obs as obs;
pub use soma_search as search;
pub use soma_serve as serve;
pub use soma_sim as sim;
pub use soma_spec as spec;

/// Commonly used items in one import.
pub mod prelude {
    pub use soma_arch::{EnergyModel, HardwareConfig};
    pub use soma_core::{Encoding, ParsedSchedule};
    pub use soma_model::{FmapShape, LayerId, Network, NetworkBuilder};
    pub use soma_search::{
        schedule, CostWeights, Parallelism, Scheduler, SearchConfig, SearchEvent, SearchOutcome,
        SearchSession, StepOutcome,
    };
    pub use soma_sim::{evaluate, EvalReport};
    pub use soma_spec::{read_experiment, read_network, write_network, ExperimentSpec, SpecError};
}
