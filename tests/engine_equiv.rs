//! Differential suite for the compiled evaluation engine: on random DLSA
//! mutation chains over the zoo networks, the compiled fast paths must
//! match the naive rebuild-everything paths **field for field** —
//! `CompiledPlan::simulate_into` vs a fresh `simulate()`, the
//! incrementally maintained `OccupancyProfile` vs a fresh
//! `buffer_profile()`, the engine's cost-only evaluation vs the full
//! report path, and deadlock detection vs deadlock detection.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use soma::core::lifetime::{buffer_profile, peak_buffer};
use soma::core::{parse_lfa, Dlsa, Lfa};
use soma::model::zoo;
use soma::model::Network;
use soma::prelude::*;
use soma::search::dlsa_stage::mutate_dlsa;
use soma::search::{DlsaEditor, SizeWeightedPicker};
use soma::sim::{evaluate_parts, simulate, CompiledPlan, CoreArrayModel, SimScratch};

/// The mutation-chain differential: drives `steps` random DLSA mutations
/// through both the naive clone path (`mutate_dlsa` + fresh
/// `simulate`/`buffer_profile`) and the engine path (`DlsaEditor` +
/// `CompiledPlan` + maintained `OccupancyProfile`), asserting
/// field-for-field equality at every step.
fn check_chain(net: &Network, lfa: &Lfa, seed: u64, steps: usize) {
    let hw = HardwareConfig::edge();
    let plan = parse_lfa(net, lfa).expect("valid LFA");
    let dlsa = Dlsa::double_buffer(&plan);
    let picker = SizeWeightedPicker::new(&plan);
    if picker.is_empty() {
        return;
    }

    let mut model = CoreArrayModel::new(&hw);
    let compiled = CompiledPlan::compile(net, &plan, &hw, &mut model);
    let mut scratch = SimScratch::new();

    let mut rng_naive = StdRng::seed_from_u64(seed);
    let mut rng_engine = StdRng::seed_from_u64(seed);
    let mut naive = dlsa.clone();
    let mut editor = DlsaEditor::new(&plan, dlsa);
    let mut undone = 0usize;

    for step in 0..steps {
        let cand = mutate_dlsa(&plan, &naive, &picker, &mut rng_naive);
        let token = editor.propose(&picker, &mut rng_engine);
        assert_eq!(cand.is_some(), token.is_some(), "step {step}: proposal divergence");
        let Some(cand) = cand else { continue };

        // The in-place editor mirrors the cloning mutator exactly.
        assert_eq!(editor.dlsa(), &cand, "step {step}: DLSA divergence");

        // Maintained profile == fresh rebuild, point for point.
        let reference = buffer_profile(&plan, &cand);
        let profile = editor.profile();
        assert_eq!(profile.len(), reference.len(), "step {step}");
        for (t, &b) in reference.iter().enumerate() {
            assert_eq!(profile.occupancy(t), b, "step {step}: tile {t} occupancy");
        }
        assert_eq!(editor.peak(), peak_buffer(&plan, &cand), "step {step}: peak");

        // Compiled simulation == naive simulation, timeline field for
        // field — including agreeing on deadlocks.
        let naive_sim = simulate(&plan, &cand, &hw, &mut model);
        let engine_sim = editor.dlsa().clone();
        match naive_sim {
            Ok(tl) => {
                let latency = compiled
                    .simulate_into(&engine_sim, &mut scratch)
                    .expect("naive simulated; engine must too");
                assert_eq!(compiled.timeline(latency, &scratch), tl, "step {step}: timeline");
                assert_eq!(
                    compiled.simulate_cost(&engine_sim, &mut scratch).unwrap(),
                    tl.latency,
                    "step {step}: cost-only latency"
                );

                // Full-report parity (floats compared by bits via
                // PartialEq on the report).
                let naive_report =
                    evaluate_parts(net, &plan, &cand, &hw, &mut model).expect("simulated");
                let engine_report =
                    compiled.report(&plan, &engine_sim, &mut scratch).expect("simulated");
                assert_eq!(engine_report, naive_report, "step {step}: report");

                naive = cand;
            }
            Err(naive_err) => {
                let engine_err = compiled
                    .simulate_cost(&engine_sim, &mut scratch)
                    .expect_err("naive deadlocked; engine must too");
                assert_eq!(engine_err, naive_err, "step {step}: deadlock divergence");
                // A deadlocked proposal is rejected: roll both walks back.
                editor.undo(token.expect("engine proposed"));
                undone += 1;
            }
        }
    }
    // After the walk (including any rollbacks) both views still agree.
    assert_eq!(editor.dlsa(), &naive, "final state ({undone} rollbacks)");
    assert_eq!(editor.peak(), peak_buffer(&plan, &naive));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// fig2 (the paper's running example), unfused and fused, random
    /// tiling and seeds.
    #[test]
    fn compiled_matches_naive_on_fig2_chains(
        seed in any::<u64>(),
        tiling_pow in 0u32..4,
        fused in any::<bool>(),
    ) {
        let net = zoo::fig2(1);
        let t = 1u32 << tiling_pow;
        let lfa = if fused { Lfa::fully_fused(&net, t) } else { Lfa::unfused(&net, t) };
        check_chain(&net, &lfa, seed, 120);
    }

    /// fig4 (branchy graph with a pooling layer).
    #[test]
    fn compiled_matches_naive_on_fig4_chains(seed in any::<u64>(), tiling_pow in 0u32..3) {
        let net = zoo::fig4(1);
        let lfa = Lfa::unfused(&net, 1 << tiling_pow);
        check_chain(&net, &lfa, seed, 100);
    }

    /// Deep conv chains with partially fused groups (random FLC/DRAM-cut
    /// structure, exercising on-chip intervals in the profile).
    #[test]
    fn compiled_matches_naive_on_partially_fused_chains(
        seed in any::<u64>(),
        depth in 3u32..7,
        cut_mask in any::<u8>(),
    ) {
        let net = zoo::chain(1, 16, 28, depth);
        let mut lfa = Lfa::fully_fused(&net, 2);
        for p in 1..net.len() {
            if cut_mask & (1 << (p % 8)) != 0 {
                lfa.flc.insert(p);
                if p % 2 == 0 {
                    lfa.dram_cuts.insert(p);
                }
            }
        }
        lfa.tiling = vec![2; lfa.flg_count()];
        check_chain(&net, &lfa, seed, 80);
    }
}

/// One long chain on a real CNN: ResNet-50's stage-1-style initial plan.
/// Not a proptest (one deterministic case) to bound suite runtime.
#[test]
fn compiled_matches_naive_on_resnet50() {
    let net = zoo::resnet50(1);
    let lfa = Lfa::unfused(&net, 2);
    check_chain(&net, &lfa, 2025, 60);
}

/// The engine-backed search still beats or ties its own stage-1 result
/// on a transformer workload (smoke for the rewired stages on the
/// attention-style graphs).
#[test]
fn engine_backed_search_runs_on_gpt2_slice() {
    let net = zoo::gpt2_small_prefill(1, 64);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.01, seed: 3, ..SearchConfig::default() };
    let out = soma::search::schedule(&net, &hw, &cfg);
    assert!(out.best.cost <= out.stage1.cost);
    assert!(out.evals > 0);
}
