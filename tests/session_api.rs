//! Acceptance tests for the `Scheduler` session API: the legacy
//! `schedule()`/`schedule_cocco()` shims must return bit-identical
//! results to the builder at the same seed, the multi-seed portfolio
//! must be deterministic and envelope its members, and observers must
//! see events in pipeline order.

use soma::model::zoo;
use soma::prelude::*;
use soma::search::{schedule, schedule_cocco, Evaluated};

fn quick(seed: u64, effort: f64) -> SearchConfig {
    SearchConfig { effort, seed, ..SearchConfig::default() }
}

/// Field-for-field equality of two evaluated schemes (exact: f64 by bits).
fn assert_eval_eq(a: &Evaluated, b: &Evaluated, what: &str) {
    assert_eq!(a.encoding, b.encoding, "{what}: encoding differs");
    assert_eq!(a.report, b.report, "{what}: report differs");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{what}: cost differs");
}

fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eval_eq(&a.stage1, &b.stage1, "stage1");
    assert_eval_eq(&a.best, &b.best, "best");
    assert_eq!(a.allocator_iters, b.allocator_iters, "allocator_iters differ");
    assert_eq!(a.evals, b.evals, "evals differ");
}

#[test]
fn shim_matches_builder_bit_identically_on_fig2() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let cfg = quick(2025, 0.05);
    let shim = schedule(&net, &hw, &cfg);
    let session = Scheduler::new(&net, &hw).config(cfg).run();
    assert_outcome_eq(&shim, &session);
}

#[test]
fn shim_matches_builder_bit_identically_on_resnet() {
    let net = zoo::resnet50(1);
    let hw = HardwareConfig::edge();
    let cfg = quick(7, 0.005); // CI effort on a real CNN
    let shim = schedule(&net, &hw, &cfg);
    let session = Scheduler::new(&net, &hw).config(cfg).run();
    assert_outcome_eq(&shim, &session);
}

#[test]
fn cocco_shim_matches_builder_bit_identically() {
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let cfg = quick(9, 0.1);
    let shim = schedule_cocco(&net, &hw, &cfg);
    let session = Scheduler::cocco(&net, &hw).config(cfg).run().best;
    assert_eval_eq(&shim, &session, "cocco");
}

#[test]
fn portfolio_is_deterministic_for_a_fixed_seed_list() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let seeds = [11u64, 12, 13, 14];
    let a = Scheduler::new(&net, &hw).config(quick(0, 0.02)).seeds(seeds).run();
    let b = Scheduler::new(&net, &hw).config(quick(0, 0.02)).seeds(seeds).run();
    assert_outcome_eq(&a, &b);
}

#[test]
fn portfolio_best_envelopes_every_member_seed() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let seeds = [21u64, 22, 23];
    let portfolio = Scheduler::new(&net, &hw).config(quick(0, 0.02)).seeds(seeds).run();
    for seed in seeds {
        let single = Scheduler::new(&net, &hw).config(quick(seed, 0.02)).run();
        assert!(
            portfolio.best.cost <= single.best.cost,
            "portfolio {} vs seed {seed} {}",
            portfolio.best.cost,
            single.best.cost
        );
    }
}

#[test]
fn portfolio_observer_replays_per_seed_events_in_list_order() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let seeds = [31u64, 32];
    let mut events: Vec<SearchEvent> = Vec::new();
    let _ = Scheduler::new(&net, &hw)
        .config(quick(0, 0.02))
        .seeds(seeds)
        .observer(|ev| events.push(ev.clone()))
        .run();

    // Every seed's full event stream is replayed, terminated by its
    // SeedFinished, in seed-list order.
    let finished: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            SearchEvent::SeedFinished { seed, .. } => Some(*seed),
            _ => None,
        })
        .collect();
    assert_eq!(finished, seeds, "SeedFinished order");
    let rounds = events.iter().filter(|e| matches!(e, SearchEvent::RoundStarted { .. })).count();
    let exhausted =
        events.iter().filter(|e| matches!(e, SearchEvent::BudgetExhausted { .. })).count();
    assert!(rounds >= seeds.len(), "each seed contributed at least one round");
    assert_eq!(exhausted, seeds.len(), "each seed's session finished");
    // The first seed's events all precede the second SeedFinished event.
    let first_finish = events
        .iter()
        .position(|e| matches!(e, SearchEvent::SeedFinished { seed, .. } if *seed == seeds[0]))
        .expect("first seed finished");
    assert!(
        events[..first_finish]
            .iter()
            .any(|e| matches!(e, SearchEvent::RoundStarted { round: 0, .. })),
        "first seed's rounds replay before its SeedFinished"
    );
}

#[test]
fn observer_sees_events_in_pipeline_order() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let mut events: Vec<SearchEvent> = Vec::new();
    let out = Scheduler::new(&net, &hw)
        .config(quick(5, 0.05))
        .observer(|ev| events.push(ev.clone()))
        .run();

    // Round 0 always improves on "nothing": the first four events are
    // round -> stage1 (lfa) -> stage2 (dlsa) -> new best, in that order.
    assert!(
        matches!(events[0], SearchEvent::RoundStarted { round: 0, stage1_budget } if stage1_budget == hw.buffer_bytes),
        "first event: {:?}",
        events[0]
    );
    assert!(
        matches!(&events[1], SearchEvent::StageFinished { round: 0, stage, .. } if stage == "lfa"),
        "second event: {:?}",
        events[1]
    );
    assert!(
        matches!(&events[2], SearchEvent::StageFinished { round: 0, stage, .. } if stage == "dlsa"),
        "third event: {:?}",
        events[2]
    );
    assert!(
        matches!(events[3], SearchEvent::NewBest { round: 0, .. }),
        "fourth event: {:?}",
        events[3]
    );

    // The session ends with exactly one budget-exhausted event whose
    // totals match the outcome.
    let last = events.last().expect("events recorded");
    assert!(
        matches!(last, SearchEvent::BudgetExhausted { rounds, evals }
            if *rounds == out.allocator_iters && *evals == out.evals),
        "last event: {last:?}"
    );
    let exhausted =
        events.iter().filter(|e| matches!(e, SearchEvent::BudgetExhausted { .. })).count();
    assert_eq!(exhausted, 1);

    // Every round is announced before its stages, and rounds ascend.
    let mut current_round = None;
    for ev in &events {
        match ev {
            SearchEvent::RoundStarted { round, .. } => {
                assert_eq!(*round, current_round.map_or(0, |r: usize| r + 1));
                current_round = Some(*round);
            }
            SearchEvent::StageFinished { round, .. } | SearchEvent::NewBest { round, .. } => {
                assert_eq!(Some(*round), current_round, "stage/best outside its round");
            }
            _ => {}
        }
    }
    assert_eq!(current_round, Some(out.allocator_iters - 1));
}

#[test]
fn stepped_session_matches_blocking_run() {
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let mut session = Scheduler::new(&net, &hw).config(quick(33, 0.05)).build();
    let mut manual_rounds = 0;
    while session.step() == StepOutcome::Running {
        manual_rounds += 1;
        assert!(session.best().is_some(), "best visible between steps");
    }
    let stepped = session.into_outcome();
    let blocking = schedule(&net, &hw, &quick(33, 0.05));
    assert_outcome_eq(&stepped, &blocking);
    assert_eq!(manual_rounds + 1, stepped.allocator_iters);
}
