//! Property-based tests over the core invariants of the notation, parser
//! and simulator, using randomly generated chain networks, cut sets,
//! tiling numbers and DLSA mutations.

use proptest::prelude::*;
use soma::core::{lifetime, parse_lfa, Dlsa, Lfa};
use soma::model::zoo;
use soma::prelude::*;
use soma::sim::CoreArrayModel;

/// Strategy: a chain network plus a random valid LFA over it.
fn arb_lfa() -> impl Strategy<Value = (soma::model::Network, Lfa)> {
    (2u32..8, 1u32..5, 8u32..33, any::<u64>()).prop_map(|(depth, chans_p, hw, seed)| {
        let net = zoo::chain(1, 8 * chans_p, hw, depth);
        // Derive cuts/tiling pseudo-randomly but deterministically.
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as u32
        };
        let n = net.len();
        let mut flc = std::collections::BTreeSet::new();
        for p in 1..n {
            if next() % 2 == 0 {
                flc.insert(p);
            }
        }
        let dram_cuts: std::collections::BTreeSet<usize> =
            flc.iter().copied().filter(|_| next() % 2 == 0).collect();
        let n_groups = flc.len() + 1;
        let tiling: Vec<u32> = (0..n_groups).map(|_| 1 << (next() % 5)).collect();
        let lfa = Lfa {
            order: (0..n as u32).map(soma::model::LayerId).collect(),
            flc,
            tiling,
            dram_cuts,
        };
        (net, lfa)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every structurally valid LFA parses, and the plan's tile count
    /// equals the sum over FLGs of (layers x tiling).
    #[test]
    fn parse_tile_count_invariant((net, lfa) in arb_lfa()) {
        let plan = parse_lfa(&net, &lfa).unwrap();
        let expected: usize = lfa
            .flg_ranges()
            .iter()
            .zip(&lfa.tiling)
            .map(|(&(a, b), &t)| (b - a) * t as usize)
            .sum();
        prop_assert_eq!(plan.tiles.len(), expected);
    }

    /// Tile positions are a permutation of 0..n_tiles, consistent with
    /// tile_pos.
    #[test]
    fn tile_positions_are_dense((net, lfa) in arb_lfa()) {
        let plan = parse_lfa(&net, &lfa).unwrap();
        for (id, _) in net.iter() {
            for (i, &pos) in plan.tile_pos[id.index()].iter().enumerate() {
                let t = &plan.tiles[pos as usize];
                prop_assert_eq!(t.layer, id);
                prop_assert_eq!(t.tile_idx as usize, i);
            }
        }
    }

    /// Fusing strictly reduces (or keeps) total DRAM bytes relative to the
    /// fully-unfused plan at the same tiling.
    #[test]
    fn fusion_never_increases_dram_bytes((net, lfa) in arb_lfa()) {
        let plan = parse_lfa(&net, &lfa).unwrap();
        let mut unfused = Lfa::unfused(&net, 1);
        // Match per-layer tiling so the comparison is about fusion only.
        unfused.tiling = (0..net.len())
            .map(|i| {
                let g = plan.flg_of[lfa.order.iter().position(|&l| l.index() == i).unwrap_or(i)];
                lfa.tiling[g as usize]
            })
            .collect();
        let u = parse_lfa(&net, &unfused).unwrap();
        prop_assert!(plan.dram_bytes() <= u.dram_bytes());
    }

    /// The double-buffer DLSA always validates and never deadlocks, and
    /// the timeline respects the paper's start conditions.
    #[test]
    fn double_buffer_always_simulates((net, lfa) in arb_lfa()) {
        let plan = parse_lfa(&net, &lfa).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        prop_assert!(dlsa.validate(&plan).is_ok());
        let hw = HardwareConfig::edge();
        let mut model = CoreArrayModel::new(&hw);
        let tl = soma::sim::simulate(&plan, &dlsa, &hw, &mut model).unwrap();
        // Load-before-use and store-after-produce.
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                prop_assert!(tl.tensor_end[i] <= tl.tile_start[t.anchor as usize]);
            } else {
                prop_assert!(tl.tensor_start[i] >= tl.tile_end[t.anchor as usize]);
            }
        }
        prop_assert!(tl.latency >= tl.compute_busy.max(tl.dram_busy));
    }

    /// The buffer profile is exactly the sum of interval memberships —
    /// cross-check the difference-array implementation against a naive one.
    #[test]
    fn buffer_profile_matches_naive((net, lfa) in arb_lfa()) {
        let plan = parse_lfa(&net, &lfa).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        let fast = lifetime::buffer_profile(&plan, &dlsa);
        let n = plan.n_tiles() as usize;
        let mut naive = vec![0u64; n];
        for iv in &plan.onchip {
            for slot in naive.iter_mut().take((iv.to as usize + 1).min(n)).skip(iv.from as usize) {
                *slot += iv.bytes;
            }
        }
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            let (a, b) = if t.is_load {
                (dlsa.start[i] as usize, (t.last_use + 1) as usize)
            } else {
                (t.anchor as usize, dlsa.end[i].max(t.anchor + 1) as usize)
            };
            for slot in naive.iter_mut().take(b.min(n)).skip(a) {
                *slot += t.bytes;
            }
        }
        prop_assert_eq!(fast, naive);
    }

    /// Energy is invariant under DLSA changes (only timing moves), while
    /// latency may change.
    #[test]
    fn dlsa_changes_do_not_change_energy((net, lfa) in arb_lfa()) {
        let plan = parse_lfa(&net, &lfa).unwrap();
        let hw = HardwareConfig::edge();
        let base = Dlsa::double_buffer(&plan);
        let mut eager = base.clone();
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                eager.start[i] = 0;
            }
        }
        let sched_a = soma::core::ParsedSchedule { plan: plan.clone(), dlsa: base };
        let sched_b = soma::core::ParsedSchedule { plan, dlsa: eager };
        let a = evaluate(&net, &sched_a, &hw).unwrap();
        let b = evaluate(&net, &sched_b, &hw).unwrap();
        prop_assert!((a.energy.total_pj() - b.energy.total_pj()).abs() < 1e-6);
        prop_assert!(b.latency_cycles <= a.latency_cycles);
    }
}
