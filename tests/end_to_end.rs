//! Cross-crate integration tests: model -> notation -> evaluator ->
//! search, exercising the public API exactly as a downstream user would.

use soma::core::{parse_lfa, Dlsa, Encoding, Lfa, ParsedSchedule};
use soma::model::zoo;
use soma::prelude::*;
use soma::search::schedule_cocco;

fn quick(seed: u64) -> SearchConfig {
    SearchConfig { effort: 0.05, seed, ..SearchConfig::default() }
}

/// Fast deterministic CI gate: the whole pipeline on the paper's Fig. 2
/// example at minimal effort. Must stay well under 30 s.
#[test]
fn ci_smoke() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.01, seed: 2025, ..SearchConfig::default() };
    let out = soma::search::schedule(&net, &hw, &cfg);
    assert!(out.best.report.latency_cycles > 0);
    assert!(out.best.report.peak_buffer <= hw.buffer_bytes);
    // Same seed, same schedule: the search must be reproducible.
    let again = soma::search::schedule(&net, &hw, &cfg);
    assert_eq!(out.best.report.latency_cycles, again.best.report.latency_cycles);
    assert_eq!(out.best.cost, again.best.cost);
}

/// Correctness gate for the compiled evaluation engine (cheap, no
/// timing, cannot flake): on fig2 the compiled cost-only path and the
/// naive full-report path must produce bit-identical costs and reports.
#[test]
fn ci_smoke_compiled_engine_matches_naive_on_fig2() {
    use soma::search::{CostWeights, Objective};
    use soma::sim::{evaluate_parts, CoreArrayModel, SimScratch};

    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let mut obj = Objective::new(&net, &hw, CostWeights::default());
    for (lfa, label) in [(Lfa::unfused(&net, 4), "unfused"), (Lfa::fully_fused(&net, 4), "fused")] {
        // Objective level: full vs cost-only, bit-identical.
        let (full_cost, plan, dlsa, report) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        let fast_cost = obj.eval_lfa_cost(&lfa, hw.buffer_bytes).unwrap();
        assert_eq!(full_cost.to_bits(), fast_cost.to_bits(), "{label}: cost");

        // Engine level: compiled report vs naive report, field for field.
        let mut model = CoreArrayModel::new(&hw);
        let compiled = soma::sim::CompiledPlan::compile(&net, &plan, &hw, &mut model);
        let mut scratch = SimScratch::new();
        let engine_report = compiled.report(&plan, &dlsa, &mut scratch).unwrap();
        let naive_report = evaluate_parts(&net, &plan, &dlsa, &hw, &mut model).unwrap();
        assert_eq!(engine_report, naive_report, "{label}: report");
        assert_eq!(engine_report, report, "{label}: objective report");
    }
}

/// The declarative-spec gate: running the committed `specs/fig2_edge.soma`
/// experiment file through the spec layer reproduces the equivalent
/// hand-written `Scheduler::new(..).run()` **bit-for-bit, field-for-field**
/// — the spec layer adds description, never behaviour. CI also executes
/// the same file through `soma-bench --bin run`.
#[test]
fn ci_smoke_spec_run_reproduces_in_code_scheduler() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/fig2_edge.soma");
    let text = std::fs::read_to_string(path).expect("committed spec exists");
    let spec = soma::spec::read_experiment(&text).expect("committed spec parses");
    let rows = soma_bench::run_experiment(&spec, |_| {});
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].cell.id, "fig2@edge/b1");

    // The in-code twin, written out literally: same workload, platform
    // and knobs as the spec file declares.
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.01, seed: 2025, ..SearchConfig::default() };
    let direct = soma::search::Scheduler::new(&net, &hw).config(cfg).run();

    let got = &rows[0].outcome;
    assert_eq!(got.best.encoding, direct.best.encoding);
    assert_eq!(got.best.report, direct.best.report);
    assert_eq!(got.best.cost.to_bits(), direct.best.cost.to_bits());
    assert_eq!(got.stage1.encoding, direct.stage1.encoding);
    assert_eq!(got.stage1.report, direct.stage1.report);
    assert_eq!(got.stage1.cost.to_bits(), direct.stage1.cost.to_bits());
    assert_eq!(got.allocator_iters, direct.allocator_iters);
    assert_eq!(got.evals, direct.evals);
    assert_eq!(got.rejected, direct.rejected);
}

#[test]
fn full_pipeline_on_fig2() {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let out = soma::search::schedule(&net, &hw, &quick(1));
    // Best scheme parses, re-evaluates to identical numbers, and lowers.
    let sched = ParsedSchedule::new(&net, &out.best.encoding).unwrap();
    let report = evaluate(&net, &sched, &hw).unwrap();
    assert_eq!(report.latency_cycles, out.best.report.latency_cycles);
    let prog = soma::core::lower(&sched);
    assert_eq!(prog.compute_queue.len(), sched.plan.tiles.len());
}

#[test]
fn soma_stage2_improves_or_matches_stage1_on_resnet_slice() {
    // A realistic CNN slice: the first eight layers of ResNet-50.
    let net = zoo::chain(1, 64, 56, 8);
    let hw = HardwareConfig::edge();
    let out = soma::search::schedule(&net, &hw, &quick(3));
    assert!(out.best.cost <= out.stage1.cost);
    assert!(out.best.report.peak_buffer <= hw.buffer_bytes);
}

#[test]
fn soma_beats_unfused_baseline_on_fused_friendly_net() {
    let net = zoo::chain(1, 32, 56, 6);
    let hw = HardwareConfig::edge();
    let baseline = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 4))).unwrap();
    let base = evaluate(&net, &baseline, &hw).unwrap();
    let out = soma::search::schedule(&net, &hw, &quick(5));
    assert!(
        out.best.report.latency_cycles <= base.latency_cycles,
        "SoMa {} vs baseline {}",
        out.best.report.latency_cycles,
        base.latency_cycles
    );
    assert!(out.best.report.energy.total_pj() <= base.energy.total_pj());
}

#[test]
fn cocco_and_soma_run_on_every_edge_workload() {
    let hw = HardwareConfig::edge();
    for net in zoo::edge_suite(1) {
        let cfg = SearchConfig { effort: 0.005, seed: 11, ..SearchConfig::default() };
        let cocco = schedule_cocco(&net, &hw, &cfg);
        let out = soma::search::schedule(&net, &hw, &cfg);
        assert!(cocco.report.latency_cycles > 0, "{}", net.name());
        assert!(out.best.report.latency_cycles > 0, "{}", net.name());
        assert!(out.best.report.compute_util <= 1.0 + 1e-9, "{}", net.name());
    }
}

#[test]
fn decode_utilisation_is_tiny_and_prefill_is_not() {
    let hw = HardwareConfig::edge();
    let cfg = quick(13);
    let prefill = soma::search::schedule(&zoo::gpt2_small_prefill(1, 128), &hw, &cfg);
    let decode = soma::search::schedule(&zoo::gpt2_small_decode(1, 128), &hw, &cfg);
    assert!(
        decode.best.report.compute_util < 0.05,
        "decode util {}",
        decode.best.report.compute_util
    );
    assert!(prefill.best.report.compute_util > decode.best.report.compute_util * 3.0);
}

#[test]
fn theoretical_bound_dominates_all_schemes() {
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let out = soma::search::schedule(&net, &hw, &quick(17));
    for eval in [&out.stage1, &out.best] {
        assert!(eval.report.compute_util <= eval.report.theoretical_max_util + 1e-9);
    }
}

#[test]
fn bigger_buffer_never_hurts_soma() {
    let net = zoo::chain(1, 48, 28, 6);
    let small = HardwareConfig::builder().like(&HardwareConfig::edge()).buffer_mib(1).build();
    let large = HardwareConfig::builder().like(&HardwareConfig::edge()).buffer_mib(32).build();
    let a = soma::search::schedule(&net, &small, &quick(19));
    let b = soma::search::schedule(&net, &large, &quick(19));
    // Not strictly monotone per-seed (stochastic search), allow 10% slack.
    assert!(
        b.best.report.latency_cycles as f64 <= a.best.report.latency_cycles as f64 * 1.10,
        "32MB {} vs 1MB {}",
        b.best.report.latency_cycles,
        a.best.report.latency_cycles
    );
}

#[test]
fn fig4_paper_encoding_round_trip() {
    let net = zoo::fig4(1);
    let mut lfa = Lfa::fully_fused(&net, 2);
    lfa.flc = [1, 2].into_iter().collect();
    lfa.dram_cuts = [2].into_iter().collect();
    lfa.tiling = vec![2, 1, 2];
    let plan = parse_lfa(&net, &lfa).unwrap();
    let dlsa = Dlsa::double_buffer(&plan);
    let hw = HardwareConfig::edge();
    let sched = ParsedSchedule { plan, dlsa };
    let report = evaluate(&net, &sched, &hw).unwrap();
    assert!(report.latency_cycles > 0);
    assert!(report.dram_util > 0.0);
}
