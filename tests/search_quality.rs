//! Search-quality shape tests: the qualitative claims of the paper's
//! evaluation that must hold even at CI-scale effort.

use soma::core::{Encoding, Lfa, ParsedSchedule};
use soma::model::zoo;
use soma::prelude::*;
use soma::sim::{attribute_stalls, summarize};

fn cfg(seed: u64, effort: f64) -> SearchConfig {
    SearchConfig { effort, seed, ..SearchConfig::default() }
}

#[test]
fn stage2_reduces_attributed_stalls_on_weight_heavy_chain() {
    // A chain whose weights dominate traffic: prefetching is the only way
    // to hide the loads, which is exactly stage 2's job.
    let net = zoo::chain(1, 96, 28, 6);
    let hw = HardwareConfig::edge();
    let out = soma::search::schedule(&net, &hw, &cfg(21, 0.4));

    let s1 = ParsedSchedule::new(&net, &out.stage1.encoding).unwrap();
    let s2 = ParsedSchedule::new(&net, &out.best.encoding).unwrap();
    let stall1 = summarize(&attribute_stalls(&s1.plan, &s1.dlsa, &out.stage1.report.timeline));
    let stall2 = summarize(&attribute_stalls(&s2.plan, &s2.dlsa, &out.best.report.timeline));
    assert!(
        stall2.total() <= stall1.total(),
        "stage 2 stalls {} vs stage 1 {}",
        stall2.total(),
        stall1.total()
    );
}

#[test]
fn soma_fuses_fusion_friendly_chains() {
    // Deep stride-1 chain with small weights: fusion should collapse LGs
    // well below the layer count.
    let net = zoo::chain(1, 32, 56, 10);
    let hw = HardwareConfig::edge();
    let out = soma::search::schedule(&net, &hw, &cfg(23, 0.5));
    let shape = out.shape(&net);
    assert!(shape.lgs < net.len() / 2, "{} LGs for {} layers", shape.lgs, net.len());
}

#[test]
fn utilisation_close_to_theoretical_bound_after_stage2() {
    // The paper reports a 3.1% average gap; at tiny effort we accept a
    // loose bound but the ordering must hold.
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let out = soma::search::schedule(&net, &hw, &cfg(29, 0.5));
    let r = &out.best.report;
    assert!(r.compute_util <= r.theoretical_max_util + 1e-9);
    assert!(
        r.compute_util >= 0.5 * r.theoretical_max_util,
        "util {} far below bound {}",
        r.compute_util,
        r.theoretical_max_util
    );
}

#[test]
fn double_buffer_matches_paper_semantics_in_gap_structure() {
    // Under double-buffer, every layer-first tile in an unfused schedule
    // waits for its weights: the number of attributed weight stalls is at
    // most the number of weighted layers.
    let net = zoo::chain(1, 64, 28, 5);
    let hw = HardwareConfig::edge();
    let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 2))).unwrap();
    let report = evaluate(&net, &sched, &hw).unwrap();
    let stalls = attribute_stalls(&sched.plan, &sched.dlsa, &report.timeline);
    let weighted_layers = net.layers().iter().filter(|l| l.has_weights()).count();
    let weight_stalls = stalls
        .iter()
        .filter(|s| {
            matches!(
                s.cause,
                soma::sim::StallCause::Load { kind: soma::core::DramKind::Weight(_), .. }
            )
        })
        .count();
    assert!(weight_stalls <= weighted_layers * 2);
}

#[test]
fn cost_weights_change_the_optimum_direction() {
    // Pure-delay and pure-energy objectives must both run and the
    // delay-optimal scheme cannot be slower than the energy-optimal one.
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let delay_cfg =
        SearchConfig { weights: CostWeights { energy_exp: 0.0, delay_exp: 1.0 }, ..cfg(31, 0.4) };
    let energy_cfg =
        SearchConfig { weights: CostWeights { energy_exp: 1.0, delay_exp: 0.0 }, ..cfg(31, 0.4) };
    let d = soma::search::schedule(&net, &hw, &delay_cfg);
    let e = soma::search::schedule(&net, &hw, &energy_cfg);
    assert!(
        d.best.report.latency_cycles <= (e.best.report.latency_cycles as f64 * 1.05) as u64,
        "delay-optimised {} vs energy-optimised {}",
        d.best.report.latency_cycles,
        e.best.report.latency_cycles
    );
    assert!(
        e.best.report.energy.total_pj() <= d.best.report.energy.total_pj() * 1.05,
        "energy-optimised {} vs delay-optimised {}",
        e.best.report.energy.total_pj(),
        d.best.report.energy.total_pj()
    );
}
