//! Broad smoke coverage: every zoo network must parse, simulate and
//! lower under a handful of canonical encodings — no search involved, so
//! this stays fast while touching every operator kind the zoo uses.

use soma::core::{lower, parse_lfa, Dlsa, Lfa, ParsedSchedule};
use soma::model::zoo;
use soma::prelude::*;

#[test]
fn every_zoo_network_parses_and_simulates_unfused() {
    let hw = HardwareConfig::edge();
    for net in zoo::full_zoo(1) {
        let lfa = Lfa::unfused(&net, 2);
        let plan = parse_lfa(&net, &lfa).unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        let dlsa = Dlsa::double_buffer(&plan);
        let sched = ParsedSchedule { plan, dlsa };
        let report = evaluate(&net, &sched, &hw).unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        assert!(report.latency_cycles > 0, "{}", net.name());
        assert!(report.energy.total_pj() > 0.0, "{}", net.name());
        // Lowering covers every tensor and tile exactly once.
        let prog = lower(&sched);
        assert_eq!(prog.dram_queue.len(), sched.plan.dram_tensors.len());
        assert_eq!(prog.compute_queue.len(), sched.plan.tiles.len());
    }
}

#[test]
fn cnns_accept_full_fusion_transformers_do_not() {
    for net in [zoo::resnet50(1), zoo::vgg16(1), zoo::mobilenet_v2(1)] {
        // GlobalPool needs an FLC before it, so cut just there.
        let gp = net
            .iter()
            .find(|(_, l)| matches!(l.kind, soma::model::LayerKind::GlobalPool))
            .map(|(id, _)| id)
            .expect("cnn has a global pool");
        let mut lfa = Lfa::fully_fused(&net, 2);
        lfa.flc.insert(gp.index());
        lfa.flc.insert(gp.index() + 1);
        lfa.tiling = vec![2; lfa.flg_count()];
        assert!(parse_lfa(&net, &lfa).is_ok(), "{}", net.name());
    }
    for net in [zoo::bert_base(1, 64), zoo::gpt2_small_prefill(1, 64)] {
        // Attention matmuls make single-FLG full fusion illegal.
        assert!(parse_lfa(&net, &Lfa::fully_fused(&net, 1)).is_err(), "{}", net.name());
    }
}

#[test]
fn depthwise_tiles_run_on_the_pe_array_with_halo() {
    let net = zoo::mobilenet_v2(1);
    let lfa = Lfa::unfused(&net, 4);
    let plan = parse_lfa(&net, &lfa).unwrap();
    let dw_tile = plan
        .tiles
        .iter()
        .find(|t| matches!(net.layer(t.layer).kind, soma::model::LayerKind::DwConv { .. }))
        .expect("mobilenet has depthwise tiles");
    assert!(dw_tile.on_pe);
    assert!(dw_tile.weight_bytes > 0);
}

#[test]
fn batch_one_vs_four_keeps_relative_order_of_networks() {
    // Sanity on the analytical model: quadrupling the batch must not
    // shrink total unfused DRAM traffic for any zoo network.
    for (a, b) in zoo::full_zoo(1).into_iter().zip(zoo::full_zoo(4)) {
        let pa = parse_lfa(&a, &Lfa::unfused(&a, 1)).unwrap();
        let pb = parse_lfa(&b, &Lfa::unfused(&b, 1)).unwrap();
        assert!(pb.dram_bytes() >= pa.dram_bytes(), "{}", a.name());
    }
}
