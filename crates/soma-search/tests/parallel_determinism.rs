//! The hard invariant of the [`Parallelism`] API, as a property:
//! a portfolio run on N worker threads is **field-for-field identical**
//! to the same run inline on the calling thread — outcomes, eval
//! counters, and the complete buffered [`SearchEvent`] stream.
//!
//! This holds by construction (seed results merge in seed-list order
//! and every seed owns its RNG stream), so any divergence here means a
//! real bug in the work-stealing pool or the portfolio merge — not an
//! acceptable scheduling wobble.

use proptest::prelude::*;
use soma_arch::HardwareConfig;
use soma_model::zoo;
use soma_search::{Evaluated, Parallelism, Scheduler, SearchConfig, SearchEvent, SearchOutcome};

fn assert_evaluated_eq(which: &str, a: &Evaluated, b: &Evaluated) {
    assert_eq!(a.encoding, b.encoding, "{which}: encoding");
    assert_eq!(a.report, b.report, "{which}: report");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{which}: cost bits");
}

fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome) {
    assert_evaluated_eq("stage1", &a.stage1, &b.stage1);
    assert_evaluated_eq("best", &a.best, &b.best);
    assert_eq!(a.allocator_iters, b.allocator_iters, "allocator_iters");
    assert_eq!(a.evals, b.evals, "evals");
    assert_eq!(a.rejected, b.rejected, "rejected");
}

fn portfolio(par: Parallelism, seeds: &[u64], effort: f64) -> (SearchOutcome, Vec<SearchEvent>) {
    let net = zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort, seed: seeds[0], ..SearchConfig::default() };
    let mut events = Vec::new();
    let outcome = Scheduler::new(&net, &hw)
        .config(cfg)
        .seeds(seeds.iter().copied())
        .parallelism(par)
        .observer(|ev| events.push(ev.clone()))
        .run();
    (outcome, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any thread count, any seed portfolio: same outcome, same events.
    #[test]
    fn n_thread_portfolio_equals_sequential(
        threads in 2usize..8,
        seed_src in any::<u64>(),
    ) {
        // The vendored proptest has no collection strategies; derive a
        // 2..=4-seed portfolio from one generated u64 instead.
        let n_seeds = 2 + (seed_src % 3) as usize;
        let seeds: Vec<u64> = (0..n_seeds as u64)
            .map(|i| (seed_src.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i)) % 1000)
            .collect();
        let (seq_out, seq_events) = portfolio(Parallelism::Sequential, &seeds, 0.004);
        let (par_out, par_events) = portfolio(Parallelism::Fixed(threads), &seeds, 0.004);
        assert_outcome_eq(&seq_out, &par_out);
        assert_eq!(
            seq_events, par_events,
            "buffered event streams must replay identically in seed-list order"
        );
    }
}

/// `Auto` (global pool) obeys the same contract as `Fixed(n)` — one
/// plain test, since the global pool's size is machine-dependent.
#[test]
fn auto_portfolio_equals_sequential() {
    let seeds = [11, 7, 2025];
    let (seq_out, seq_events) = portfolio(Parallelism::Sequential, &seeds, 0.01);
    let (auto_out, auto_events) = portfolio(Parallelism::Auto, &seeds, 0.01);
    assert_outcome_eq(&seq_out, &auto_out);
    assert_eq!(seq_events, auto_events);
}
