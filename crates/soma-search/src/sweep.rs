//! Design-space exploration sweeps (paper Sec. VII-A / Fig. 7).
//!
//! Runs the full SoMa framework (and optionally the Cocco baseline) over
//! a grid of buffer-capacity x DRAM-bandwidth points, in parallel with
//! scoped threads, returning one latency/energy record per point. This is
//! the programmatic API behind the `fig7` harness binary and the
//! `dse_sweep` example.

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_model::Network;

use crate::session::Scheduler;
use crate::SearchConfig;

/// One grid point of the DSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPoint {
    /// GBUF capacity in bytes.
    pub buffer_bytes: u64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: u64,
}

/// Result at one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// The grid point.
    pub point: GridPoint,
    /// Best SoMa latency in cycles.
    pub soma_latency: u64,
    /// Best SoMa energy in picojoules.
    pub soma_energy_pj: f64,
    /// Cocco baseline latency in cycles (if requested).
    pub cocco_latency: Option<u64>,
}

/// Builds the cross product of buffer sizes (MiB) and bandwidths (bytes
/// per cycle = GB/s at 1 GHz).
pub fn grid(buffers_mib: &[u64], bandwidths: &[u64]) -> Vec<GridPoint> {
    let mut out = Vec::with_capacity(buffers_mib.len() * bandwidths.len());
    for &mib in buffers_mib {
        for &bw in bandwidths {
            out.push(GridPoint { buffer_bytes: mib << 20, dram_bytes_per_cycle: bw });
        }
    }
    out
}

/// Runs the sweep over `points`, spreading work across `threads`. With
/// `with_cocco`, each point also runs the baseline. Results come back in
/// grid order regardless of thread scheduling.
pub fn dse(
    net: &Network,
    base: &HardwareConfig,
    points: &[GridPoint],
    cfg: &SearchConfig,
    threads: usize,
    with_cocco: bool,
) -> Vec<DsePoint> {
    let mut results: Vec<Option<DsePoint>> = vec![None; points.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&point) = points.get(i) else { break };
                let hw = HardwareConfig::builder()
                    .like(base)
                    .name(format!(
                        "{}-{}MB-{}Bpc",
                        base.name,
                        point.buffer_bytes >> 20,
                        point.dram_bytes_per_cycle
                    ))
                    .buffer_bytes(point.buffer_bytes)
                    .dram_gbps(point.dram_bytes_per_cycle as f64 * base.freq_hz as f64 / 1e9)
                    .build();
                // Distinct seed per point so neighbouring cells explore
                // independently (as the paper's per-configuration seeds do).
                let cell_cfg = SearchConfig {
                    seed: cfg.seed ^ (i as u64).wrapping_mul(0x9E37),
                    ..cfg.clone()
                };
                let soma = Scheduler::new(net, &hw).config(cell_cfg.clone()).run();
                let cocco_latency = with_cocco.then(|| {
                    Scheduler::cocco(net, &hw).config(cell_cfg).run().best.report.latency_cycles
                });
                let record = DsePoint {
                    point,
                    soma_latency: soma.best.report.latency_cycles,
                    soma_energy_pj: soma.best.report.energy.total_pj(),
                    cocco_latency,
                };
                slots.lock().expect("result lock")[i] = Some(record);
            });
        }
    });

    results.into_iter().map(|r| r.expect("every grid point was processed")).collect()
}

/// Finds the paper's "red envelope" (Fig. 7): the cheapest hardware
/// points whose latency is within `tolerance` (relative) of the global
/// minimum across the sweep. The paper highlights that under SoMa this
/// set forms a lower triangle — large buffers substitute for DRAM
/// bandwidth.
pub fn envelope(points: &[DsePoint], tolerance: f64) -> Vec<GridPoint> {
    let best = points.iter().map(|p| p.soma_latency).min().unwrap_or(0);
    if best == 0 {
        return Vec::new();
    }
    let cut = best as f64 * (1.0 + tolerance);
    points.iter().filter(|p| (p.soma_latency as f64) <= cut).map(|p| p.point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn envelope_contains_the_minimum() {
        let mk = |b: u64, bw: u64, lat: u64| DsePoint {
            point: GridPoint { buffer_bytes: b, dram_bytes_per_cycle: bw },
            soma_latency: lat,
            soma_energy_pj: 1.0,
            cocco_latency: None,
        };
        let pts = vec![mk(1, 1, 100), mk(2, 2, 102), mk(4, 4, 150)];
        let env = envelope(&pts, 0.05);
        assert_eq!(env.len(), 2);
        assert!(env.contains(&pts[0].point));
        assert!(envelope(&[], 0.05).is_empty());
    }

    #[test]
    fn grid_is_cross_product_in_order() {
        let g = grid(&[2, 4], &[8, 16, 32]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], GridPoint { buffer_bytes: 2 << 20, dram_bytes_per_cycle: 8 });
        assert_eq!(g[5], GridPoint { buffer_bytes: 4 << 20, dram_bytes_per_cycle: 32 });
    }

    #[test]
    fn dse_returns_points_in_grid_order() {
        let net = zoo::fig2(1);
        let base = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.02, seed: 3, ..SearchConfig::default() };
        let points = grid(&[2, 8], &[8, 64]);
        let out = dse(&net, &base, &points, &cfg, 4, true);
        assert_eq!(out.len(), 4);
        for (p, r) in points.iter().zip(&out) {
            assert_eq!(&r.point, p);
            assert!(r.soma_latency > 0);
            assert!(r.cocco_latency.unwrap() > 0);
        }
    }

    #[test]
    fn more_bandwidth_helps_dram_bound_workloads() {
        let net = zoo::fig2(1);
        let base = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.05, seed: 7, ..SearchConfig::default() };
        let points = grid(&[8], &[4, 128]);
        let out = dse(&net, &base, &points, &cfg, 2, false);
        assert!(
            out[1].soma_latency <= out[0].soma_latency,
            "128 B/c {} vs 4 B/c {}",
            out[1].soma_latency,
            out[0].soma_latency
        );
    }
}
