//! Stage 1: SA over the layer-fusion-related attributes (paper Sec. V-C1).
//!
//! The DLSA is fixed to the classical double-buffer strategy while the LFA
//! varies. Operators: *Change Computing Order*, *Change Tiling Number*,
//! *Add/Delete an FLC*, *Add/Delete a DRAM Cut*.

use rand::rngs::StdRng;
use rand::Rng;
use soma_arch::HardwareConfig;
use soma_core::plan::MAX_TILING;
use soma_core::{ComputePlan, Dlsa, Lfa};
use soma_model::{LayerId, Network, Src};
use soma_sim::EvalReport;

use crate::objective::Objective;
use crate::sa::{anneal, SaSchedule};
use crate::stage::{RoundCtx, SearchStage, StageArtifact};
use crate::SearchConfig;

/// The minimum-granularity tiling number for a layer: the finest tiling
/// whose tiles still provide one full wave of spatial work to the core
/// array (the paper's stage-1 initial granularity, "the size required for
/// the core array to perform parallel computation").
pub fn min_granularity_tiling(net: &Network, hw: &HardwareConfig, id: LayerId) -> u32 {
    let of = net.layer(id).ofmap;
    let spatial_work = u64::from(of.n) * of.spatial();
    let lanes = u64::from(hw.cores) * u64::from(hw.spatial_parallel);
    let t = (spatial_work / lanes.max(1)).clamp(1, u64::from(MAX_TILING));
    prev_power_of_two(t as u32)
}

fn prev_power_of_two(x: u32) -> u32 {
    if x == 0 {
        1
    } else {
        1 << (31 - x.leading_zeros())
    }
}

/// The stage-1 initial solution: every layer its own FLG and LG, tiled at
/// minimum granularity.
pub fn initial_lfa(net: &Network, hw: &HardwareConfig) -> Lfa {
    let mut lfa = Lfa::unfused(net, 1);
    lfa.tiling = lfa.order.iter().map(|&id| min_granularity_tiling(net, hw, id)).collect();
    lfa
}

/// Valid insertion range `[lo, hi]` for moving `layer` within `order`
/// (positions are indices into the order *after* removing the layer).
fn move_range(net: &Network, order: &[LayerId], layer: LayerId) -> (usize, usize) {
    let cur = order.iter().position(|&l| l == layer).expect("layer in order");
    let mut lo = 0usize;
    let mut hi = order.len() - 1; // after removal the order has len-1 slots
    for (p, &other) in order.iter().enumerate() {
        if other == layer {
            continue;
        }
        // Position of `other` once `layer` is removed.
        let p_removed = if p > cur { p - 1 } else { p };
        let produces = net.layer(layer).inputs.contains(&Src::Layer(other));
        let consumes = net.layer(other).inputs.contains(&Src::Layer(layer));
        if produces {
            lo = lo.max(p_removed + 1);
        }
        if consumes {
            hi = hi.min(p_removed);
        }
    }
    (lo, hi)
}

/// FLG index containing order position `p`.
fn group_of(lfa: &Lfa, p: usize) -> usize {
    lfa.flc.iter().filter(|&&c| c <= p).count()
}

/// One random LFA mutation; `None` means the drawn operator had no valid
/// candidates (the annealer skips such proposals).
///
/// With `link_cuts` (ablation), the FLC and DRAM cut sets move together:
/// adding/removing a cut affects both sets and the DRAM-cut-only
/// operators are disabled.
pub fn mutate_lfa(net: &Network, lfa: &Lfa, rng: &mut StdRng, link_cuts: bool) -> Option<Lfa> {
    let n = lfa.order.len();
    let op = if link_cuts { rng.gen_range(0..4u8) } else { rng.gen_range(0..6u8) };
    match op {
        // Change Computing Order.
        0 => {
            let layer = lfa.order[rng.gen_range(0..n)];
            let (lo, hi) = move_range(net, &lfa.order, layer);
            if lo > hi {
                return None;
            }
            let q = rng.gen_range(lo..=hi);
            let mut order = lfa.order.clone();
            let cur = order.iter().position(|&l| l == layer).expect("present");
            order.remove(cur);
            order.insert(q, layer);
            if order == lfa.order {
                return None;
            }
            Some(Lfa { order, ..lfa.clone() })
        }
        // Change Tiling Number (x2 or /2).
        1 => {
            let g = rng.gen_range(0..lfa.tiling.len());
            let t = lfa.tiling[g];
            let t2 = if rng.gen_bool(0.5) { t.checked_mul(2)? } else { t / 2 };
            if t2 == 0 || t2 > MAX_TILING || t2 == t {
                return None;
            }
            let mut tiling = lfa.tiling.clone();
            tiling[g] = t2;
            Some(Lfa { tiling, ..lfa.clone() })
        }
        // Add an FLC: split a group; both halves inherit the tiling.
        2 => {
            let candidates: Vec<usize> = (1..n).filter(|p| !lfa.flc.contains(p)).collect();
            if candidates.is_empty() {
                return None;
            }
            let p = candidates[rng.gen_range(0..candidates.len())];
            let g = group_of(lfa, p);
            let mut out = lfa.clone();
            out.flc.insert(p);
            if link_cuts {
                out.dram_cuts.insert(p);
            }
            out.tiling.insert(g + 1, out.tiling[g]);
            Some(out)
        }
        // Delete an FLC (not a DRAM cut, unless cuts are linked): merge
        // two groups; the tiling is inherited probabilistically by
        // layer-count ratio.
        3 => {
            let candidates: Vec<usize> = lfa
                .flc
                .iter()
                .copied()
                .filter(|p| link_cuts || !lfa.dram_cuts.contains(p))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let p = candidates[rng.gen_range(0..candidates.len())];
            let g = lfa.flc.iter().position(|&c| c == p).expect("cut present");
            let ranges = lfa.flg_ranges();
            let (a, b) = (ranges[g].1 - ranges[g].0, ranges[g + 1].1 - ranges[g + 1].0);
            let keep_left = rng.gen_bool(a as f64 / (a + b) as f64);
            let mut out = lfa.clone();
            out.flc.remove(&p);
            out.dram_cuts.remove(&p);
            let inherited = if keep_left { out.tiling[g] } else { out.tiling[g + 1] };
            out.tiling[g] = inherited;
            out.tiling.remove(g + 1);
            Some(out)
        }
        // Add a DRAM cut (must already be an FLC).
        4 => {
            let candidates: Vec<usize> =
                lfa.flc.iter().copied().filter(|p| !lfa.dram_cuts.contains(p)).collect();
            if candidates.is_empty() {
                return None;
            }
            let p = candidates[rng.gen_range(0..candidates.len())];
            let mut out = lfa.clone();
            out.dram_cuts.insert(p);
            Some(out)
        }
        // Delete a DRAM cut (the FLC stays).
        _ => {
            if lfa.dram_cuts.is_empty() {
                return None;
            }
            let cuts: Vec<usize> = lfa.dram_cuts.iter().copied().collect();
            let p = cuts[rng.gen_range(0..cuts.len())];
            let mut out = lfa.clone();
            out.dram_cuts.remove(&p);
            Some(out)
        }
    }
}

/// Best scheme found by stage 1.
#[derive(Debug, Clone)]
pub struct Stage1Result {
    /// The winning LFA.
    pub lfa: Lfa,
    /// Its parsed plan.
    pub plan: ComputePlan,
    /// The implied double-buffer DLSA.
    pub dlsa: Dlsa,
    /// Evaluation under the double-buffer DLSA.
    pub report: EvalReport,
    /// Penalised objective value.
    pub cost: f64,
}

/// Runs the stage-1 annealer under a buffer budget.
///
/// # Panics
///
/// Panics if even the initial (unfused) solution fails to parse — that
/// would mean the network itself is malformed.
pub fn run_stage1(
    obj: &mut Objective<'_>,
    cfg: &SearchConfig,
    rng: &mut StdRng,
    buffer_limit: u64,
) -> Stage1Result {
    let net = obj.network();
    let init = initial_lfa(net, obj.hardware());
    let (init_cost, ..) =
        obj.eval_lfa(&init, buffer_limit).expect("the unfused initial solution must always parse");

    let iters = cfg.stage1_iters(net.len());
    let schedule = SaSchedule {
        t0: cfg.t0,
        alpha: cfg.alpha,
        iters,
        greedy_tail: iters / 10,
        time_budget: cfg.stage_time_budget(),
    };
    // The SA inner loop takes the engine's cost-only fast path (same
    // cost bits as `eval_lfa`, no report/timeline construction).
    let result = anneal(&schedule, rng, init, init_cost, |lfa, rng| {
        let cand = mutate_lfa(net, lfa, rng, cfg.link_cuts)?;
        let cost = obj.eval_lfa_cost(&cand, buffer_limit)?;
        Some((cand, cost))
    });

    let (cost, plan, dlsa, report) =
        obj.eval_lfa(&result.best, buffer_limit).expect("best stage-1 solution must re-evaluate");
    Stage1Result { lfa: result.best, plan, dlsa, report, cost }
}

/// Stage 1 as a composable [`SearchStage`]: anneals the LFA under the
/// round's shrinking buffer budget and hands the winner (with its
/// double-buffer DLSA) to the next stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct LfaStage;

impl SearchStage for LfaStage {
    fn name(&self) -> &'static str {
        "lfa"
    }

    fn run(&self, ctx: &mut RoundCtx<'_, '_>) -> StageArtifact {
        let s1 = run_stage1(ctx.obj, ctx.cfg, ctx.rng, ctx.stage1_limit);
        StageArtifact {
            lfa: s1.lfa,
            plan: s1.plan,
            dlsa: s1.dlsa,
            report: s1.report,
            cost: s1.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::CostWeights;
    use rand::SeedableRng;
    use soma_model::zoo;

    #[test]
    fn initial_lfa_parses_everywhere() {
        let hw = HardwareConfig::edge();
        for net in zoo::edge_suite(1) {
            let lfa = initial_lfa(&net, &hw);
            assert!(soma_core::parse_lfa(&net, &lfa).is_ok(), "{}", net.name());
        }
    }

    #[test]
    fn min_granularity_is_power_of_two() {
        let hw = HardwareConfig::edge();
        let net = zoo::resnet50(4);
        for (id, _) in net.iter() {
            let t = min_granularity_tiling(&net, &hw, id);
            assert!(t.is_power_of_two());
            assert!(t <= MAX_TILING);
        }
    }

    #[test]
    fn mutations_preserve_validity_mostly() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let mut rng = StdRng::seed_from_u64(11);
        let mut lfa = initial_lfa(&net, &hw);
        let mut applied = 0;
        for _ in 0..300 {
            if let Some(cand) = mutate_lfa(&net, &lfa, &mut rng, false) {
                // Structural invariants the operators must maintain:
                assert_eq!(cand.tiling.len(), cand.flg_count());
                assert!(cand.dram_cuts.iter().all(|c| cand.flc.contains(c)));
                if soma_core::parse_lfa(&net, &cand).is_ok() {
                    lfa = cand;
                    applied += 1;
                }
            }
        }
        assert!(applied > 50, "only {applied} mutations applied");
    }

    #[test]
    fn move_range_respects_dependencies() {
        let net = zoo::fig4(1);
        let lfa = Lfa::unfused(&net, 1);
        // Layer E (index 3) must stay after C (2) and before D (4).
        let (lo, hi) = move_range(&net, &lfa.order, LayerId(3));
        assert_eq!((lo, hi), (3, 3));
        // Layer A (0) must stay before B.
        let (lo, hi) = move_range(&net, &lfa.order, LayerId(0));
        assert_eq!((lo, hi), (0, 0));
    }

    #[test]
    fn linked_cuts_mutations_keep_sets_equal() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let mut rng = StdRng::seed_from_u64(23);
        let mut lfa = initial_lfa(&net, &hw); // unfused: flc == dram_cuts
        for _ in 0..200 {
            if let Some(cand) = mutate_lfa(&net, &lfa, &mut rng, true) {
                assert_eq!(cand.flc, cand.dram_cuts);
                if soma_core::parse_lfa(&net, &cand).is_ok() {
                    lfa = cand;
                }
            }
        }
    }

    #[test]
    fn stage1_improves_over_initial() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SearchConfig { effort: 1.0, seed: 5, ..SearchConfig::default() };
        let init = initial_lfa(&net, &hw);
        let init_cost = obj.eval_lfa(&init, hw.buffer_bytes).unwrap().0;
        let res = run_stage1(&mut obj, &cfg, &mut rng, hw.buffer_bytes);
        assert!(res.cost <= init_cost);
        // Fusion should appear: fewer LGs than layers.
        assert!(res.lfa.lg_count() <= net.len());
    }
}
