//! The session API of the exploration framework: a [`Scheduler`] builder
//! configures one search (network, hardware, knobs, stage pipeline,
//! observer, seeds) and yields a stepping [`SearchSession`] whose
//! [`step`](SearchSession::step) advances exactly one Buffer Allocator
//! round, emitting typed [`SearchEvent`]s along the way.
//!
//! The monolithic entry points [`schedule`](crate::schedule) and
//! [`schedule_cocco`](crate::schedule_cocco) are thin shims over this
//! module and produce bit-identical results at the same seed: a session
//! drives the same objective, the same RNG stream and the same allocator
//! policy, it just hands control back between rounds.
//!
//! Multi-seed portfolio mode ([`Scheduler::seeds`]) races N independent
//! sessions across threads and returns the envelope best (ties go to
//! the earliest seed in the list). How the race spreads over cores is
//! set by [`Scheduler::parallelism`] — and because each seed owns its
//! RNG stream and results merge in seed-list order, the outcome is
//! bit-identical across every [`Parallelism`] variant and thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_model::Network;

use crate::allocator::SearchOutcome;
use crate::objective::{Evaluated, Objective};
use crate::stage::{RoundCtx, SearchStage, StageSpec};
use crate::{Parallelism, SearchConfig};

/// A typed progress event emitted by a [`SearchSession`]. Events carry
/// plain numbers (no schemes), so logging them is cheap and they
/// serialise for run records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchEvent {
    /// A Buffer Allocator round began with the given stage-1 budget.
    RoundStarted {
        /// Zero-based round index.
        round: usize,
        /// Stage-1 buffer budget (bytes) of this round.
        stage1_budget: u64,
    },
    /// One stage of the round's pipeline finished.
    StageFinished {
        /// Zero-based round index.
        round: usize,
        /// The stage's [`name`](crate::stage::SearchStage::name).
        stage: String,
        /// Penalised objective value of the stage's best scheme.
        cost: f64,
        /// Cumulative schedule evaluations so far.
        evals: u64,
    },
    /// The round produced a new best overall scheme.
    NewBest {
        /// Zero-based round index.
        round: usize,
        /// Penalised objective value of the new best.
        cost: f64,
        /// Latency of the new best in cycles.
        latency_cycles: u64,
    },
    /// One seed of a multi-seed portfolio finished.
    SeedFinished {
        /// The seed.
        seed: u64,
        /// Best cost that seed reached.
        cost: f64,
        /// Completed schedule evaluations of that seed's session.
        evals: u64,
        /// Failed evaluation attempts (deadlocked DLSAs, invalid LFAs)
        /// of that seed's session — kept apart from `evals` so
        /// throughput metrics do not conflate proposals with completed
        /// evaluations.
        rejected: u64,
    },
    /// The session finished: allocator budget, round cap or convergence.
    BudgetExhausted {
        /// Rounds executed.
        rounds: usize,
        /// Total schedule evaluations.
        evals: u64,
    },
}

/// What [`SearchSession::step`] reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More rounds remain; call [`SearchSession::step`] again.
    Running,
    /// The session is finished; take the [`SearchOutcome`].
    Finished,
}

/// The typed "search was cancelled" error returned by
/// [`SearchSession::run_cancellable`] /
/// [`Scheduler::run_cancellable`] when the registered
/// [`cancel_when`](Scheduler::cancel_when) probe fired. Deliberately
/// carries nothing: a cancelled search has no partial result worth
/// keeping (serve discards the work; the cache stays coherent because
/// nothing was persisted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("search cancelled")
    }
}

impl std::error::Error for Cancelled {}

type Observer<'o> = Box<dyn FnMut(&SearchEvent) + 'o>;
type CancelProbe<'a> = &'a (dyn Fn() -> bool + Sync);

/// Builder for a search session over one network + hardware pair.
///
/// ```
/// use soma_arch::HardwareConfig;
/// use soma_model::zoo;
/// use soma_search::{Scheduler, SearchConfig};
///
/// let net = zoo::fig2(1);
/// let hw = HardwareConfig::edge();
/// let cfg = SearchConfig { effort: 0.02, seed: 1, ..SearchConfig::default() };
/// let out = Scheduler::new(&net, &hw).config(cfg).run();
/// assert!(out.best.cost <= out.stage1.cost);
/// ```
#[must_use = "a Scheduler does nothing until you call build() or run()"]
pub struct Scheduler<'a, 'o> {
    net: &'a Network,
    hw: &'a HardwareConfig,
    cfg: SearchConfig,
    stages: Vec<StageSpec>,
    allocator_loop: bool,
    seeds: Vec<u64>,
    par: Parallelism,
    observer: Option<Observer<'o>>,
    cancel: Option<CancelProbe<'a>>,
}

impl<'a, 'o> Scheduler<'a, 'o> {
    /// The full SoMa pipeline: Buffer Allocator around
    /// [`StageSpec::SOMA`] (stage 1 + stage 2).
    pub fn new(net: &'a Network, hw: &'a HardwareConfig) -> Self {
        Self {
            net,
            hw,
            cfg: SearchConfig::default(),
            stages: StageSpec::SOMA.to_vec(),
            allocator_loop: true,
            seeds: Vec::new(),
            par: Parallelism::Auto,
            observer: None,
            cancel: None,
        }
    }

    /// The Cocco baseline: a single round of [`StageSpec::COCCO`] (the
    /// restricted space explores no buffer trade-off, so the allocator
    /// loop is off).
    pub fn cocco(net: &'a Network, hw: &'a HardwareConfig) -> Self {
        Self { stages: StageSpec::COCCO.to_vec(), allocator_loop: false, ..Self::new(net, hw) }
    }

    /// Sets the framework configuration (default: [`SearchConfig::default`]).
    pub fn config(mut self, cfg: SearchConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replaces the per-round stage pipeline. Panics on an empty pipeline.
    pub fn stages(mut self, specs: impl IntoIterator<Item = StageSpec>) -> Self {
        self.stages = specs.into_iter().collect();
        assert!(!self.stages.is_empty(), "a session needs at least one stage");
        self
    }

    /// Registers a progress observer called for every [`SearchEvent`].
    /// In single-seed runs events arrive live, mid-search; in portfolio
    /// mode ([`seeds`](Self::seeds) with ≥ 2 entries) each seed's events
    /// are buffered and replayed in seed-list order when the portfolio
    /// completes (see [`run`](Self::run)).
    pub fn observer(mut self, f: impl FnMut(&SearchEvent) + 'o) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Sets the seed list. One seed overrides `cfg.seed`; several switch
    /// [`run`](Self::run) into portfolio mode racing one session per seed.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets how portfolio mode spreads seeds across threads (default
    /// [`Parallelism::Auto`]). The outcome — and every observed event —
    /// is bit-identical across all variants; only wall-clock differs.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Registers a cooperative-cancel probe, polled by
    /// [`SearchSession::step`] at round start and between stages. When
    /// it first returns `true` the session stops doing work and
    /// [`run_cancellable`](Self::run_cancellable) returns
    /// [`Err(Cancelled)`](Cancelled). In portfolio mode every seed's
    /// session shares the probe, so one flag aborts the whole race.
    ///
    /// A probe that never fires is invisible: the search makes exactly
    /// the same decisions with or without it, so outcomes (and cell
    /// hashes) of uncancelled runs are unchanged.
    pub fn cancel_when(mut self, probe: &'a (dyn Fn() -> bool + Sync)) -> Self {
        self.cancel = Some(probe);
        self
    }

    /// Builds the stepping session for a single seed (the first of
    /// [`seeds`](Self::seeds) if given, else `cfg.seed`). Portfolio mode
    /// is only reachable through [`run`](Self::run) — a session is one
    /// RNG stream.
    pub fn build(self) -> SearchSession<'a, 'o> {
        let mut cfg = self.cfg;
        if let Some(&first) = self.seeds.first() {
            cfg.seed = first;
        }
        let mut session = SearchSession::with_specs(
            self.net,
            self.hw,
            cfg,
            &self.stages,
            self.allocator_loop,
            self.observer,
        );
        session.cancel = self.cancel;
        session
    }

    /// Drives the search to completion. With two or more
    /// [`seeds`](Self::seeds), races one session per seed across the
    /// threads chosen by [`parallelism`](Self::parallelism) and returns
    /// the envelope best; ties keep the earliest seed. Each seed owns
    /// its RNG stream and results merge in seed-list order, so the
    /// outcome is deterministic for a fixed list — bit-identical across
    /// every [`Parallelism`] variant and thread count.
    ///
    /// In portfolio mode each seed's session buffers its events and the
    /// observer sees them replayed in seed-list order once the portfolio
    /// completes, each batch followed by that seed's
    /// [`SearchEvent::SeedFinished`] — observers need not be thread-safe.
    pub fn run(self) -> SearchOutcome {
        self.run_cancellable()
            .expect("search cancelled: use run_cancellable() with a cancel_when probe")
    }

    /// Like [`run`](Self::run), but honours the
    /// [`cancel_when`](Self::cancel_when) probe: once it fires, every
    /// seed's session stops at its next poll point and the whole call
    /// returns [`Err(Cancelled)`](Cancelled) with all partial work
    /// discarded (no events are replayed either — a cancelled search
    /// reports nothing).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] if the probe fired before the portfolio completed.
    pub fn run_cancellable(mut self) -> Result<SearchOutcome, Cancelled> {
        if self.seeds.len() <= 1 {
            return self.build().run_cancellable();
        }
        let seeds = std::mem::take(&mut self.seeds);
        let mut observer = self.observer.take();
        let (net, hw, cfg) = (self.net, self.hw, self.cfg);
        let (stages, allocator_loop) = (self.stages, self.allocator_loop);
        let cancel = self.cancel;
        let record_events = observer.is_some();

        let outcomes: Vec<(u64, Result<SearchOutcome, Cancelled>, Vec<SearchEvent>)> =
            self.par.map_collect(seeds, |seed| {
                let cfg = SearchConfig { seed, ..cfg.clone() };
                let mut events: Vec<SearchEvent> = Vec::new();
                let recorder: Option<Observer<'_>> = record_events
                    .then(|| -> Observer<'_> { Box::new(|ev| events.push(ev.clone())) });
                let mut session =
                    SearchSession::with_specs(net, hw, cfg, &stages, allocator_loop, recorder);
                session.cancel = cancel;
                let out = session.run_cancellable();
                (seed, out, events)
            });

        if outcomes.iter().any(|(_, out, _)| out.is_err()) {
            return Err(Cancelled);
        }
        if let Some(f) = observer.as_mut() {
            for (seed, out, events) in &outcomes {
                let out = out.as_ref().expect("checked above");
                for ev in events {
                    f(ev);
                }
                f(&SearchEvent::SeedFinished {
                    seed: *seed,
                    cost: out.best.cost,
                    evals: out.evals,
                    rejected: out.rejected,
                });
            }
        }
        Ok(outcomes
            .into_iter()
            .map(|(_, out, _)| out.expect("checked above"))
            .reduce(|best, cand| if cand.best.cost < best.best.cost { cand } else { best })
            .expect("portfolio mode requires at least two seeds"))
    }
}

/// A resumable, observable search in progress: each [`step`](Self::step)
/// runs one complete Buffer Allocator round (the configured stage
/// pipeline under the current stage-1 budget) and applies the allocator
/// policy — keep the best overall scheme, stop after two consecutive
/// non-improving budgets, shrink the stage-1 budget by
/// `allocator_step x Buffer_max`.
#[must_use = "a SearchSession does nothing until you call step() or run()"]
pub struct SearchSession<'a, 'o> {
    obj: Objective<'a>,
    cfg: SearchConfig,
    rng: StdRng,
    stages: Vec<Box<dyn SearchStage>>,
    observer: Option<Observer<'o>>,
    /// Full hardware buffer capacity (the stage-2 budget).
    buffer_limit: u64,
    /// Shrinking stage-1 budget for the next round.
    stage1_limit: u64,
    /// `Buffer_max`: stage-1 peak occupancy of the unconstrained round.
    buffer_max: u64,
    rounds_done: usize,
    max_rounds: usize,
    consecutive_fails: usize,
    /// Best `(first-stage snapshot, final scheme)` so far.
    best: Option<(Evaluated, Evaluated)>,
    finished: bool,
    cancel: Option<CancelProbe<'a>>,
    cancelled: bool,
}

impl<'a, 'o> SearchSession<'a, 'o> {
    fn with_specs(
        net: &'a Network,
        hw: &'a HardwareConfig,
        cfg: SearchConfig,
        specs: &[StageSpec],
        allocator_loop: bool,
        observer: Option<Observer<'o>>,
    ) -> Self {
        assert!(!specs.is_empty(), "a session needs at least one stage");
        let max_rounds = if allocator_loop { cfg.max_allocator_iters.max(1) } else { 1 };
        Self {
            obj: Objective::new(net, hw, cfg.weights),
            rng: StdRng::seed_from_u64(cfg.seed),
            stages: specs.iter().map(|s| s.instantiate()).collect(),
            observer,
            buffer_limit: hw.buffer_bytes,
            stage1_limit: hw.buffer_bytes,
            buffer_max: 0,
            rounds_done: 0,
            max_rounds,
            consecutive_fails: 0,
            best: None,
            finished: false,
            cancel: None,
            cancelled: false,
            cfg,
        }
    }

    /// Polls the cancel probe; once it fires the session is finished
    /// for good and never touches the objective again.
    fn poll_cancel(&mut self) -> bool {
        if !self.cancelled && self.cancel.is_some_and(|probe| probe()) {
            self.cancelled = true;
            self.finished = true;
        }
        self.cancelled
    }

    fn emit(&mut self, ev: SearchEvent) {
        if let Some(f) = self.observer.as_mut() {
            f(&ev);
        }
    }

    /// Runs one Buffer Allocator round. Returns [`StepOutcome::Finished`]
    /// once the session is over (further calls are no-ops).
    pub fn step(&mut self) -> StepOutcome {
        if self.finished || self.poll_cancel() {
            return StepOutcome::Finished;
        }
        let round = self.rounds_done;
        self.emit(SearchEvent::RoundStarted { round, stage1_budget: self.stage1_limit });

        // Run the stage pipeline. The observer, the cancel probe and
        // the round context borrow disjoint fields, so events can flow
        // (and cancellation can land) mid-round.
        let cancel = self.cancel;
        let mut cancelled_mid_round = false;
        let pipeline = {
            let observer = &mut self.observer;
            let mut ctx = RoundCtx {
                obj: &mut self.obj,
                cfg: &self.cfg,
                rng: &mut self.rng,
                stage1_limit: self.stage1_limit,
                buffer_limit: self.buffer_limit,
                current: None,
            };
            let mut first: Option<Evaluated> = None;
            for stage in &self.stages {
                let art = stage.run(&mut ctx);
                if let Some(f) = observer.as_mut() {
                    f(&SearchEvent::StageFinished {
                        round,
                        stage: stage.name().to_string(),
                        cost: art.cost,
                        evals: ctx.obj.evals(),
                    });
                }
                if first.is_none() {
                    first = Some(art.evaluated());
                }
                ctx.current = Some(art);
                if cancel.is_some_and(|probe| probe()) {
                    cancelled_mid_round = true;
                    break;
                }
            }
            if cancelled_mid_round {
                None
            } else {
                let last =
                    ctx.current.take().expect("pipeline has at least one stage").into_evaluated();
                Some((first.expect("pipeline has at least one stage"), last))
            }
        };
        let Some((first, last)) = pipeline else {
            // The round is abandoned wholesale: nothing it computed is
            // kept, so a cancelled session can never leak a partial
            // result into `best`.
            self.cancelled = true;
            self.finished = true;
            return StepOutcome::Finished;
        };
        self.rounds_done += 1;
        if round == 0 {
            self.buffer_max = first.report.peak_buffer.max(1);
        }

        let improved = self.best.as_ref().is_none_or(|(_, b)| last.cost < b.cost);
        let mut done = false;
        if improved {
            self.emit(SearchEvent::NewBest {
                round,
                cost: last.cost,
                latency_cycles: last.report.latency_cycles,
            });
            self.best = Some((first, last));
            self.consecutive_fails = 0;
        } else {
            self.consecutive_fails += 1;
            done = self.consecutive_fails >= 2;
        }

        done = done || self.rounds_done >= self.max_rounds;
        if !done {
            // Shrink the stage-1 budget for the next round.
            let step = (self.cfg.allocator_step * self.buffer_max as f64) as u64;
            if step == 0 || self.stage1_limit <= step {
                done = true;
            } else {
                self.stage1_limit -= step;
            }
        }
        if done {
            self.finished = true;
            self.emit(SearchEvent::BudgetExhausted {
                rounds: self.rounds_done,
                evals: self.obj.evals(),
            });
            return StepOutcome::Finished;
        }
        StepOutcome::Running
    }

    /// Whether the session has finished.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Whether the session was stopped by its
    /// [`cancel_when`](Scheduler::cancel_when) probe. A cancelled
    /// session is finished, holds no claimable outcome, and will never
    /// do work again.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds_done
    }

    /// Completed schedule evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.obj.evals()
    }

    /// Failed evaluation attempts so far (deadlocked DLSAs, invalid
    /// LFAs).
    pub fn rejected(&self) -> u64 {
        self.obj.rejected()
    }

    /// The best overall scheme found so far (`None` before the first
    /// round completes).
    pub fn best(&self) -> Option<&Evaluated> {
        self.best.as_ref().map(|(_, b)| b)
    }

    /// The stage-1 budget the *next* round will run under.
    pub fn stage1_budget(&self) -> u64 {
        self.stage1_limit
    }

    /// Drives the remaining rounds to completion and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if a [`cancel_when`](Scheduler::cancel_when) probe fired
    /// — cancellable callers use [`run_cancellable`](Self::run_cancellable).
    pub fn run(mut self) -> SearchOutcome {
        while self.step() == StepOutcome::Running {}
        assert!(
            !self.cancelled,
            "search cancelled: use run_cancellable() with a cancel_when probe"
        );
        self.into_outcome()
    }

    /// Drives the remaining rounds to completion, honouring the
    /// [`cancel_when`](Scheduler::cancel_when) probe.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] if the probe fired before the session finished;
    /// all partial work is discarded.
    pub fn run_cancellable(mut self) -> Result<SearchOutcome, Cancelled> {
        while self.step() == StepOutcome::Running {}
        if self.cancelled {
            return Err(Cancelled);
        }
        Ok(self.into_outcome())
    }

    /// Consumes the session into its [`SearchOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet — call [`step`](Self::step) or
    /// [`run`](Self::run) first.
    pub fn into_outcome(self) -> SearchOutcome {
        let (stage1, best) = self.best.expect("no allocator round has run; call step() or run()");
        SearchOutcome {
            stage1,
            best,
            allocator_iters: self.rounds_done,
            evals: self.obj.evals(),
            rejected: self.obj.rejected(),
        }
    }
}

impl std::fmt::Debug for SearchSession<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession")
            .field("rounds_done", &self.rounds_done)
            .field("max_rounds", &self.max_rounds)
            .field("stage1_limit", &self.stage1_limit)
            .field("finished", &self.finished)
            .field("best_cost", &self.best.as_ref().map(|(_, b)| b.cost))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    fn quick(seed: u64) -> SearchConfig {
        SearchConfig { effort: 0.05, seed, ..SearchConfig::default() }
    }

    #[test]
    fn stepping_matches_run_to_completion() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut session = Scheduler::new(&net, &hw).config(quick(5)).build();
        while session.step() == StepOutcome::Running {}
        let stepped = session.into_outcome();
        let ran = Scheduler::new(&net, &hw).config(quick(5)).build().run();
        assert_eq!(stepped.best.encoding, ran.best.encoding);
        assert_eq!(stepped.best.cost, ran.best.cost);
        assert_eq!(stepped.allocator_iters, ran.allocator_iters);
        assert_eq!(stepped.evals, ran.evals);
    }

    #[test]
    fn step_after_finish_is_a_noop() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut session = Scheduler::new(&net, &hw).config(quick(6)).build();
        while session.step() == StepOutcome::Running {}
        let evals = session.evals();
        assert_eq!(session.step(), StepOutcome::Finished);
        assert_eq!(session.evals(), evals, "no work after finish");
        assert!(session.is_finished());
    }

    #[test]
    fn session_exposes_progress_between_steps() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut session = Scheduler::new(&net, &hw).config(quick(7)).build();
        assert!(session.best().is_none());
        assert_eq!(session.rounds(), 0);
        let _ = session.step();
        assert!(session.best().is_some());
        assert_eq!(session.rounds(), 1);
        assert!(session.evals() > 0);
        assert!(session.stage1_budget() < hw.buffer_bytes, "budget shrank after round 0");
    }

    #[test]
    fn single_seed_in_list_overrides_config_seed() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let direct = Scheduler::new(&net, &hw).config(quick(42)).run();
        let listed = Scheduler::new(&net, &hw).config(quick(0)).seeds([42]).run();
        assert_eq!(direct.best.encoding, listed.best.encoding);
        assert_eq!(direct.best.cost, listed.best.cost);
    }

    #[test]
    fn cancel_probe_aborts_the_session_with_a_typed_error() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();

        // A probe that never fires changes nothing.
        let never = || false;
        let out = Scheduler::new(&net, &hw)
            .config(quick(5))
            .cancel_when(&never)
            .run_cancellable()
            .expect("uncancelled run completes");
        let plain = Scheduler::new(&net, &hw).config(quick(5)).run();
        assert_eq!(out.best.encoding, plain.best.encoding);
        assert_eq!(out.evals, plain.evals);

        // A probe armed mid-flight cancels: typed error, no outcome.
        let polls = AtomicUsize::new(0);
        let after_two = move || polls.fetch_add(1, Ordering::SeqCst) >= 2;
        let res =
            Scheduler::new(&net, &hw).config(quick(5)).cancel_when(&after_two).run_cancellable();
        assert_eq!(res.unwrap_err(), Cancelled);

        // A pre-fired probe stops before any work.
        let flag = AtomicBool::new(true);
        let probe = || flag.load(Ordering::SeqCst);
        let mut session = Scheduler::new(&net, &hw).config(quick(5)).cancel_when(&probe).build();
        assert_eq!(session.step(), StepOutcome::Finished);
        assert!(session.is_cancelled());
        assert_eq!(session.evals(), 0, "no work after a pre-fired cancel");
    }

    #[test]
    fn cancelled_portfolio_returns_cancelled() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let polls = AtomicUsize::new(0);
        let probe = move || polls.fetch_add(1, Ordering::SeqCst) >= 3;
        let res = Scheduler::new(&net, &hw)
            .config(quick(0))
            .seeds([3u64, 4, 5])
            .cancel_when(&probe)
            .run_cancellable();
        assert_eq!(res.unwrap_err(), Cancelled);
    }

    #[test]
    fn portfolio_returns_envelope_best_of_its_seeds() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let seeds = [3u64, 4, 5];
        let portfolio = Scheduler::new(&net, &hw).config(quick(0)).seeds(seeds).run();
        for seed in seeds {
            let single = Scheduler::new(&net, &hw).config(quick(seed)).run();
            assert!(
                portfolio.best.cost <= single.best.cost,
                "portfolio {} vs seed {seed} {}",
                portfolio.best.cost,
                single.best.cost
            );
        }
    }
}
