//! Persistence of search results: [`SearchOutcome`] ⇄ JSON **and**
//! ⇄ compact binary, for the experiment run ledger
//! (`soma-bench --bin lab`).
//!
//! Both conversions are **lossless and deterministic**: every field of
//! the outcome — schemes, full evaluation reports including the exact
//! timeline, and the `f64` cost/energy values bit-for-bit (via the
//! vendored serde facade's round-trip-exact float rendering, and the
//! raw IEEE-754 bit pattern on the binary side) — survives
//! `outcome_from_json(parse(to_string(outcome_to_json(o))))` and
//! `outcome_from_bytes(&outcome_to_bytes(o))`, and equal outcomes
//! always render byte-identically. That is what lets a ledger hit
//! replace a search without perturbing a single downstream byte (CSV
//! rows, envelope bests, resumed ledgers), and what makes the v2 JSONL
//! → v3 binary ledger migration an identity on the rows.
//!
//! JSON is the human-readable debug surface (`lab --ledger-format
//! json`, quarantine sidecars); binary is the default on-disk frame
//! payload of ledger format v3 (`specs/LEDGER.md`).

use serde::json::{self, Value};
use soma_core::{Dlsa, Encoding, Lfa};
use soma_model::LayerId;
use soma_sim::{EnergyBreakdown, EvalReport, Timeline};

use crate::allocator::SearchOutcome;
use crate::objective::Evaluated;
use crate::session::SearchEvent;
use crate::wire::{self, Reader, WireError};

/// Version tag of the search/evaluation engine, hashed into ledger cell
/// keys. Bump whenever a change alters what any search returns at a
/// fixed seed (mutation operators, cooling schedule, cost model,
/// evaluator semantics) so stale ledger rows stop matching instead of
/// silently masking the change.
pub const ENGINE_VERSION: &str = "soma-engine-1";

/// A malformed persisted outcome (schema drift, truncated data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordError {
    /// What was wrong, as a `path: problem` description.
    pub msg: String,
}

impl RecordError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad outcome record: {}", self.msg)
    }
}

impl std::error::Error for RecordError {}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, RecordError> {
    v.get(key).ok_or_else(|| RecordError::new(format!("missing field `{key}`")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, RecordError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| RecordError::new(format!("field `{key}` is not an unsigned integer")))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, RecordError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| RecordError::new(format!("field `{key}` is not a number")))
}

fn get_arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], RecordError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| RecordError::new(format!("field `{key}` is not an array")))
}

fn u64_vec(v: &Value, key: &str) -> Result<Vec<u64>, RecordError> {
    get_arr(v, key)?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| RecordError::new(format!("`{key}` element is not an integer")))
        })
        .collect()
}

fn u32_vec(v: &Value, key: &str) -> Result<Vec<u32>, RecordError> {
    u64_vec(v, key)?
        .into_iter()
        .map(|n| {
            u32::try_from(n).map_err(|_| RecordError::new(format!("`{key}` element exceeds u32")))
        })
        .collect()
}

fn u64_arr(items: &[u64]) -> Value {
    Value::Arr(items.iter().map(|&n| Value::UInt(n)).collect())
}

fn u32_arr(items: impl IntoIterator<Item = u32>) -> Value {
    Value::Arr(items.into_iter().map(Value::from).collect())
}

fn lfa_to_json(lfa: &Lfa) -> Value {
    let mut o = Value::obj();
    o.push("order", u32_arr(lfa.order.iter().map(|id| id.0)));
    o.push("flc", Value::Arr(lfa.flc.iter().map(|&p| Value::from(p)).collect()));
    o.push("tiling", u32_arr(lfa.tiling.iter().copied()));
    o.push("dram_cuts", Value::Arr(lfa.dram_cuts.iter().map(|&p| Value::from(p)).collect()));
    o
}

fn lfa_from_json(v: &Value) -> Result<Lfa, RecordError> {
    let order = u32_vec(v, "order")?.into_iter().map(LayerId).collect();
    let flc = u64_vec(v, "flc")?.into_iter().map(|n| n as usize).collect();
    let tiling = u32_vec(v, "tiling")?;
    let dram_cuts = u64_vec(v, "dram_cuts")?.into_iter().map(|n| n as usize).collect();
    Ok(Lfa { order, flc, tiling, dram_cuts })
}

fn dlsa_to_json(dlsa: &Dlsa) -> Value {
    let mut o = Value::obj();
    o.push("order", u32_arr(dlsa.order.iter().copied()));
    o.push("start", u32_arr(dlsa.start.iter().copied()));
    o.push("end", u32_arr(dlsa.end.iter().copied()));
    o
}

fn dlsa_from_json(v: &Value) -> Result<Dlsa, RecordError> {
    Ok(Dlsa { order: u32_vec(v, "order")?, start: u32_vec(v, "start")?, end: u32_vec(v, "end")? })
}

fn encoding_to_json(enc: &Encoding) -> Value {
    let mut o = Value::obj();
    o.push("lfa", lfa_to_json(&enc.lfa));
    o.push("dlsa", enc.dlsa.as_ref().map_or(Value::Null, dlsa_to_json));
    o
}

fn encoding_from_json(v: &Value) -> Result<Encoding, RecordError> {
    let lfa = lfa_from_json(field(v, "lfa")?)?;
    let dlsa_v = field(v, "dlsa")?;
    let dlsa = if dlsa_v.is_null() { None } else { Some(dlsa_from_json(dlsa_v)?) };
    Ok(Encoding { lfa, dlsa })
}

fn timeline_to_json(tl: &Timeline) -> Value {
    let mut o = Value::obj();
    o.push("tensor_start", u64_arr(&tl.tensor_start));
    o.push("tensor_end", u64_arr(&tl.tensor_end));
    o.push("tile_start", u64_arr(&tl.tile_start));
    o.push("tile_end", u64_arr(&tl.tile_end));
    o.push("latency", tl.latency.into());
    o.push("dram_busy", tl.dram_busy.into());
    o.push("compute_busy", tl.compute_busy.into());
    o
}

fn timeline_from_json(v: &Value) -> Result<Timeline, RecordError> {
    Ok(Timeline {
        tensor_start: u64_vec(v, "tensor_start")?,
        tensor_end: u64_vec(v, "tensor_end")?,
        tile_start: u64_vec(v, "tile_start")?,
        tile_end: u64_vec(v, "tile_end")?,
        latency: get_u64(v, "latency")?,
        dram_busy: get_u64(v, "dram_busy")?,
        compute_busy: get_u64(v, "compute_busy")?,
    })
}

fn report_to_json(r: &EvalReport) -> Value {
    let mut energy = Value::obj();
    energy.push("core_pj", r.energy.core_pj.into());
    energy.push("dram_pj", r.energy.dram_pj.into());
    let mut o = Value::obj();
    o.push("latency_cycles", r.latency_cycles.into());
    o.push("energy", energy);
    o.push("compute_util", r.compute_util.into());
    o.push("dram_util", r.dram_util.into());
    o.push("theoretical_max_util", r.theoretical_max_util.into());
    o.push("peak_buffer", r.peak_buffer.into());
    o.push("avg_buffer", r.avg_buffer.into());
    o.push("dram_bytes", r.dram_bytes.into());
    o.push("timeline", timeline_to_json(&r.timeline));
    o
}

fn report_from_json(v: &Value) -> Result<EvalReport, RecordError> {
    let energy_v = field(v, "energy")?;
    Ok(EvalReport {
        latency_cycles: get_u64(v, "latency_cycles")?,
        energy: EnergyBreakdown {
            core_pj: get_f64(energy_v, "core_pj")?,
            dram_pj: get_f64(energy_v, "dram_pj")?,
        },
        compute_util: get_f64(v, "compute_util")?,
        dram_util: get_f64(v, "dram_util")?,
        theoretical_max_util: get_f64(v, "theoretical_max_util")?,
        peak_buffer: get_u64(v, "peak_buffer")?,
        avg_buffer: get_u64(v, "avg_buffer")?,
        dram_bytes: get_u64(v, "dram_bytes")?,
        timeline: timeline_from_json(field(v, "timeline")?)?,
    })
}

fn evaluated_to_json(e: &Evaluated) -> Value {
    let mut o = Value::obj();
    o.push("encoding", encoding_to_json(&e.encoding));
    o.push("report", report_to_json(&e.report));
    o.push("cost", e.cost.into());
    o
}

fn evaluated_from_json(v: &Value) -> Result<Evaluated, RecordError> {
    Ok(Evaluated {
        encoding: encoding_from_json(field(v, "encoding")?)?,
        report: report_from_json(field(v, "report")?)?,
        cost: get_f64(v, "cost")?,
    })
}

/// Renders an outcome as a JSON value (see the module docs for the
/// losslessness/determinism contract).
pub fn outcome_to_json(out: &SearchOutcome) -> Value {
    let mut o = Value::obj();
    o.push("stage1", evaluated_to_json(&out.stage1));
    o.push("best", evaluated_to_json(&out.best));
    o.push("allocator_iters", out.allocator_iters.into());
    o.push("evals", out.evals.into());
    o.push("rejected", out.rejected.into());
    o
}

/// Reconstructs an outcome from [`outcome_to_json`]'s rendering.
///
/// # Errors
///
/// [`RecordError`] on any missing or mistyped field.
pub fn outcome_from_json(v: &Value) -> Result<SearchOutcome, RecordError> {
    Ok(SearchOutcome {
        stage1: evaluated_from_json(field(v, "stage1")?)?,
        best: evaluated_from_json(field(v, "best")?)?,
        allocator_iters: get_u64(v, "allocator_iters")? as usize,
        evals: get_u64(v, "evals")?,
        rejected: get_u64(v, "rejected")?,
    })
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, RecordError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| RecordError::new(format!("field `{key}` is not a string")))
}

/// Renders a [`SearchEvent`] as a snake_case-tagged JSON object — the
/// wire form the `soma-serve` daemon streams as progress frames. Same
/// contract as [`outcome_to_json`]: lossless, and equal events render
/// byte-identically.
pub fn event_to_json(ev: &SearchEvent) -> Value {
    let mut o = Value::obj();
    match ev {
        SearchEvent::RoundStarted { round, stage1_budget } => {
            o.push("event", "round_started".into());
            o.push("round", (*round as u64).into());
            o.push("stage1_budget", (*stage1_budget).into());
        }
        SearchEvent::StageFinished { round, stage, cost, evals } => {
            o.push("event", "stage_finished".into());
            o.push("round", (*round as u64).into());
            o.push("stage", stage.as_str().into());
            o.push("cost", (*cost).into());
            o.push("evals", (*evals).into());
        }
        SearchEvent::NewBest { round, cost, latency_cycles } => {
            o.push("event", "new_best".into());
            o.push("round", (*round as u64).into());
            o.push("cost", (*cost).into());
            o.push("latency_cycles", (*latency_cycles).into());
        }
        SearchEvent::SeedFinished { seed, cost, evals, rejected } => {
            o.push("event", "seed_finished".into());
            o.push("seed", (*seed).into());
            o.push("cost", (*cost).into());
            o.push("evals", (*evals).into());
            o.push("rejected", (*rejected).into());
        }
        SearchEvent::BudgetExhausted { rounds, evals } => {
            o.push("event", "budget_exhausted".into());
            o.push("rounds", (*rounds as u64).into());
            o.push("evals", (*evals).into());
        }
    }
    o
}

/// Reconstructs a [`SearchEvent`] from [`event_to_json`]'s rendering.
///
/// # Errors
///
/// [`RecordError`] on an unknown tag or any missing/mistyped field.
pub fn event_from_json(v: &Value) -> Result<SearchEvent, RecordError> {
    match get_str(v, "event")? {
        "round_started" => Ok(SearchEvent::RoundStarted {
            round: get_u64(v, "round")? as usize,
            stage1_budget: get_u64(v, "stage1_budget")?,
        }),
        "stage_finished" => Ok(SearchEvent::StageFinished {
            round: get_u64(v, "round")? as usize,
            stage: get_str(v, "stage")?.to_string(),
            cost: get_f64(v, "cost")?,
            evals: get_u64(v, "evals")?,
        }),
        "new_best" => Ok(SearchEvent::NewBest {
            round: get_u64(v, "round")? as usize,
            cost: get_f64(v, "cost")?,
            latency_cycles: get_u64(v, "latency_cycles")?,
        }),
        "seed_finished" => Ok(SearchEvent::SeedFinished {
            seed: get_u64(v, "seed")?,
            cost: get_f64(v, "cost")?,
            evals: get_u64(v, "evals")?,
            rejected: get_u64(v, "rejected")?,
        }),
        "budget_exhausted" => Ok(SearchEvent::BudgetExhausted {
            rounds: get_u64(v, "rounds")? as usize,
            evals: get_u64(v, "evals")?,
        }),
        other => Err(RecordError::new(format!("unknown event tag `{other}`"))),
    }
}

fn lfa_to_bytes(buf: &mut Vec<u8>, lfa: &Lfa) {
    wire::put_varint_vec(buf, lfa.order.iter().map(|id| u64::from(id.0)));
    wire::put_varint_vec(buf, lfa.flc.iter().map(|&p| p as u64));
    wire::put_varint_vec(buf, lfa.tiling.iter().map(|&t| u64::from(t)));
    wire::put_varint_vec(buf, lfa.dram_cuts.iter().map(|&p| p as u64));
}

fn lfa_from_reader(r: &mut Reader<'_>) -> Result<Lfa, WireError> {
    let u32s = |items: Vec<u64>, what: &str| -> Result<Vec<u32>, WireError> {
        items
            .into_iter()
            .map(|n| u32::try_from(n).map_err(|_| WireError::new(format!("`{what}` exceeds u32"))))
            .collect()
    };
    Ok(Lfa {
        order: u32s(r.varint_vec()?, "order")?.into_iter().map(LayerId).collect(),
        flc: r.varint_vec()?.into_iter().map(|n| n as usize).collect(),
        tiling: u32s(r.varint_vec()?, "tiling")?,
        dram_cuts: r.varint_vec()?.into_iter().map(|n| n as usize).collect(),
    })
}

fn encoding_to_bytes(buf: &mut Vec<u8>, enc: &Encoding) {
    lfa_to_bytes(buf, &enc.lfa);
    match &enc.dlsa {
        None => buf.push(0),
        Some(dlsa) => {
            buf.push(1);
            wire::put_varint_vec(buf, dlsa.order.iter().map(|&v| u64::from(v)));
            wire::put_varint_vec(buf, dlsa.start.iter().map(|&v| u64::from(v)));
            wire::put_varint_vec(buf, dlsa.end.iter().map(|&v| u64::from(v)));
        }
    }
}

fn encoding_from_reader(r: &mut Reader<'_>) -> Result<Encoding, WireError> {
    let lfa = lfa_from_reader(r)?;
    let u32s = |items: Vec<u64>| -> Result<Vec<u32>, WireError> {
        items
            .into_iter()
            .map(|n| u32::try_from(n).map_err(|_| WireError::new("dlsa element exceeds u32")))
            .collect()
    };
    let dlsa = match r.u8()? {
        0 => None,
        1 => Some(Dlsa {
            order: u32s(r.varint_vec()?)?,
            start: u32s(r.varint_vec()?)?,
            end: u32s(r.varint_vec()?)?,
        }),
        tag => return Err(WireError::new(format!("bad dlsa tag {tag}"))),
    };
    Ok(Encoding { lfa, dlsa })
}

fn report_to_bytes(buf: &mut Vec<u8>, rep: &EvalReport) {
    wire::put_varint(buf, rep.latency_cycles);
    wire::put_f64(buf, rep.energy.core_pj);
    wire::put_f64(buf, rep.energy.dram_pj);
    wire::put_f64(buf, rep.compute_util);
    wire::put_f64(buf, rep.dram_util);
    wire::put_f64(buf, rep.theoretical_max_util);
    wire::put_varint(buf, rep.peak_buffer);
    wire::put_varint(buf, rep.avg_buffer);
    wire::put_varint(buf, rep.dram_bytes);
    wire::put_varint_vec(buf, rep.timeline.tensor_start.iter().copied());
    wire::put_varint_vec(buf, rep.timeline.tensor_end.iter().copied());
    wire::put_varint_vec(buf, rep.timeline.tile_start.iter().copied());
    wire::put_varint_vec(buf, rep.timeline.tile_end.iter().copied());
    wire::put_varint(buf, rep.timeline.latency);
    wire::put_varint(buf, rep.timeline.dram_busy);
    wire::put_varint(buf, rep.timeline.compute_busy);
}

fn report_from_reader(r: &mut Reader<'_>) -> Result<EvalReport, WireError> {
    Ok(EvalReport {
        latency_cycles: r.varint()?,
        energy: EnergyBreakdown { core_pj: r.f64()?, dram_pj: r.f64()? },
        compute_util: r.f64()?,
        dram_util: r.f64()?,
        theoretical_max_util: r.f64()?,
        peak_buffer: r.varint()?,
        avg_buffer: r.varint()?,
        dram_bytes: r.varint()?,
        timeline: Timeline {
            tensor_start: r.varint_vec()?,
            tensor_end: r.varint_vec()?,
            tile_start: r.varint_vec()?,
            tile_end: r.varint_vec()?,
            latency: r.varint()?,
            dram_busy: r.varint()?,
            compute_busy: r.varint()?,
        },
    })
}

fn evaluated_to_bytes(buf: &mut Vec<u8>, e: &Evaluated) {
    encoding_to_bytes(buf, &e.encoding);
    report_to_bytes(buf, &e.report);
    wire::put_f64(buf, e.cost);
}

fn evaluated_from_reader(r: &mut Reader<'_>) -> Result<Evaluated, WireError> {
    Ok(Evaluated {
        encoding: encoding_from_reader(r)?,
        report: report_from_reader(r)?,
        cost: r.f64()?,
    })
}

/// Renders an outcome as its compact binary form — the frame payload
/// of ledger format v3. Same contract as [`outcome_to_json`]: lossless
/// (floats travel as their IEEE-754 bit pattern) and deterministic
/// (equal outcomes encode byte-identically).
pub fn outcome_to_bytes(out: &SearchOutcome) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    evaluated_to_bytes(&mut buf, &out.stage1);
    evaluated_to_bytes(&mut buf, &out.best);
    wire::put_varint(&mut buf, out.allocator_iters as u64);
    wire::put_varint(&mut buf, out.evals);
    wire::put_varint(&mut buf, out.rejected);
    buf
}

/// Reconstructs an outcome from [`outcome_to_bytes`]'s rendering.
///
/// # Errors
///
/// [`RecordError`] on truncated, corrupt or trailing bytes — damage is
/// a quarantinable error, never a panic.
pub fn outcome_from_bytes(bytes: &[u8]) -> Result<SearchOutcome, RecordError> {
    let mut r = Reader::new(bytes);
    let out = (|| -> Result<SearchOutcome, WireError> {
        Ok(SearchOutcome {
            stage1: evaluated_from_reader(&mut r)?,
            best: evaluated_from_reader(&mut r)?,
            allocator_iters: r.varint()? as usize,
            evals: r.varint()?,
            rejected: r.varint()?,
        })
    })()
    .map_err(|e| RecordError::new(e.msg.clone()))?;
    r.finish().map_err(|e| RecordError::new(e.msg))?;
    Ok(out)
}

/// A deterministic synthetic [`SearchOutcome`] for scale tests and
/// benchmarks: realistic shape (explicit DLSA, `tiles`-entry timeline)
/// without paying for a real search. Pure function of `(seed, tiles)`
/// — equal arguments yield byte-identical renderings in both codecs.
pub fn synthetic_outcome(seed: u64, tiles: usize) -> SearchOutcome {
    // Small deterministic mixer so fields vary with the seed without
    // any RNG dependency.
    let mix = |salt: u64| -> u64 {
        let mut h = seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        h
    };
    let layers = 3 + (mix(1) % 4) as usize;
    let lfa = Lfa {
        order: (0..layers as u32).map(LayerId).collect(),
        flc: [0, layers].into_iter().collect(),
        tiling: (0..layers as u32).map(|i| 1 + (mix(u64::from(i) + 2) % 8) as u32).collect(),
        dram_cuts: [0, layers].into_iter().collect(),
    };
    let dlsa = Dlsa {
        order: (0..layers as u32).collect(),
        start: vec![0; layers],
        end: vec![tiles as u32; layers],
    };
    let timeline = Timeline {
        tensor_start: (0..tiles as u64).map(|i| i * 10).collect(),
        tensor_end: (0..tiles as u64).map(|i| i * 10 + 7).collect(),
        tile_start: (0..tiles as u64).map(|i| i * 10 + 1).collect(),
        tile_end: (0..tiles as u64).map(|i| i * 10 + 9).collect(),
        latency: tiles as u64 * 10 + 9,
        dram_busy: tiles as u64 * 7,
        compute_busy: tiles as u64 * 8,
    };
    let report = EvalReport {
        latency_cycles: tiles as u64 * 10 + 9,
        energy: EnergyBreakdown {
            core_pj: (mix(3) % 1_000_000) as f64 / 3.0,
            dram_pj: (mix(4) % 1_000_000) as f64 / 7.0,
        },
        compute_util: (mix(5) % 1000) as f64 / 1000.0,
        dram_util: (mix(6) % 1000) as f64 / 1000.0,
        theoretical_max_util: 0.875,
        peak_buffer: mix(7) % (1 << 20),
        avg_buffer: mix(8) % (1 << 19),
        dram_bytes: mix(9) % (1 << 30),
        timeline,
    };
    let best = Evaluated {
        encoding: Encoding { lfa: lfa.clone(), dlsa: Some(dlsa) },
        cost: (mix(10) % 1_000_000) as f64 / 11.0 + 1.0,
        report: report.clone(),
    };
    let stage1 =
        Evaluated { encoding: Encoding { lfa, dlsa: None }, cost: best.cost * 1.25, report };
    SearchOutcome {
        stage1,
        best,
        allocator_iters: 1 + (mix(11) % 7) as usize,
        evals: 100 + mix(12) % 10_000,
        rejected: mix(13) % 100,
    }
}

/// [`outcome_to_json`] straight to a compact single-line JSON string.
pub fn outcome_to_string(out: &SearchOutcome) -> String {
    json::to_string(&outcome_to_json(out))
}

/// Parses [`outcome_to_string`]'s rendering.
///
/// # Errors
///
/// [`RecordError`] on malformed JSON or schema drift.
pub fn outcome_from_str(text: &str) -> Result<SearchOutcome, RecordError> {
    let v = json::parse(text).map_err(|e| RecordError::new(e.to_string()))?;
    outcome_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Scheduler;
    use crate::SearchConfig;
    use soma_arch::HardwareConfig;
    use soma_model::zoo;

    fn assert_evaluated_eq(a: &Evaluated, b: &Evaluated) {
        assert_eq!(a.encoding, b.encoding);
        assert_eq!(a.report, b.report);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn outcome_round_trips_field_for_field() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.02, seed: 11, ..SearchConfig::default() };
        let out = Scheduler::new(&net, &hw).config(cfg).run();

        let text = outcome_to_string(&out);
        let back = outcome_from_str(&text).expect("own rendering parses");
        assert_evaluated_eq(&out.stage1, &back.stage1);
        assert_evaluated_eq(&out.best, &back.best);
        assert_eq!(out.allocator_iters, back.allocator_iters);
        assert_eq!(out.evals, back.evals);
        assert_eq!(out.rejected, back.rejected);

        // Deterministic rendering: serialising the reconstruction is
        // byte-identical (what the resume tests lean on).
        assert_eq!(outcome_to_string(&back), text);
    }

    #[test]
    fn explicit_dlsa_survives() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.05, seed: 3, ..SearchConfig::default() };
        let out = Scheduler::new(&net, &hw).config(cfg).run();
        assert!(out.best.encoding.dlsa.is_some(), "stage 2 schedules the DLSA explicitly");
        let back = outcome_from_str(&outcome_to_string(&out)).unwrap();
        assert_eq!(out.best.encoding.dlsa, back.best.encoding.dlsa);
    }

    #[test]
    fn every_event_variant_round_trips() {
        let events = [
            SearchEvent::RoundStarted { round: 3, stage1_budget: 1 << 21 },
            SearchEvent::StageFinished {
                round: 3,
                stage: "stage1-sa".into(),
                cost: 0.125,
                evals: 4096,
            },
            SearchEvent::NewBest { round: 4, cost: 0.1 + 0.2, latency_cycles: 987_654_321 },
            SearchEvent::SeedFinished {
                seed: 2025,
                cost: f64::MIN_POSITIVE,
                evals: 7,
                rejected: 2,
            },
            SearchEvent::BudgetExhausted { rounds: 5, evals: 123_456 },
        ];
        for ev in &events {
            let text = json::to_string(&event_to_json(ev));
            let back = event_from_json(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(*ev, back, "{text}");
            // Deterministic: re-rendering the reconstruction is
            // byte-identical (progress frames are diffable).
            assert_eq!(json::to_string(&event_to_json(&back)), text);
        }
    }

    #[test]
    fn unknown_event_tag_is_an_error() {
        let v = json::parse("{\"event\":\"warp_drive\"}").unwrap();
        let e = event_from_json(&v).unwrap_err();
        assert!(e.to_string().contains("unknown event tag `warp_drive`"), "{e}");
        let missing = json::parse("{\"event\":\"new_best\",\"round\":1}").unwrap();
        assert!(event_from_json(&missing).is_err(), "missing fields are errors");
    }

    #[test]
    fn binary_codec_round_trips_bit_for_bit() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.05, seed: 3, ..SearchConfig::default() };
        let out = Scheduler::new(&net, &hw).config(cfg).run();
        assert!(out.best.encoding.dlsa.is_some(), "stage 2 schedules the DLSA explicitly");

        let bytes = outcome_to_bytes(&out);
        let back = outcome_from_bytes(&bytes).expect("own rendering decodes");
        assert_evaluated_eq(&out.stage1, &back.stage1);
        assert_evaluated_eq(&out.best, &back.best);
        assert_eq!(out.allocator_iters, back.allocator_iters);
        assert_eq!(out.evals, back.evals);
        assert_eq!(out.rejected, back.rejected);
        // Deterministic: re-encoding the reconstruction is byte-identical.
        assert_eq!(outcome_to_bytes(&back), bytes);
        // And the two codecs agree: binary → JSON matches direct JSON.
        assert_eq!(outcome_to_string(&back), outcome_to_string(&out));
    }

    #[test]
    fn binary_damage_is_an_error_not_a_panic() {
        let out = synthetic_outcome(7, 12);
        let bytes = outcome_to_bytes(&out);
        assert!(outcome_from_bytes(&[]).is_err());
        assert!(outcome_from_bytes(&bytes[..bytes.len() / 2]).is_err(), "truncation");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(outcome_from_bytes(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn synthetic_outcomes_are_deterministic_and_codec_stable() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = synthetic_outcome(seed, 16);
            let b = synthetic_outcome(seed, 16);
            assert_eq!(outcome_to_bytes(&a), outcome_to_bytes(&b));
            assert_eq!(outcome_to_string(&a), outcome_to_string(&b));
            let back = outcome_from_bytes(&outcome_to_bytes(&a)).unwrap();
            assert_eq!(outcome_to_string(&back), outcome_to_string(&a));
        }
        assert_ne!(
            outcome_to_bytes(&synthetic_outcome(1, 16)),
            outcome_to_bytes(&synthetic_outcome(2, 16)),
            "different seeds must differ"
        );
    }

    #[test]
    fn schema_drift_is_an_error_not_a_panic() {
        assert!(outcome_from_str("not json").is_err());
        assert!(outcome_from_str("{}").is_err());
        assert!(outcome_from_str("{\"stage1\":{},\"best\":{}}").is_err());
        let e = outcome_from_str("{\"best\":1}").unwrap_err();
        assert!(e.to_string().contains("stage1"), "{e}");
    }
}
