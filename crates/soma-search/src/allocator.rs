//! The Buffer Allocator: the outermost iteration of the SoMa framework
//! (paper Sec. V-B).
//!
//! Both stages trade buffer capacity for DRAM-communication quality, so
//! they compete for the GBUF. Each allocator iteration runs a complete
//! two-stage exploration; after the first (unconstrained) iteration, the
//! stage-1 budget shrinks by `allocator_step x Buffer_max` per iteration,
//! freeing headroom for stage-2 prefetching. Iteration stops when two
//! consecutive budgets fail to beat the best overall cost.
//!
//! The allocator policy itself lives in
//! [`SearchSession`](crate::session::SearchSession); this module keeps
//! the outcome type and the original blocking [`schedule`] entry point
//! as a shim over the session API.

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_model::Network;

use crate::objective::Evaluated;
use crate::session::Scheduler;
use crate::SearchConfig;

/// Result of a full SoMa exploration.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct SearchOutcome {
    /// The stage-1 scheme behind the best overall scheme, evaluated under
    /// the double-buffer DLSA — the paper's `Ours_1` bars.
    pub stage1: Evaluated,
    /// The best overall scheme after stage 2 — the paper's `Ours_2` bars.
    pub best: Evaluated,
    /// Number of allocator iterations executed.
    pub allocator_iters: usize,
    /// Total *completed* schedule evaluations.
    pub evals: u64,
    /// Total failed evaluation attempts (deadlocked DRAM tensor orders,
    /// structurally invalid LFAs), kept apart from `evals` so
    /// evaluations-per-second metrics measure real work.
    pub rejected: u64,
}

/// Summary statistics of a found scheme (for the paper's Sec. VI-B
/// aggregate analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeShape {
    /// Number of layer-fusion groups (LGs).
    pub lgs: usize,
    /// Number of fine-grained layer-fusion groups (FLGs).
    pub flgs: usize,
    /// Total computing tiles.
    pub tiles: usize,
    /// Total DRAM tensors.
    pub dram_tensors: usize,
}

impl SearchOutcome {
    /// Shape statistics of the best scheme.
    pub fn shape(&self, net: &Network) -> SchemeShape {
        let plan = soma_core::parse_lfa(net, &self.best.encoding.lfa)
            .expect("best scheme parses by construction");
        SchemeShape {
            lgs: plan.n_lgs(),
            flgs: plan.flgs.len(),
            tiles: plan.tiles.len(),
            dram_tensors: plan.dram_tensors.len(),
        }
    }
}

/// Runs the complete SoMa framework: Buffer Allocator around the two SA
/// stages.
///
/// Thin shim over [`Scheduler`]; same-seed results are bit-identical to
/// `Scheduler::new(net, hw).config(cfg.clone()).run()`.
pub fn schedule(net: &Network, hw: &HardwareConfig, cfg: &SearchConfig) -> SearchOutcome {
    Scheduler::new(net, hw).config(cfg.clone()).build().run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    fn quick_cfg(seed: u64) -> SearchConfig {
        SearchConfig { effort: 0.05, seed, ..SearchConfig::default() }
    }

    #[test]
    fn stage2_never_worse_than_stage1() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let out = schedule(&net, &hw, &quick_cfg(1));
        assert!(out.best.cost <= out.stage1.cost);
        assert!(out.best.report.latency_cycles <= out.stage1.report.latency_cycles * 2);
        assert!(out.allocator_iters >= 1);
        assert!(out.evals > 0);
    }

    #[test]
    fn best_scheme_fits_buffer() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let out = schedule(&net, &hw, &quick_cfg(2));
        assert!(out.best.report.peak_buffer <= hw.buffer_bytes);
    }

    #[test]
    fn deterministic_for_seed() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let a = schedule(&net, &hw, &quick_cfg(33));
        let b = schedule(&net, &hw, &quick_cfg(33));
        assert_eq!(a.best.report.latency_cycles, b.best.report.latency_cycles);
        assert_eq!(a.best.encoding, b.best.encoding);
    }

    #[test]
    fn shape_statistics_are_consistent() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let out = schedule(&net, &hw, &quick_cfg(4));
        let shape = out.shape(&net);
        assert!(shape.lgs <= shape.flgs);
        assert!(shape.flgs <= net.len());
        assert!(shape.tiles >= net.len());
    }
}
