//! The [`Parallelism`] knob: how a portfolio run, lab fan-out or
//! experiment sweep spreads across threads.
//!
//! Every parallel site in the workspace takes an explicit `Parallelism`
//! instead of consulting ad-hoc globals — [`Scheduler::parallelism`]
//! (crate::Scheduler::parallelism), `RunConfig.threads`, the `threads`
//! directive of an experiment spec, and the `--threads` flag of the
//! `run`/`lab` binaries all carry this type.
//!
//! Determinism: outcomes and ledger bytes are **bit-identical across
//! all variants**. Work is merged in submission order (never completion
//! order) and every seed owns its RNG stream, so thread count affects
//! wall-clock only. Thread count is deliberately *not* an input to
//! `cell_hash` — cached results stay valid when the machine changes.

use std::fmt;
use std::str::FromStr;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use serde::{Deserialize, Serialize};

/// Thread-count policy for a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use the current thread pool if the caller already runs on one,
    /// else the global pool (sized by
    /// [`std::thread::available_parallelism`]). The default.
    #[default]
    Auto,
    /// Run on a dedicated scoped pool with exactly `n` worker threads,
    /// built for the call and torn down after it. `Fixed(1)` still
    /// hops onto one worker thread; use [`Sequential`](Self::Sequential)
    /// for a truly threadless run.
    Fixed(usize),
    /// Run inline on the calling thread — no pool, no worker threads.
    Sequential,
}

impl Parallelism {
    /// The worker count this policy resolves to right now: `n` for
    /// `Fixed(n)`, 1 for `Sequential`, and the current/global pool size
    /// for `Auto`.
    pub fn resolved_threads(self) -> usize {
        match self {
            Parallelism::Auto => rayon::current_num_threads(),
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Sequential => 1,
        }
    }

    /// The policy an *inner* parallel region (e.g. the per-cell
    /// portfolio inside a lab fan-out) should inherit from this outer
    /// one. `Sequential` stays sequential — `--threads 1` means no
    /// threads anywhere. `Fixed(n)` maps to `Auto`: the inner region
    /// already runs *on* the scoped pool's workers, so `Auto` lets its
    /// `join`s split across that same pool instead of stacking a second
    /// dedicated pool per cell.
    pub fn nested(self) -> Parallelism {
        match self {
            Parallelism::Sequential => Parallelism::Sequential,
            Parallelism::Auto | Parallelism::Fixed(_) => Parallelism::Auto,
        }
    }

    /// Maps `f` over `items` under this policy and collects results
    /// **in input order** (the pool reassembles by slot, so the output
    /// is identical across all variants — only wall-clock differs).
    pub fn map_collect<T, R, F>(self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Send + Sync,
    {
        match self {
            Parallelism::Sequential => items.into_iter().map(f).collect(),
            Parallelism::Auto => items.into_par_iter().map(f).collect(),
            Parallelism::Fixed(n) => {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(n.max(1))
                    .build()
                    .expect("failed to build scoped thread pool");
                pool.install(|| items.into_par_iter().map(f).collect())
            }
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Auto => f.write_str("auto"),
            Parallelism::Sequential => f.write_str("seq"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

impl FromStr for Parallelism {
    type Err = String;

    /// Parses `auto`, `seq`/`sequential`, or a thread count. `1` means
    /// [`Sequential`](Parallelism::Sequential) (no threads at all), any
    /// larger count a [`Fixed`](Parallelism::Fixed) pool of that size.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "auto" => Ok(Parallelism::Auto),
            "seq" | "sequential" => Ok(Parallelism::Sequential),
            other => match other.parse::<usize>() {
                Ok(0) | Err(_) => Err(format!(
                    "invalid parallelism `{other}`: expected `auto`, `seq`, or a thread count >= 1"
                )),
                Ok(1) => Ok(Parallelism::Sequential),
                Ok(n) => Ok(Parallelism::Fixed(n)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_forms() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("seq".parse::<Parallelism>().unwrap(), Parallelism::Sequential);
        assert_eq!("sequential".parse::<Parallelism>().unwrap(), Parallelism::Sequential);
        assert_eq!("1".parse::<Parallelism>().unwrap(), Parallelism::Sequential);
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::Fixed(4));
        assert_eq!(" 8 ".parse::<Parallelism>().unwrap(), Parallelism::Fixed(8));
    }

    #[test]
    fn rejects_zero_and_junk() {
        assert!("0".parse::<Parallelism>().is_err());
        assert!("".parse::<Parallelism>().is_err());
        assert!("-2".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        assert!("4.5".parse::<Parallelism>().is_err());
    }

    #[test]
    fn hostile_inputs_pin_their_exact_error_message() {
        // The message is part of the CLI/env contract (`--threads`,
        // `SOMA_THREADS` surface it verbatim) — pin it exactly.
        let msg = |input: &str| {
            format!(
                "invalid parallelism `{}`: expected `auto`, `seq`, or a thread count >= 1",
                input.trim()
            )
        };
        for input in ["0", "-1", "fast", "0x4", "1e2", "18446744073709551616", ""] {
            assert_eq!(input.parse::<Parallelism>().unwrap_err(), msg(input), "input {input:?}");
        }
        // Whitespace is trimmed both for parsing and in the message.
        assert_eq!(" -1 ".parse::<Parallelism>().unwrap_err(), msg("-1"));
        assert_eq!("  4 ".parse::<Parallelism>().unwrap(), Parallelism::Fixed(4));
        assert_eq!("auto ".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        // `usize::from_str` accepts an explicit sign, so `+4` is a pool
        // of four — pinned here so a change to the parser shows up.
        assert_eq!("+4".parse::<Parallelism>().unwrap(), Parallelism::Fixed(4));
        // A count beyond usize::MAX is junk, not a saturated pool.
        let huge = "18446744073709551616".parse::<Parallelism>();
        assert!(huge.is_err(), "u64::MAX + 1 must not parse");
    }

    #[test]
    fn display_round_trips() {
        for p in [Parallelism::Auto, Parallelism::Sequential, Parallelism::Fixed(6)] {
            assert_eq!(p.to_string().parse::<Parallelism>().unwrap(), p);
        }
    }

    #[test]
    fn nested_policy_keeps_sequential_threadless() {
        assert_eq!(Parallelism::Sequential.nested(), Parallelism::Sequential);
        assert_eq!(Parallelism::Auto.nested(), Parallelism::Auto);
        assert_eq!(Parallelism::Fixed(4).nested(), Parallelism::Auto);
    }

    #[test]
    fn map_collect_is_identical_across_variants() {
        let input: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for p in [Parallelism::Sequential, Parallelism::Auto, Parallelism::Fixed(4)] {
            let got = p.map_collect(input.clone(), |x| x * 3 + 1);
            assert_eq!(got, expect, "variant {p} diverged");
        }
    }

    #[test]
    fn resolved_threads_matches_policy() {
        assert_eq!(Parallelism::Sequential.resolved_threads(), 1);
        assert_eq!(Parallelism::Fixed(4).resolved_threads(), 4);
        assert!(Parallelism::Auto.resolved_threads() >= 1);
    }
}
