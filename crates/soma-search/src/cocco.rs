//! The Cocco baseline (paper Sec. VI-A3, [49]).
//!
//! Mapped into our notation (paper Sec. IV-B), Cocco explores only the
//! *Computing Order* and *DRAM Cut* attributes:
//!
//! * the FLC set is identical to the DRAM cut set (no weight-shuffling
//!   FLCs inside an LG),
//! * each group's tiling number comes from the KC-parallelism heuristic
//!   ("selects each tile size based only on the basic parallelism
//!   requirements of the computing units"),
//! * the DLSA is the classical double-buffer strategy.

use rand::rngs::StdRng;
use rand::Rng;
use soma_arch::HardwareConfig;
use soma_core::Lfa;
use soma_model::{LayerId, Network, Src};

use crate::lfa_stage::min_granularity_tiling;
use crate::objective::Evaluated;
use crate::sa::{anneal, SaSchedule};
use crate::session::Scheduler;
use crate::stage::{RoundCtx, SearchStage, StageArtifact};
use crate::SearchConfig;

/// Cocco's heuristic tiling number for a group of layers: the finest
/// requirement among its members, so every layer's tiles still fill the
/// core array's parallel lanes.
pub fn cocco_tiling(net: &Network, hw: &HardwareConfig, layers: &[LayerId]) -> u32 {
    layers.iter().map(|&id| min_granularity_tiling(net, hw, id)).max().unwrap_or(1)
}

/// Recomputes every group's tiling number after a structural change.
fn retile(net: &Network, hw: &HardwareConfig, lfa: &mut Lfa) {
    let ranges = lfa.flg_ranges();
    lfa.tiling = ranges.iter().map(|&(a, b)| cocco_tiling(net, hw, &lfa.order[a..b])).collect();
}

/// Cocco's initial solution: unfused, heuristic tiling.
pub fn initial_cocco(net: &Network, hw: &HardwareConfig) -> Lfa {
    let mut lfa = Lfa::unfused(net, 1);
    retile(net, hw, &mut lfa);
    lfa
}

/// One Cocco mutation: move a layer, or add/delete a fused-group cut
/// (FLC and DRAM cut always together).
fn mutate_cocco(net: &Network, hw: &HardwareConfig, lfa: &Lfa, rng: &mut StdRng) -> Option<Lfa> {
    let n = lfa.order.len();
    let mut out = match rng.gen_range(0..3u8) {
        // Change computing order (same as SoMa's operator).
        0 => {
            let layer = lfa.order[rng.gen_range(0..n)];
            let cur = lfa.order.iter().position(|&l| l == layer).expect("present");
            let mut lo = 0usize;
            let mut hi = n - 1;
            for (p, &other) in lfa.order.iter().enumerate() {
                if other == layer {
                    continue;
                }
                let pr = if p > cur { p - 1 } else { p };
                if net.layer(layer).inputs.contains(&Src::Layer(other)) {
                    lo = lo.max(pr + 1);
                }
                if net.layer(other).inputs.contains(&Src::Layer(layer)) {
                    hi = hi.min(pr);
                }
            }
            if lo > hi {
                return None;
            }
            let q = rng.gen_range(lo..=hi);
            let mut order = lfa.order.clone();
            order.remove(cur);
            order.insert(q, layer);
            if order == lfa.order {
                return None;
            }
            Lfa { order, ..lfa.clone() }
        }
        // Add a group cut (both sets).
        1 => {
            let candidates: Vec<usize> = (1..n).filter(|p| !lfa.flc.contains(p)).collect();
            if candidates.is_empty() {
                return None;
            }
            let p = candidates[rng.gen_range(0..candidates.len())];
            let mut o = lfa.clone();
            o.flc.insert(p);
            o.dram_cuts.insert(p);
            o.tiling.push(1); // placeholder; retile() rebuilds
            o
        }
        // Delete a group cut (both sets).
        _ => {
            if lfa.flc.is_empty() {
                return None;
            }
            let cuts: Vec<usize> = lfa.flc.iter().copied().collect();
            let p = cuts[rng.gen_range(0..cuts.len())];
            let mut o = lfa.clone();
            o.flc.remove(&p);
            o.dram_cuts.remove(&p);
            o.tiling.pop();
            o
        }
    };
    retile(net, hw, &mut out);
    Some(out)
}

/// Cocco's restricted exploration as a composable [`SearchStage`]: SA
/// over computing order and linked FLC/DRAM-cut sets with heuristic
/// tiling, evaluated under the double-buffer DLSA and the full hardware
/// buffer (the restricted space has no stage-2, so the session runs it
/// as a single allocator round).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoccoStage;

impl SearchStage for CoccoStage {
    fn name(&self) -> &'static str {
        "cocco"
    }

    fn run(&self, ctx: &mut RoundCtx<'_, '_>) -> StageArtifact {
        let net = ctx.obj.network();
        let hw = ctx.obj.hardware();
        let cfg = ctx.cfg;
        let limit = ctx.buffer_limit;

        let init = initial_cocco(net, hw);
        let (init_cost, ..) =
            ctx.obj.eval_lfa(&init, limit).expect("Cocco's unfused initial solution must parse");

        let iters = cfg.stage1_iters(net.len());
        let schedule = SaSchedule {
            t0: cfg.t0,
            alpha: cfg.alpha,
            iters,
            greedy_tail: iters / 10,
            time_budget: cfg.stage_time_budget(),
        };
        let obj = &mut *ctx.obj;
        // Cost-only engine fast path; bit-identical to `eval_lfa`'s cost.
        let result = anneal(&schedule, ctx.rng, init, init_cost, |lfa, rng| {
            let cand = mutate_cocco(net, hw, lfa, rng)?;
            let cost = obj.eval_lfa_cost(&cand, limit)?;
            Some((cand, cost))
        });

        let (cost, plan, dlsa, report) =
            ctx.obj.eval_lfa(&result.best, limit).expect("best Cocco solution must re-evaluate");
        StageArtifact { lfa: result.best, plan, dlsa, report, cost }
    }
}

/// Runs the Cocco baseline search.
///
/// Thin shim over [`Scheduler::cocco`]; same-seed results are
/// bit-identical to the session API.
pub fn schedule_cocco(net: &Network, hw: &HardwareConfig, cfg: &SearchConfig) -> Evaluated {
    Scheduler::cocco(net, hw).config(cfg.clone()).build().run().best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use soma_model::zoo;

    #[test]
    fn cocco_restriction_flc_equals_dram_cuts() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.2, seed: 9, ..SearchConfig::default() };
        let out = schedule_cocco(&net, &hw, &cfg);
        assert_eq!(out.encoding.lfa.flc, out.encoding.lfa.dram_cuts);
    }

    #[test]
    fn cocco_tiling_tracks_finest_member() {
        let net = zoo::resnet50(1);
        let hw = HardwareConfig::edge();
        let a = cocco_tiling(&net, &hw, &[LayerId(0)]);
        let both = cocco_tiling(&net, &hw, &[LayerId(0), LayerId(1)]);
        assert!(both >= a);
    }

    #[test]
    fn cocco_mutations_preserve_invariants() {
        let net = zoo::fig4(1);
        let hw = HardwareConfig::edge();
        let mut rng = StdRng::seed_from_u64(21);
        let mut lfa = initial_cocco(&net, &hw);
        for _ in 0..200 {
            if let Some(c) = mutate_cocco(&net, &hw, &lfa, &mut rng) {
                assert_eq!(c.flc, c.dram_cuts);
                assert_eq!(c.tiling.len(), c.flg_count());
                if soma_core::parse_lfa(&net, &c).is_ok() {
                    lfa = c;
                }
            }
        }
    }

    #[test]
    fn soma_beats_or_ties_cocco_on_demo_net() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.3, seed: 7, ..SearchConfig::default() };
        let cocco = schedule_cocco(&net, &hw, &cfg);
        let soma = crate::schedule(&net, &hw, &cfg);
        assert!(
            soma.best.cost <= cocco.cost * 1.05,
            "SoMa {} vs Cocco {}",
            soma.best.cost,
            cocco.cost
        );
    }
}
