//! Stage 2: SA over the DRAM-load-and-store-related attributes
//! (paper Sec. V-C2).
//!
//! The LFA (and hence the plan) is frozen; the annealer permutes the DRAM
//! Tensor Order and stretches Living Durations. Tensor selection is
//! proportional to tensor size: "larger tensors generally have a greater
//! impact on performance and buffer utilisation, warranting more
//! transformation opportunities".

use rand::rngs::StdRng;
use rand::Rng;
use soma_core::{ComputePlan, Dlsa};
use soma_sim::EvalReport;

use crate::objective::Objective;
use crate::sa::{anneal, SaResult, SaSchedule};
use crate::stage::{RoundCtx, SearchStage, StageArtifact};
use crate::SearchConfig;

/// Size-proportional tensor picker (prefix sums over tensor bytes).
#[derive(Debug, Clone)]
pub struct SizeWeightedPicker {
    cumulative: Vec<u64>,
}

impl SizeWeightedPicker {
    /// Builds the picker for a plan's tensor set.
    pub fn new(plan: &ComputePlan) -> Self {
        let mut cumulative = Vec::with_capacity(plan.dram_tensors.len());
        let mut acc = 0u64;
        for t in &plan.dram_tensors {
            acc += t.bytes.max(1);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Draws a tensor index with probability proportional to its size.
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty tensor set");
        let x = rng.gen_range(0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the tensor set is empty.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// One random DLSA mutation: *Change DRAM Tensor Order* or *Change Living
/// Duration*. Returns `None` when the plan has no DRAM tensors or the
/// mutation is an identity.
pub fn mutate_dlsa(
    plan: &ComputePlan,
    dlsa: &Dlsa,
    picker: &SizeWeightedPicker,
    rng: &mut StdRng,
) -> Option<Dlsa> {
    if picker.is_empty() {
        return None;
    }
    let ti = picker.pick(rng);
    let tensor = &plan.dram_tensors[ti];
    let n_tiles = plan.n_tiles();
    if rng.gen_bool(0.5) {
        // Change DRAM Tensor Order.
        let mut out = dlsa.clone();
        let cur = out.order.iter().position(|&o| o as usize == ti).expect("in order");
        out.order.remove(cur);
        let q = rng.gen_range(0..=out.order.len());
        out.order.insert(q, ti as u32);
        if out.order == dlsa.order {
            return None;
        }
        Some(out)
    } else if tensor.is_load {
        // Change Living Duration: earlier (or later) Start for loads.
        let new_start = rng.gen_range(0..=tensor.anchor);
        if new_start == dlsa.start[ti] {
            return None;
        }
        let mut out = dlsa.clone();
        out.start[ti] = new_start;
        Some(out)
    } else {
        // Change Living Duration: later (or earlier) End for stores.
        let new_end = rng.gen_range(tensor.anchor + 1..=n_tiles);
        if new_end == dlsa.end[ti] {
            return None;
        }
        let mut out = dlsa.clone();
        out.end[ti] = new_end;
        Some(out)
    }
}

/// Best scheme found by stage 2.
#[derive(Debug, Clone)]
pub struct Stage2Result {
    /// The winning DLSA.
    pub dlsa: Dlsa,
    /// Its evaluation.
    pub report: EvalReport,
    /// Penalised objective value.
    pub cost: f64,
}

/// Runs the stage-2 annealer on a frozen plan, starting from `init`
/// (normally the double-buffer DLSA of the stage-1 winner).
pub fn run_stage2(
    obj: &mut Objective<'_>,
    cfg: &SearchConfig,
    rng: &mut StdRng,
    plan: &ComputePlan,
    init: Dlsa,
    buffer_limit: u64,
) -> Stage2Result {
    let picker = SizeWeightedPicker::new(plan);
    let (init_cost, init_report) =
        obj.eval_parts(plan, &init, buffer_limit).expect("double-buffer DLSA cannot deadlock");

    if picker.is_empty() {
        return Stage2Result { dlsa: init, report: init_report, cost: init_cost };
    }

    let iters = cfg.stage2_iters(picker.len());
    let schedule = SaSchedule {
        t0: cfg.t0,
        alpha: cfg.alpha,
        iters,
        greedy_tail: iters / 10,
        time_budget: cfg.stage_time_budget(),
    };
    let result: SaResult<Dlsa> = anneal(&schedule, rng, init, init_cost, |dlsa, rng| {
        let cand = mutate_dlsa(plan, dlsa, &picker, rng)?;
        let (cost, _) = obj.eval_parts(plan, &cand, buffer_limit)?;
        Some((cand, cost))
    });

    let (cost, report) = obj
        .eval_parts(plan, &result.best, buffer_limit)
        .expect("best stage-2 solution must re-evaluate");
    Stage2Result { dlsa: result.best, report, cost }
}

/// Stage 2 as a composable [`SearchStage`]: freezes the preceding
/// stage's plan and anneals the DLSA under the full hardware buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlsaStage;

impl SearchStage for DlsaStage {
    fn name(&self) -> &'static str {
        "dlsa"
    }

    fn run(&self, ctx: &mut RoundCtx<'_, '_>) -> StageArtifact {
        let prev = ctx.take_current(self.name());
        let s2 =
            run_stage2(ctx.obj, ctx.cfg, ctx.rng, &prev.plan, prev.dlsa.clone(), ctx.buffer_limit);
        StageArtifact {
            lfa: prev.lfa,
            plan: prev.plan,
            dlsa: s2.dlsa,
            report: s2.report,
            cost: s2.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{CostWeights, Objective};
    use rand::SeedableRng;
    use soma_arch::HardwareConfig;
    use soma_core::{parse_lfa, Lfa};
    use soma_model::zoo;

    fn setup() -> (soma_model::Network, ComputePlan, Dlsa) {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        (net, plan, dlsa)
    }

    #[test]
    fn picker_is_size_biased() {
        let (_, plan, _) = setup();
        let picker = SizeWeightedPicker::new(&plan);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; picker.len()];
        for _ in 0..5000 {
            counts[picker.pick(&mut rng)] += 1;
        }
        // The largest tensor must be drawn more often than the smallest.
        let sizes: Vec<u64> = plan.dram_tensors.iter().map(|t| t.bytes).collect();
        let max_i = (0..sizes.len()).max_by_key(|&i| sizes[i]).unwrap();
        let min_i = (0..sizes.len()).min_by_key(|&i| sizes[i]).unwrap();
        assert!(counts[max_i] > counts[min_i]);
    }

    #[test]
    fn mutations_stay_valid() {
        let (_, plan, dlsa) = setup();
        let picker = SizeWeightedPicker::new(&plan);
        let mut rng = StdRng::seed_from_u64(9);
        let mut cur = dlsa;
        let mut changed = 0;
        for _ in 0..500 {
            if let Some(cand) = mutate_dlsa(&plan, &cur, &picker, &mut rng) {
                assert!(cand.validate(&plan).is_ok());
                cur = cand;
                changed += 1;
            }
        }
        assert!(changed > 100);
    }

    #[test]
    fn stage2_never_worse_than_double_buffer() {
        let (net, plan, dlsa) = setup();
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let mut rng = StdRng::seed_from_u64(17);
        let cfg = SearchConfig { effort: 0.3, ..SearchConfig::default() };
        let init_cost = obj.eval_parts(&plan, &dlsa, hw.buffer_bytes).unwrap().0;
        let res = run_stage2(&mut obj, &cfg, &mut rng, &plan, dlsa, hw.buffer_bytes);
        assert!(res.cost <= init_cost);
    }
}
