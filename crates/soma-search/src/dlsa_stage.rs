//! Stage 2: SA over the DRAM-load-and-store-related attributes
//! (paper Sec. V-C2).
//!
//! The LFA (and hence the plan) is frozen; the annealer permutes the DRAM
//! Tensor Order and stretches Living Durations. Tensor selection is
//! proportional to tensor size: "larger tensors generally have a greater
//! impact on performance and buffer utilisation, warranting more
//! transformation opportunities".
//!
//! This stage is the hottest loop of the whole framework, so it runs on
//! the compiled evaluation engine: the frozen plan is
//! [compiled](crate::objective::Objective::compile) once, each proposal
//! mutates the live [`Dlsa`] in place through a [`DlsaEditor`] (apply /
//! [`undo`](DlsaEditor::undo) tokens instead of cloning), the
//! buffer-occupancy profile is maintained incrementally (`O(log n)` per
//! single-tensor move, never rebuilt), and evaluation takes the
//! allocation-free cost-only path. The RNG draws mirror [`mutate_dlsa`]
//! exactly, so the search trajectory — and therefore the same-seed
//! outcome — is bit-identical to the naive clone-per-proposal loop.

use rand::rngs::StdRng;
use rand::Rng;
use soma_core::{ComputePlan, Dlsa, OccupancyProfile};
use soma_sim::EvalReport;

use crate::objective::Objective;
use crate::sa::{anneal_inplace, AnnealState, SaResult, SaSchedule};
use crate::stage::{RoundCtx, SearchStage, StageArtifact};
use crate::SearchConfig;

/// Size-proportional tensor picker (prefix sums over tensor bytes).
#[derive(Debug, Clone)]
pub struct SizeWeightedPicker {
    cumulative: Vec<u64>,
}

impl SizeWeightedPicker {
    /// Builds the picker for a plan's tensor set.
    pub fn new(plan: &ComputePlan) -> Self {
        let mut cumulative = Vec::with_capacity(plan.dram_tensors.len());
        let mut acc = 0u64;
        for t in &plan.dram_tensors {
            acc += t.bytes.max(1);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Draws a tensor index with probability proportional to its size.
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty tensor set");
        let x = rng.gen_range(0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the tensor set is empty.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// One random DLSA mutation: *Change DRAM Tensor Order* or *Change Living
/// Duration*. Returns `None` when the plan has no DRAM tensors or the
/// mutation is an identity.
///
/// This is the naive clone-per-proposal reference; the annealer itself
/// drives a [`DlsaEditor`], which draws from the RNG identically and is
/// proven equivalent by the differential suite (`tests/engine_equiv.rs`).
pub fn mutate_dlsa(
    plan: &ComputePlan,
    dlsa: &Dlsa,
    picker: &SizeWeightedPicker,
    rng: &mut StdRng,
) -> Option<Dlsa> {
    if picker.is_empty() {
        return None;
    }
    let ti = picker.pick(rng);
    let tensor = &plan.dram_tensors[ti];
    let n_tiles = plan.n_tiles();
    if rng.gen_bool(0.5) {
        // Change DRAM Tensor Order.
        let mut out = dlsa.clone();
        let cur = out.order.iter().position(|&o| o as usize == ti).expect("in order");
        out.order.remove(cur);
        let q = rng.gen_range(0..=out.order.len());
        out.order.insert(q, ti as u32);
        if out.order == dlsa.order {
            return None;
        }
        Some(out)
    } else if tensor.is_load {
        // Change Living Duration: earlier (or later) Start for loads.
        let new_start = rng.gen_range(0..=tensor.anchor);
        if new_start == dlsa.start[ti] {
            return None;
        }
        let mut out = dlsa.clone();
        out.start[ti] = new_start;
        Some(out)
    } else {
        // Change Living Duration: later (or earlier) End for stores.
        let new_end = rng.gen_range(tensor.anchor + 1..=n_tiles);
        if new_end == dlsa.end[ti] {
            return None;
        }
        let mut out = dlsa.clone();
        out.end[ti] = new_end;
        Some(out)
    }
}

/// Undo token for one applied [`DlsaEditor`] mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlsaMove {
    /// The tensor moved from queue position `from` to `to`.
    Order {
        /// Canonical tensor index.
        tensor: u32,
        /// Queue position before the move (after removing the tensor).
        from: usize,
        /// Queue position after the move.
        to: usize,
    },
    /// A load's Living-Duration `Start` changed.
    LoadStart {
        /// Canonical tensor index.
        tensor: usize,
        /// Previous start.
        old: u32,
        /// New start.
        new: u32,
    },
    /// A store's Living-Duration `End` changed.
    StoreEnd {
        /// Canonical tensor index.
        tensor: usize,
        /// Previous end.
        old: u32,
        /// New end.
        new: u32,
    },
}

/// In-place DLSA mutator for the stage-2 inner loop: owns the live
/// [`Dlsa`] and its incrementally maintained [`OccupancyProfile`].
/// [`propose`](Self::propose) draws from the RNG exactly like
/// [`mutate_dlsa`] (same trajectory at the same seed) but applies the
/// mutation to the live state, returning an undo token instead of a
/// clone; [`undo`](Self::undo) rolls one token back.
#[derive(Debug)]
pub struct DlsaEditor<'p> {
    plan: &'p ComputePlan,
    dlsa: Dlsa,
    profile: OccupancyProfile,
}

impl<'p> DlsaEditor<'p> {
    /// Builds the editor around an initial DLSA of `plan`.
    pub fn new(plan: &'p ComputePlan, dlsa: Dlsa) -> Self {
        let profile = OccupancyProfile::new(plan, &dlsa);
        Self { plan, dlsa, profile }
    }

    /// The live DLSA.
    pub fn dlsa(&self) -> &Dlsa {
        &self.dlsa
    }

    /// Peak buffer occupancy of the live DLSA (maintained, `O(1)`).
    pub fn peak(&self) -> u64 {
        self.profile.peak()
    }

    /// The maintained occupancy profile (for differential checks).
    pub fn profile(&self) -> &OccupancyProfile {
        &self.profile
    }

    /// Consumes the editor into its live DLSA.
    pub fn into_dlsa(self) -> Dlsa {
        self.dlsa
    }

    /// Draws one mutation (identical RNG stream to [`mutate_dlsa`]) and
    /// applies it in place. `None` means the drawn mutation was an
    /// identity — nothing was applied and no token is issued.
    pub fn propose(&mut self, picker: &SizeWeightedPicker, rng: &mut StdRng) -> Option<DlsaMove> {
        if picker.is_empty() {
            return None;
        }
        let ti = picker.pick(rng);
        let tensor = &self.plan.dram_tensors[ti];
        let n_tiles = self.plan.n_tiles();
        if rng.gen_bool(0.5) {
            // Change DRAM Tensor Order. The naive path removes first and
            // then draws the insertion slot among `len - 1` positions;
            // drawing before removing is the same distribution, and the
            // result is an identity exactly when the slot is unchanged.
            let cur = self.dlsa.order.iter().position(|&o| o as usize == ti).expect("in order");
            let q = rng.gen_range(0..=self.dlsa.order.len() - 1);
            if q == cur {
                return None;
            }
            self.dlsa.order.remove(cur);
            self.dlsa.order.insert(q, ti as u32);
            Some(DlsaMove::Order { tensor: ti as u32, from: cur, to: q })
        } else if tensor.is_load {
            let new = rng.gen_range(0..=tensor.anchor);
            let old = self.dlsa.start[ti];
            if new == old {
                return None;
            }
            self.profile.shift_interval_start(tensor.bytes, old, new);
            self.dlsa.start[ti] = new;
            Some(DlsaMove::LoadStart { tensor: ti, old, new })
        } else {
            let new = rng.gen_range(tensor.anchor + 1..=n_tiles);
            let old = self.dlsa.end[ti];
            if new == old {
                return None;
            }
            self.profile.shift_interval_end(tensor.bytes, old, new);
            self.dlsa.end[ti] = new;
            Some(DlsaMove::StoreEnd { tensor: ti, old, new })
        }
    }

    /// Rolls one applied mutation back (LIFO with respect to
    /// [`propose`](Self::propose)).
    pub fn undo(&mut self, mv: DlsaMove) {
        match mv {
            DlsaMove::Order { tensor, from, to } => {
                let moved = self.dlsa.order.remove(to);
                debug_assert_eq!(moved, tensor);
                self.dlsa.order.insert(from, tensor);
            }
            DlsaMove::LoadStart { tensor, old, new } => {
                let bytes = self.plan.dram_tensors[tensor].bytes;
                self.profile.shift_interval_start(bytes, new, old);
                self.dlsa.start[tensor] = old;
            }
            DlsaMove::StoreEnd { tensor, old, new } => {
                let bytes = self.plan.dram_tensors[tensor].bytes;
                self.profile.shift_interval_end(bytes, new, old);
                self.dlsa.end[tensor] = old;
            }
        }
    }
}

/// The stage-2 annealing problem: editor + compiled engine + objective.
struct Stage2Anneal<'e, 'p, 'a> {
    obj: &'e mut Objective<'a>,
    engine: &'e soma_sim::CompiledPlan,
    editor: DlsaEditor<'p>,
    picker: &'e SizeWeightedPicker,
    buffer_limit: u64,
    pending: Option<DlsaMove>,
}

impl AnnealState<StdRng> for Stage2Anneal<'_, '_, '_> {
    type Snapshot = Dlsa;

    fn propose(&mut self, rng: &mut StdRng) -> Option<f64> {
        let mv = self.editor.propose(self.picker, rng)?;
        match self.obj.eval_compiled_with_peak(
            self.engine,
            self.editor.dlsa(),
            self.editor.peak(),
            self.buffer_limit,
        ) {
            Some(cost) => {
                self.pending = Some(mv);
                Some(cost)
            }
            None => {
                // Deadlocked order: roll back before skipping.
                self.editor.undo(mv);
                None
            }
        }
    }

    fn resolve(&mut self, accept: bool) {
        let mv = self.pending.take().expect("resolve follows a successful propose");
        if !accept {
            self.editor.undo(mv);
        }
    }

    fn snapshot(&mut self) -> Dlsa {
        self.editor.dlsa().clone()
    }
}

/// Best scheme found by stage 2.
#[derive(Debug, Clone)]
pub struct Stage2Result {
    /// The winning DLSA.
    pub dlsa: Dlsa,
    /// Its evaluation.
    pub report: EvalReport,
    /// Penalised objective value.
    pub cost: f64,
}

/// Runs the stage-2 annealer on a frozen plan, starting from `init`
/// (normally the double-buffer DLSA of the stage-1 winner). The plan is
/// compiled once; every proposal then runs the in-place, allocation-free
/// engine path.
pub fn run_stage2(
    obj: &mut Objective<'_>,
    cfg: &SearchConfig,
    rng: &mut StdRng,
    plan: &ComputePlan,
    init: Dlsa,
    buffer_limit: u64,
) -> Stage2Result {
    let picker = SizeWeightedPicker::new(plan);
    let (init_cost, init_report) =
        obj.eval_parts(plan, &init, buffer_limit).expect("double-buffer DLSA cannot deadlock");

    if picker.is_empty() {
        return Stage2Result { dlsa: init, report: init_report, cost: init_cost };
    }

    let iters = cfg.stage2_iters(picker.len());
    let schedule = SaSchedule {
        t0: cfg.t0,
        alpha: cfg.alpha,
        iters,
        greedy_tail: iters / 10,
        time_budget: cfg.stage_time_budget(),
    };
    let engine = obj.compile(plan);
    let result: SaResult<Dlsa> = {
        let mut state = Stage2Anneal {
            obj: &mut *obj,
            engine: &engine,
            editor: DlsaEditor::new(plan, init),
            picker: &picker,
            buffer_limit,
            pending: None,
        };
        anneal_inplace(&schedule, rng, init_cost, &mut state)
    };

    let (cost, report) = obj
        .eval_parts(plan, &result.best, buffer_limit)
        .expect("best stage-2 solution must re-evaluate");
    Stage2Result { dlsa: result.best, report, cost }
}

/// Stage 2 as a composable [`SearchStage`]: freezes the preceding
/// stage's plan and anneals the DLSA under the full hardware buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlsaStage;

impl SearchStage for DlsaStage {
    fn name(&self) -> &'static str {
        "dlsa"
    }

    fn run(&self, ctx: &mut RoundCtx<'_, '_>) -> StageArtifact {
        let prev = ctx.take_current(self.name());
        let s2 =
            run_stage2(ctx.obj, ctx.cfg, ctx.rng, &prev.plan, prev.dlsa.clone(), ctx.buffer_limit);
        StageArtifact {
            lfa: prev.lfa,
            plan: prev.plan,
            dlsa: s2.dlsa,
            report: s2.report,
            cost: s2.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{CostWeights, Objective};
    use rand::SeedableRng;
    use soma_arch::HardwareConfig;
    use soma_core::{lifetime, parse_lfa, Lfa};
    use soma_model::zoo;

    fn setup() -> (soma_model::Network, ComputePlan, Dlsa) {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        (net, plan, dlsa)
    }

    #[test]
    fn picker_is_size_biased() {
        let (_, plan, _) = setup();
        let picker = SizeWeightedPicker::new(&plan);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; picker.len()];
        for _ in 0..5000 {
            counts[picker.pick(&mut rng)] += 1;
        }
        // The largest tensor must be drawn more often than the smallest.
        let sizes: Vec<u64> = plan.dram_tensors.iter().map(|t| t.bytes).collect();
        let max_i = (0..sizes.len()).max_by_key(|&i| sizes[i]).unwrap();
        let min_i = (0..sizes.len()).min_by_key(|&i| sizes[i]).unwrap();
        assert!(counts[max_i] > counts[min_i]);
    }

    #[test]
    fn mutations_stay_valid() {
        let (_, plan, dlsa) = setup();
        let picker = SizeWeightedPicker::new(&plan);
        let mut rng = StdRng::seed_from_u64(9);
        let mut cur = dlsa;
        let mut changed = 0;
        for _ in 0..500 {
            if let Some(cand) = mutate_dlsa(&plan, &cur, &picker, &mut rng) {
                assert!(cand.validate(&plan).is_ok());
                cur = cand;
                changed += 1;
            }
        }
        assert!(changed > 100);
    }

    #[test]
    fn editor_walks_the_exact_mutate_dlsa_chain() {
        // Same seed ⇒ the editor and the cloning mutator must visit the
        // identical DLSA sequence, with the maintained profile matching a
        // fresh rebuild at every step.
        let (_, plan, dlsa) = setup();
        let picker = SizeWeightedPicker::new(&plan);
        let mut rng_a = StdRng::seed_from_u64(41);
        let mut rng_b = StdRng::seed_from_u64(41);
        let mut naive = dlsa.clone();
        let mut editor = DlsaEditor::new(&plan, dlsa);
        for step in 0..400 {
            let cand = mutate_dlsa(&plan, &naive, &picker, &mut rng_a);
            let token = editor.propose(&picker, &mut rng_b);
            assert_eq!(cand.is_some(), token.is_some(), "step {step} diverged");
            if let Some(cand) = cand {
                naive = cand;
            }
            assert_eq!(editor.dlsa(), &naive, "step {step}");
            assert_eq!(editor.peak(), lifetime::peak_buffer(&plan, &naive), "step {step} peak");
        }
    }

    #[test]
    fn editor_undo_restores_state_and_profile() {
        let (_, plan, dlsa) = setup();
        let picker = SizeWeightedPicker::new(&plan);
        let mut rng = StdRng::seed_from_u64(5);
        let mut editor = DlsaEditor::new(&plan, dlsa.clone());
        for _ in 0..200 {
            if let Some(mv) = editor.propose(&picker, &mut rng) {
                editor.undo(mv);
            }
            assert_eq!(editor.dlsa(), &dlsa);
            assert_eq!(editor.peak(), lifetime::peak_buffer(&plan, &dlsa));
        }
    }

    #[test]
    fn stage2_never_worse_than_double_buffer() {
        let (net, plan, dlsa) = setup();
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let mut rng = StdRng::seed_from_u64(17);
        let cfg = SearchConfig { effort: 0.3, ..SearchConfig::default() };
        let init_cost = obj.eval_parts(&plan, &dlsa, hw.buffer_bytes).unwrap().0;
        let res = run_stage2(&mut obj, &cfg, &mut rng, &plan, dlsa, hw.buffer_bytes);
        assert!(res.cost <= init_cost);
    }
}
