//! Byte-level primitives of the **binary ledger frame payloads**
//! (ledger format v3, `specs/LEDGER.md`): LEB128 varints, `f64`s as
//! their IEEE-754 bit pattern (lossless, like the JSON facade's
//! round-trip-exact floats), and length-prefixed UTF-8 strings.
//!
//! Everything is little-endian and deterministic: equal values encode
//! to byte-identical sequences, which is what lets the binary ledger
//! keep the JSONL ledger's byte-identity contracts (resume, thread
//! matrix, migration round-trips).
//!
//! Decoders never panic on damaged input — every primitive returns a
//! [`WireError`] naming the first violation, so a corrupt frame
//! quarantines instead of aborting a load.

/// A malformed binary record (truncated buffer, varint overflow,
/// invalid UTF-8, trailing bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong, as a human-readable description.
    pub msg: String,
}

impl WireError {
    /// A new error with a human-readable description — public so
    /// higher-level decoders (ledger frames) can report violations in
    /// the same vocabulary.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad wire record: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

/// A cursor over an encoded buffer: decode primitives in sequence,
/// then call [`finish`](Self::finish) to reject trailing garbage.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// One LEB128 varint (at most 10 bytes for a full u64).
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.take(1, "varint")?[0];
            let low = u64::from(b & 0x7f);
            if shift == 63 && low > 1 {
                return Err(WireError::new("varint overflows u64"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::new("varint longer than 10 bytes"))
    }

    /// One `f64` as its 8-byte little-endian bit pattern (bit-exact).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let bytes: [u8; 8] = self.take(8, "f64")?.try_into().expect("8-byte slice");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// One length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| WireError::new("string length overflow"))?;
        let bytes = self.take(len, "string")?;
        std::str::from_utf8(bytes).map_err(|_| WireError::new("string is not UTF-8"))
    }

    /// One length-prefixed raw byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| WireError::new("bytes length overflow"))?;
        self.take(len, "bytes")
    }

    /// One length-prefixed sequence of varints.
    pub fn varint_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| WireError::new("sequence length overflow"))?;
        // A varint is at least one byte, so a plausible length never
        // exceeds the remaining buffer — reject early instead of
        // letting a corrupt length trigger a huge allocation.
        if n > self.remaining() {
            return Err(WireError::new(format!(
                "sequence length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        (0..n).map(|_| self.varint()).collect()
    }

    /// Rejects unconsumed bytes — a decoded record must account for
    /// its whole payload.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::new(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

/// Appends one LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Appends one `f64` as its 8-byte little-endian bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends one length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends one length-prefixed raw byte slice.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Appends one length-prefixed sequence of varints.
pub fn put_varint_vec(buf: &mut Vec<u8>, items: impl ExactSizeIterator<Item = u64>) {
    put_varint(buf, items.len() as u64);
    for v in items {
        put_varint(buf, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_the_range() {
        let samples =
            [0u64, 1, 0x7f, 0x80, 0x3fff, 0x4000, u64::from(u32::MAX), u64::MAX - 1, u64::MAX];
        let mut buf = Vec::new();
        for &v in &samples {
            put_varint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &samples {
            assert_eq!(r.varint().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn floats_are_bit_exact() {
        let samples = [0.0, -0.0, 0.1 + 0.2, f64::MIN_POSITIVE, f64::INFINITY, f64::NAN];
        let mut buf = Vec::new();
        for &v in &samples {
            put_f64(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &samples {
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn strings_and_vecs_round_trip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "fig4@edge/b1");
        put_str(&mut buf, "");
        put_varint_vec(&mut buf, [3u64, 1, 4, 1, 5].into_iter());
        let mut r = Reader::new(&buf);
        assert_eq!(r.str().unwrap(), "fig4@edge/b1");
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.varint_vec().unwrap(), vec![3, 1, 4, 1, 5]);
        r.finish().unwrap();
    }

    #[test]
    fn damage_is_an_error_not_a_panic() {
        // Truncated varint.
        assert!(Reader::new(&[0x80]).varint().is_err());
        // Varint that overflows u64.
        assert!(Reader::new(&[0xff; 10]).varint().is_err());
        // String length past the end of the buffer.
        let mut buf = Vec::new();
        put_varint(&mut buf, 100);
        buf.push(b'x');
        assert!(Reader::new(&buf).str().is_err());
        // Invalid UTF-8.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(Reader::new(&buf).str().is_err());
        // Corrupt sequence length never allocates gigabytes.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX - 7);
        assert!(Reader::new(&buf).varint_vec().is_err());
        // Trailing bytes fail `finish`.
        let mut r = Reader::new(&[1, 2]);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
