//! The SoMa exploration framework (paper Sec. V): a Buffer Allocator
//! driving a pipeline of simulated-annealing stages over the DRAM
//! communication scheduling space, plus the Cocco baseline (Sec. VI-A3).
//!
//! The public entry point is the [`Scheduler`] builder: it configures a
//! search (network + hardware, [`SearchConfig`] knobs, stage pipeline,
//! progress observer, seed list) and yields a stepping [`SearchSession`].
//! Each [`SearchSession::step`] runs one allocator round (stage 1 +
//! stage 2 for SoMa) and emits typed [`SearchEvent`]s — round started,
//! stage finished, new best, budget exhausted — so callers can observe,
//! log, stop early or resume. [`Scheduler::run`] is the
//! drive-to-completion convenience; with several [`Scheduler::seeds`] it
//! races one session per seed via `rayon` and returns the envelope best.
//!
//! ```
//! use soma_arch::HardwareConfig;
//! use soma_model::zoo;
//! use soma_search::{Scheduler, SearchConfig, SearchEvent};
//!
//! let net = zoo::fig2(1);
//! let cfg = SearchConfig { effort: 0.02, seed: 1, ..SearchConfig::default() };
//! let mut rounds = 0;
//! let out = Scheduler::new(&net, &HardwareConfig::edge())
//!     .config(cfg)
//!     .observer(|ev| {
//!         if matches!(ev, SearchEvent::RoundStarted { .. }) {
//!             rounds += 1;
//!         }
//!     })
//!     .run();
//! assert!(out.best.cost <= out.stage1.cost);
//! assert!(rounds >= 1);
//! ```
//!
//! Module map:
//!
//! * [`session`] — the [`Scheduler`] builder, [`SearchSession`] and
//!   [`SearchEvent`]s.
//! * [`stage`] — the [`SearchStage`] trait and [`StageSpec`] pipeline
//!   descriptions (stage composition as data).
//! * [`sa`] — the generic annealer with the paper's cooling schedule.
//! * [`objective`] — the `Energy^n x Delay^m` objective with buffer-budget
//!   penalties, wrapping the evaluator and the compiled engine's
//!   cost-only fast paths.
//! * [`lfa_stage`] — stage 1: SA over the layer-fusion attributes under
//!   the classical double-buffer DLSA.
//! * [`dlsa_stage`] — stage 2: SA over DRAM tensor order and living
//!   durations with size-proportional tensor selection, run in place on
//!   the compiled engine (apply/undo mutation tokens, incrementally
//!   maintained buffer profile, zero-allocation evaluation).
//! * [`parallelism`] — the [`Parallelism`] thread-count policy
//!   (`Auto | Fixed(n) | Sequential`) threaded through every parallel
//!   region in the workspace; results are bit-identical across variants.
//! * [`allocator`] — the outcome type and the blocking [`schedule`] shim.
//! * [`record`] — lossless, deterministic [`SearchOutcome`] ⇄ JSON and
//!   ⇄ binary conversion for the experiment run ledger, plus
//!   [`ENGINE_VERSION`].
//! * [`wire`] — the byte-level primitives (varints, bit-exact floats,
//!   length-prefixed strings) under the binary ledger frames.
//! * [`cocco`] — the restricted baseline: FLC set == DRAM cut set,
//!   KC-parallelism heuristic tiling, double-buffer DLSA.
//! * [`sweep`] — design-space exploration grids over hardware points.

pub mod allocator;
pub mod cocco;
pub mod dlsa_stage;
pub mod lfa_stage;
pub mod objective;
pub mod parallelism;
pub mod record;
pub mod sa;
pub mod session;
pub mod stage;
pub mod sweep;
pub mod wire;

pub use allocator::{schedule, SearchOutcome};
pub use cocco::{cocco_tiling, schedule_cocco, CoccoStage};
pub use dlsa_stage::{DlsaEditor, DlsaMove, DlsaStage, SizeWeightedPicker};
pub use lfa_stage::LfaStage;
pub use objective::{CostWeights, Evaluated, Objective};
pub use parallelism::Parallelism;
pub use record::{
    outcome_from_bytes, outcome_from_str, outcome_to_bytes, outcome_to_string, synthetic_outcome,
    RecordError, ENGINE_VERSION,
};
pub use sa::{anneal, anneal_inplace, AnnealState, SaResult, SaSchedule};
pub use session::{Cancelled, Scheduler, SearchEvent, SearchSession, StepOutcome};
pub use stage::{RoundCtx, SearchStage, StageArtifact, StageSpec};
pub use sweep::{dse, envelope, grid, DsePoint, GridPoint};

use serde::{Deserialize, Serialize};

/// Knobs of the exploration framework (the paper's "framework configs").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Objective exponents (`Energy^n x Delay^m`; paper default 1, 1).
    pub weights: CostWeights,
    /// RNG seed; the paper's artifact uses the same seed for SoMa and the
    /// baseline of each configuration.
    pub seed: u64,
    /// Iteration-budget scale. `1.0` reproduces the paper's budgets
    /// (`beta = 100` per layer in stage 1, `1000` per DRAM tensor in
    /// stage 2); CI-scale runs use `0.01..0.1`.
    pub effort: f64,
    /// Initial SA temperature `T0`.
    pub t0: f64,
    /// Cooling rate `alpha` of `T_n = T0 (1 - n/N) / (1 + alpha n/N)`.
    pub alpha: f64,
    /// Buffer Allocator step as a fraction of `Buffer_max` (paper: 10 %).
    pub allocator_step: f64,
    /// Upper bound on Buffer Allocator iterations.
    pub max_allocator_iters: usize,
    /// Hard cap on stage-1 iterations per allocator round (bounds runtime
    /// on very deep networks such as GPT-2-XL; the paper instead bounds
    /// wall-clock with a termination time).
    pub stage1_cap: u64,
    /// Hard cap on stage-2 iterations per allocator round.
    pub stage2_cap: u64,
    /// Ablation switch: force the FLC set to equal the DRAM cut set, i.e.
    /// disable the paper's weight-shuffling fine-grained cuts (the
    /// add/delete-FLC and add/delete-DRAM-cut operators collapse into a
    /// single linked pair, as in Cocco's space but with free tiling).
    pub link_cuts: bool,
    /// Optional per-stage wall-clock budget in seconds (0 = unlimited).
    /// Past the budget, an annealing stage finishes with its greedy tail
    /// (the paper's "additional termination time").
    pub stage_time_budget_secs: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            weights: CostWeights::default(),
            seed: 0x50_4D_41, // "SMA"
            effort: 1.0,
            t0: 0.2,
            alpha: 4.0,
            allocator_step: 0.10,
            max_allocator_iters: 8,
            stage1_cap: 500_000,
            stage2_cap: 2_000_000,
            link_cuts: false,
            stage_time_budget_secs: 0.0,
        }
    }
}

impl SearchConfig {
    /// Stage-1 iteration count for a network with `layers` layers
    /// (`beta = 100` scaled by `effort`, capped by `stage1_cap`).
    pub fn stage1_iters(&self, layers: usize) -> u64 {
        ((100.0 * layers as f64 * self.effort) as u64).max(40).min(self.stage1_cap)
    }

    /// Stage-2 iteration count for a plan with `tensors` DRAM tensors
    /// (`beta = 1000` scaled by `effort`, capped by `stage2_cap`).
    pub fn stage2_iters(&self, tensors: usize) -> u64 {
        ((1000.0 * tensors as f64 * self.effort) as u64).max(80).min(self.stage2_cap)
    }

    /// The per-stage wall-clock budget as a `Duration`, if set.
    pub fn stage_time_budget(&self) -> Option<std::time::Duration> {
        (self.stage_time_budget_secs > 0.0)
            .then(|| std::time::Duration::from_secs_f64(self.stage_time_budget_secs))
    }
}
