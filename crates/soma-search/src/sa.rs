//! Generic simulated annealing with the paper's cooling schedule
//! (Sec. V-C).

use rand::Rng;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaSchedule {
    /// Initial temperature `T0`.
    pub t0: f64,
    /// Cooling rate `alpha`.
    pub alpha: f64,
    /// Total iteration count `N`.
    pub iters: u64,
    /// Extra iterations after cool-down that accept only improvements
    /// (the paper's optional greedy termination phase).
    pub greedy_tail: u64,
    /// Optional wall-clock budget: once elapsed, the annealer jumps
    /// straight to the greedy tail ("once this time is reached, the
    /// algorithm performs Y more iterations, accepting only improved
    /// solutions" — paper Sec. V-C).
    pub time_budget: Option<std::time::Duration>,
}

impl SaSchedule {
    /// Temperature at iteration `n` of `N`:
    /// `T_n = T0 * (1 - n/N) / (1 + alpha * n/N)`.
    pub fn temperature(&self, n: u64) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        let x = n as f64 / self.iters as f64;
        (self.t0 * (1.0 - x) / (1.0 + self.alpha * x)).max(0.0)
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
#[must_use]
pub struct SaResult<S> {
    /// Best state observed.
    pub best: S,
    /// Cost of `best`.
    pub best_cost: f64,
    /// Number of proposals evaluated (valid neighbours).
    pub evaluated: u64,
    /// Number of accepted moves.
    pub accepted: u64,
}

/// Runs simulated annealing from `init`.
///
/// `neighbor` proposes a mutated state and its cost; returning `None`
/// means the mutation was invalid (rejected without cost). Acceptance of a
/// worse state with cost `c'` over `c` uses `p = exp((c - c') / (c T_n))`
/// — the paper's relative-degradation criterion.
pub fn anneal<S: Clone, R: Rng>(
    schedule: &SaSchedule,
    rng: &mut R,
    init: S,
    init_cost: f64,
    mut neighbor: impl FnMut(&S, &mut R) -> Option<(S, f64)>,
) -> SaResult<S> {
    let mut cur = init.clone();
    let mut cur_cost = init_cost;
    let mut best = init;
    let mut best_cost = init_cost;
    let mut evaluated = 0;
    let mut accepted = 0;
    let started = std::time::Instant::now();

    let total = schedule.iters + schedule.greedy_tail;
    let mut greedy_since: Option<u64> = None;
    for n in 0..total {
        if greedy_since.is_none() {
            if n >= schedule.iters {
                greedy_since = Some(n);
            } else if n % 64 == 0 {
                if let Some(budget) = schedule.time_budget {
                    if started.elapsed() >= budget {
                        greedy_since = Some(n); // termination time reached
                    }
                }
            }
        }
        let greedy = greedy_since.is_some();
        if let Some(since) = greedy_since {
            if n - since >= schedule.greedy_tail {
                break; // Y greedy iterations done
            }
        }
        let Some((cand, cost)) = neighbor(&cur, rng) else {
            continue;
        };
        evaluated += 1;
        let accept = if cost <= cur_cost {
            true
        } else if greedy {
            false
        } else {
            let t = schedule.temperature(n);
            if t <= 0.0 || cur_cost <= 0.0 {
                false
            } else {
                let p = ((cur_cost - cost) / (cur_cost * t)).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            }
        };
        if accept {
            cur = cand;
            cur_cost = cost;
            accepted += 1;
            if cur_cost < best_cost {
                best = cur.clone();
                best_cost = cur_cost;
            }
        }
    }

    SaResult { best, best_cost, evaluated, accepted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sched(iters: u64) -> SaSchedule {
        SaSchedule { t0: 0.2, alpha: 4.0, iters, greedy_tail: iters / 10, time_budget: None }
    }

    #[test]
    fn temperature_decreases_to_zero() {
        let s = sched(100);
        assert!((s.temperature(0) - 0.2).abs() < 1e-12);
        assert!(s.temperature(50) < s.temperature(10));
        assert_eq!(s.temperature(100), 0.0);
    }

    #[test]
    fn finds_minimum_of_quadratic() {
        // State: integer x; cost (x - 17)^2 + 1.
        let cost = |x: i64| ((x - 17) * (x - 17) + 1) as f64;
        let mut rng = StdRng::seed_from_u64(7);
        let r = anneal(&sched(3000), &mut rng, 100i64, cost(100), |&x, rng| {
            let step: i64 = rng.gen_range(-3..=3);
            let y = x + step;
            Some((y, cost(y)))
        });
        assert_eq!(r.best, 17);
        assert!(r.accepted > 0);
    }

    #[test]
    fn invalid_neighbours_are_skipped() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = anneal(&sched(50), &mut rng, 0i64, 10.0, |_, _| None);
        assert_eq!(r.evaluated, 0);
        assert_eq!(r.best, 0);
        assert_eq!(r.best_cost, 10.0);
    }

    #[test]
    fn greedy_tail_never_worsens() {
        // With only-worse proposals in the tail, best stays put.
        let mut rng = StdRng::seed_from_u64(2);
        let s = SaSchedule { t0: 0.2, alpha: 4.0, iters: 0, greedy_tail: 100, time_budget: None };
        let r = anneal(&s, &mut rng, 5i64, 5.0, |&x, _| Some((x + 1, 1000.0)));
        assert_eq!(r.best, 5);
        assert_eq!(r.accepted, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cost = |x: i64| (x * x) as f64;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            anneal(&sched(500), &mut rng, 40i64, cost(40), |&x, rng| {
                let y = x + rng.gen_range::<i64, _>(-2..=2);
                Some((y, cost(y)))
            })
            .best
        };
        assert_eq!(run(3), run(3));
    }
}
