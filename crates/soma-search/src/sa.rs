//! Generic simulated annealing with the paper's cooling schedule
//! (Sec. V-C).

use rand::Rng;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaSchedule {
    /// Initial temperature `T0`.
    pub t0: f64,
    /// Cooling rate `alpha`.
    pub alpha: f64,
    /// Total iteration count `N`.
    pub iters: u64,
    /// Extra iterations after cool-down that accept only improvements
    /// (the paper's optional greedy termination phase).
    pub greedy_tail: u64,
    /// Optional wall-clock budget: once elapsed, the annealer jumps
    /// straight to the greedy tail ("once this time is reached, the
    /// algorithm performs Y more iterations, accepting only improved
    /// solutions" — paper Sec. V-C).
    pub time_budget: Option<std::time::Duration>,
}

impl SaSchedule {
    /// Temperature at iteration `n` of `N`:
    /// `T_n = T0 * (1 - n/N) / (1 + alpha * n/N)`.
    pub fn temperature(&self, n: u64) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        let x = n as f64 / self.iters as f64;
        (self.t0 * (1.0 - x) / (1.0 + self.alpha * x)).max(0.0)
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
#[must_use]
pub struct SaResult<S> {
    /// Best state observed.
    pub best: S,
    /// Cost of `best`.
    pub best_cost: f64,
    /// Number of proposals evaluated (valid neighbours).
    pub evaluated: u64,
    /// Number of accepted moves.
    pub accepted: u64,
}

/// Runs simulated annealing from `init`.
///
/// `neighbor` proposes a mutated state and its cost; returning `None`
/// means the mutation was invalid (rejected without cost). Acceptance of a
/// worse state with cost `c'` over `c` uses `p = exp((c - c') / (c T_n))`
/// — the paper's relative-degradation criterion.
///
/// This is a thin cloning adapter over [`anneal_inplace`], so the two
/// entry points share one control loop by construction (same cooling,
/// time-budget, greedy-tail and acceptance logic — and therefore the
/// same RNG stream for equivalent proposal draws).
pub fn anneal<S: Clone, R: Rng>(
    schedule: &SaSchedule,
    rng: &mut R,
    init: S,
    init_cost: f64,
    neighbor: impl FnMut(&S, &mut R) -> Option<(S, f64)>,
) -> SaResult<S> {
    struct Cloning<S, F> {
        cur: S,
        cand: Option<S>,
        neighbor: F,
    }
    impl<S: Clone, R: Rng, F: FnMut(&S, &mut R) -> Option<(S, f64)>> AnnealState<R> for Cloning<S, F> {
        type Snapshot = S;
        fn propose(&mut self, rng: &mut R) -> Option<f64> {
            let (cand, cost) = (self.neighbor)(&self.cur, rng)?;
            self.cand = Some(cand);
            Some(cost)
        }
        fn resolve(&mut self, accept: bool) {
            let cand = self.cand.take().expect("resolve follows a successful propose");
            if accept {
                self.cur = cand;
            }
        }
        fn snapshot(&mut self) -> S {
            self.cur.clone()
        }
    }
    let mut state = Cloning { cur: init, cand: None, neighbor };
    anneal_inplace(schedule, rng, init_cost, &mut state)
}

/// An annealing problem mutated *in place*: proposals are applied to the
/// live state with apply/undo tokens instead of cloning it, so the inner
/// loop allocates nothing.
///
/// The contract mirrors the closure of [`anneal`]: a [`propose`]
/// (apply a mutation, evaluate, return its cost) that returns `None` for
/// invalid proposals **after fully rolling them back**, a [`resolve`]
/// that commits or rolls back the pending proposal, and a [`snapshot`]
/// that clones the current state (called only when a new best appears).
///
/// [`propose`]: AnnealState::propose
/// [`resolve`]: AnnealState::resolve
/// [`snapshot`]: AnnealState::snapshot
pub trait AnnealState<R: Rng> {
    /// Owned copy of the state (the `best` the annealer returns).
    type Snapshot;

    /// Applies one random mutation to the live state and evaluates it.
    /// `None` means the proposal was invalid (identity mutation, failed
    /// evaluation); the implementation must have undone any partial
    /// application before returning.
    fn propose(&mut self, rng: &mut R) -> Option<f64>;

    /// Called exactly once after each `Some` proposal: `accept == true`
    /// keeps the mutation, `false` must roll it back.
    fn resolve(&mut self, accept: bool);

    /// Clones the current state.
    fn snapshot(&mut self) -> Self::Snapshot;
}

/// [`anneal`] over an in-place [`AnnealState`]: identical cooling
/// schedule, acceptance criterion and RNG stream (a state machine built
/// from the same mutation draws follows the exact same trajectory), but
/// the state is mutated with apply/undo instead of cloned per proposal.
pub fn anneal_inplace<R: Rng, P: AnnealState<R>>(
    schedule: &SaSchedule,
    rng: &mut R,
    init_cost: f64,
    state: &mut P,
) -> SaResult<P::Snapshot> {
    let mut cur_cost = init_cost;
    let mut best = state.snapshot();
    let mut best_cost = init_cost;
    let mut evaluated = 0;
    let mut accepted = 0;
    let started = std::time::Instant::now();

    let total = schedule.iters + schedule.greedy_tail;
    let mut greedy_since: Option<u64> = None;
    for n in 0..total {
        if greedy_since.is_none() {
            if n >= schedule.iters {
                greedy_since = Some(n);
            } else if n % 64 == 0 {
                if let Some(budget) = schedule.time_budget {
                    if started.elapsed() >= budget {
                        greedy_since = Some(n); // termination time reached
                    }
                }
            }
        }
        let greedy = greedy_since.is_some();
        if let Some(since) = greedy_since {
            if n - since >= schedule.greedy_tail {
                break; // Y greedy iterations done
            }
        }
        let Some(cost) = state.propose(rng) else {
            continue;
        };
        evaluated += 1;
        let accept = if cost <= cur_cost {
            true
        } else if greedy {
            false
        } else {
            let t = schedule.temperature(n);
            if t <= 0.0 || cur_cost <= 0.0 {
                false
            } else {
                let p = ((cur_cost - cost) / (cur_cost * t)).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            }
        };
        state.resolve(accept);
        if accept {
            cur_cost = cost;
            accepted += 1;
            if cur_cost < best_cost {
                best = state.snapshot();
                best_cost = cur_cost;
            }
        }
    }

    SaResult { best, best_cost, evaluated, accepted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sched(iters: u64) -> SaSchedule {
        SaSchedule { t0: 0.2, alpha: 4.0, iters, greedy_tail: iters / 10, time_budget: None }
    }

    #[test]
    fn temperature_decreases_to_zero() {
        let s = sched(100);
        assert!((s.temperature(0) - 0.2).abs() < 1e-12);
        assert!(s.temperature(50) < s.temperature(10));
        assert_eq!(s.temperature(100), 0.0);
    }

    #[test]
    fn finds_minimum_of_quadratic() {
        // State: integer x; cost (x - 17)^2 + 1.
        let cost = |x: i64| ((x - 17) * (x - 17) + 1) as f64;
        let mut rng = StdRng::seed_from_u64(7);
        let r = anneal(&sched(3000), &mut rng, 100i64, cost(100), |&x, rng| {
            let step: i64 = rng.gen_range(-3..=3);
            let y = x + step;
            Some((y, cost(y)))
        });
        assert_eq!(r.best, 17);
        assert!(r.accepted > 0);
    }

    #[test]
    fn invalid_neighbours_are_skipped() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = anneal(&sched(50), &mut rng, 0i64, 10.0, |_, _| None);
        assert_eq!(r.evaluated, 0);
        assert_eq!(r.best, 0);
        assert_eq!(r.best_cost, 10.0);
    }

    #[test]
    fn greedy_tail_never_worsens() {
        // With only-worse proposals in the tail, best stays put.
        let mut rng = StdRng::seed_from_u64(2);
        let s = SaSchedule { t0: 0.2, alpha: 4.0, iters: 0, greedy_tail: 100, time_budget: None };
        let r = anneal(&s, &mut rng, 5i64, 5.0, |&x, _| Some((x + 1, 1000.0)));
        assert_eq!(r.best, 5);
        assert_eq!(r.accepted, 0);
    }

    #[test]
    fn inplace_annealer_follows_the_exact_cloning_trajectory() {
        // Same seed, same cooling schedule, same proposal distribution:
        // the in-place annealer must reproduce `anneal`'s result bit for
        // bit, because it consumes the identical RNG stream.
        let cost = |x: i64| ((x - 17) * (x - 17) + 1) as f64;
        let s = sched(3000);

        let mut rng = StdRng::seed_from_u64(7);
        let cloned = anneal(&s, &mut rng, 100i64, cost(100), |&x, rng| {
            let step: i64 = rng.gen_range(-3..=3);
            let y = x + step;
            Some((y, cost(y)))
        });

        struct Quad {
            x: i64,
            pending: i64,
        }
        impl AnnealState<StdRng> for Quad {
            type Snapshot = i64;
            fn propose(&mut self, rng: &mut StdRng) -> Option<f64> {
                let step: i64 = rng.gen_range(-3..=3);
                self.x += step;
                self.pending = step;
                Some(((self.x - 17) * (self.x - 17) + 1) as f64)
            }
            fn resolve(&mut self, accept: bool) {
                if !accept {
                    self.x -= self.pending;
                }
            }
            fn snapshot(&mut self) -> i64 {
                self.x
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut q = Quad { x: 100, pending: 0 };
        let inplace = anneal_inplace(&s, &mut rng, cost(100), &mut q);

        assert_eq!(inplace.best, cloned.best);
        assert_eq!(inplace.best_cost.to_bits(), cloned.best_cost.to_bits());
        assert_eq!(inplace.evaluated, cloned.evaluated);
        assert_eq!(inplace.accepted, cloned.accepted);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cost = |x: i64| (x * x) as f64;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            anneal(&sched(500), &mut rng, 40i64, cost(40), |&x, rng| {
                let y = x + rng.gen_range::<i64, _>(-2..=2);
                Some((y, cost(y)))
            })
            .best
        };
        assert_eq!(run(3), run(3));
    }
}
