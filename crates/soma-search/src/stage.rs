//! Stage composition for the SoMa framework: the [`SearchStage`] trait
//! turns the hard-coded "stage 1 then stage 2" control flow of the
//! original Buffer Allocator into data — a [`SearchSession`] runs an
//! arbitrary pipeline of stages per allocator round, and [`StageSpec`]
//! names the built-in stages so a pipeline is serialisable configuration
//! rather than code.
//!
//! [`SearchSession`]: crate::session::SearchSession

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use soma_core::{ComputePlan, Dlsa, Encoding, Lfa};
use soma_sim::EvalReport;

use crate::cocco::CoccoStage;
use crate::dlsa_stage::DlsaStage;
use crate::lfa_stage::LfaStage;
use crate::objective::{Evaluated, Objective};
use crate::SearchConfig;

/// The complete scheme a stage hands to the next one: enough to freeze
/// the layer-fusion attributes (plan) and keep refining the DRAM
/// load/store attributes (DLSA), plus the evaluation of the whole thing.
#[derive(Debug, Clone)]
#[must_use]
pub struct StageArtifact {
    /// The layer-fusion attributes of the scheme.
    pub lfa: Lfa,
    /// The plan parsed from `lfa` (cached so later stages need not
    /// re-parse).
    pub plan: ComputePlan,
    /// The DRAM load-and-store attributes of the scheme.
    pub dlsa: Dlsa,
    /// Evaluation report of the scheme.
    pub report: EvalReport,
    /// Penalised objective value.
    pub cost: f64,
}

impl StageArtifact {
    /// The artifact as a self-contained [`Evaluated`] scheme (clones the
    /// encoding parts; the plan is dropped, it can be re-parsed).
    pub fn evaluated(&self) -> Evaluated {
        Evaluated {
            encoding: Encoding { lfa: self.lfa.clone(), dlsa: Some(self.dlsa.clone()) },
            report: self.report.clone(),
            cost: self.cost,
        }
    }

    /// Consumes the artifact into an [`Evaluated`] without cloning.
    pub fn into_evaluated(self) -> Evaluated {
        Evaluated {
            encoding: Encoding { lfa: self.lfa, dlsa: Some(self.dlsa) },
            report: self.report,
            cost: self.cost,
        }
    }
}

/// Everything a stage may touch during one allocator round. The session
/// owns the objective (and its memoised core-array model), the RNG and
/// the budgets; stages share them so the RNG stream — and therefore the
/// search trajectory — is identical to the pre-session monolithic
/// `schedule()` loop at the same seed.
#[derive(Debug)]
pub struct RoundCtx<'s, 'a> {
    /// The shared objective (evaluator + eval counter).
    pub obj: &'s mut Objective<'a>,
    /// The framework configuration.
    pub cfg: &'s SearchConfig,
    /// The session RNG (one stream across all rounds and stages).
    pub rng: &'s mut StdRng,
    /// The shrinking stage-1 buffer budget of this allocator round.
    pub stage1_limit: u64,
    /// The full hardware buffer capacity (the stage-2 budget).
    pub buffer_limit: u64,
    /// Artifact produced by the previous stage of this round (`None` for
    /// the first stage).
    pub current: Option<StageArtifact>,
}

impl RoundCtx<'_, '_> {
    /// Takes the previous stage's artifact, panicking with a clear
    /// message if this stage was composed without a producing stage
    /// before it.
    pub fn take_current(&mut self, consumer: &str) -> StageArtifact {
        self.current
            .take()
            .unwrap_or_else(|| panic!("stage `{consumer}` needs a preceding stage's artifact"))
    }
}

/// One stage of the exploration pipeline. Implementations mutate nothing
/// outside the [`RoundCtx`]; the session threads artifacts between them
/// and applies the Buffer Allocator policy around whole rounds.
pub trait SearchStage {
    /// Short stable name, used in [`SearchEvent::StageFinished`] events.
    ///
    /// [`SearchEvent::StageFinished`]: crate::session::SearchEvent
    fn name(&self) -> &'static str;

    /// Runs the stage once and returns the (best) scheme it found.
    fn run(&self, ctx: &mut RoundCtx<'_, '_>) -> StageArtifact;
}

/// Serializable name of a built-in stage: pipelines are data, not code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageSpec {
    /// SoMa stage 1: SA over the layer-fusion attributes under the
    /// classical double-buffer DLSA ([`LfaStage`]).
    Lfa,
    /// SoMa stage 2: SA over DRAM tensor order and living durations on
    /// the frozen stage-1 plan ([`DlsaStage`]).
    Dlsa,
    /// Cocco's restricted variant: linked FLC/DRAM-cut sets,
    /// KC-parallelism heuristic tiling, double-buffer DLSA
    /// ([`CoccoStage`]).
    CoccoLfa,
}

impl StageSpec {
    /// The full SoMa pipeline (paper Sec. V): stage 1 then stage 2.
    pub const SOMA: &'static [StageSpec] = &[StageSpec::Lfa, StageSpec::Dlsa];

    /// The Cocco baseline pipeline (paper Sec. VI-A3).
    pub const COCCO: &'static [StageSpec] = &[StageSpec::CoccoLfa];

    /// Instantiates the stage behind the name.
    pub fn instantiate(self) -> Box<dyn SearchStage> {
        match self {
            StageSpec::Lfa => Box::new(LfaStage),
            StageSpec::Dlsa => Box::new(DlsaStage),
            StageSpec::CoccoLfa => Box::new(CoccoStage),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_instantiate_with_matching_names() {
        assert_eq!(StageSpec::Lfa.instantiate().name(), "lfa");
        assert_eq!(StageSpec::Dlsa.instantiate().name(), "dlsa");
        assert_eq!(StageSpec::CoccoLfa.instantiate().name(), "cocco");
        assert_eq!(StageSpec::SOMA.len(), 2);
        assert_eq!(StageSpec::COCCO.len(), 1);
    }
}
