//! The optimisation objective: `Energy^n x Delay^m` with buffer-budget
//! penalties.
//!
//! The objective owns the evaluation engine's shared state — the memoised
//! core-array model and the [`SimScratch`] workspace — and exposes two
//! families of entry points:
//!
//! * **Full evaluations** ([`eval_parts`](Objective::eval_parts),
//!   [`eval_lfa`](Objective::eval_lfa)) build a complete [`EvalReport`];
//!   stages use them for initial and final schemes.
//! * **Cost-only evaluations** ([`eval_lfa_cost`](Objective::eval_lfa_cost),
//!   [`eval_compiled_with_peak`](Objective::eval_compiled_with_peak))
//!   run the compiled engine's allocation-free fast path and return just
//!   the penalised objective value — the SA inner loop's diet. Both
//!   families share one float pipeline
//!   ([`cost_of_parts`](Objective::cost_of_parts)), so their costs are
//!   bit-identical.

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_core::{lifetime, parse_lfa, ComputePlan, Dlsa, Encoding, Lfa};
use soma_model::Network;
use soma_sim::{evaluate_parts, CompiledPlan, CoreArrayModel, EvalReport, SimScratch};

/// Exponents of the paper's objective `Energy^n x Delay^m` (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Energy exponent `n`.
    pub energy_exp: f64,
    /// Delay exponent `m`.
    pub delay_exp: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // "The optimisation goal is set as Energy^1 x Delay^1" (Sec. VI-A1).
        Self { energy_exp: 1.0, delay_exp: 1.0 }
    }
}

/// A fully evaluated scheduling scheme.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct Evaluated {
    /// The scheme.
    pub encoding: Encoding,
    /// Its evaluation report.
    pub report: EvalReport,
    /// Its penalised objective value.
    pub cost: f64,
}

/// Objective function bound to one network + hardware pair, owning the
/// memoised core-array model and the engine scratch.
#[derive(Debug)]
pub struct Objective<'a> {
    net: &'a Network,
    hw: &'a HardwareConfig,
    weights: CostWeights,
    model: CoreArrayModel<'a>,
    scratch: SimScratch,
    evals: u64,
    rejected: u64,
}

impl<'a> Objective<'a> {
    /// Creates the objective.
    pub fn new(net: &'a Network, hw: &'a HardwareConfig, weights: CostWeights) -> Self {
        Self {
            net,
            hw,
            weights,
            model: CoreArrayModel::new(hw),
            scratch: SimScratch::new(),
            evals: 0,
            rejected: 0,
        }
    }

    /// The network under optimisation.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// The target hardware.
    pub fn hardware(&self) -> &'a HardwareConfig {
        self.hw
    }

    /// Number of *completed* schedule evaluations so far (proposals that
    /// produced a cost). Failed proposals — deadlocked DLSAs, invalid
    /// LFAs — count under [`rejected`](Self::rejected) instead, so
    /// throughput metrics no longer conflate proposals with evaluations.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Number of failed evaluation attempts (deadlocked DRAM tensor
    /// orders, structurally invalid LFAs).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Compiles a frozen plan for the engine fast path. The memoised
    /// core-array model is consulted once per tile here; subsequent
    /// [`eval_compiled_with_peak`](Self::eval_compiled_with_peak) calls
    /// never touch it.
    pub fn compile(&mut self, plan: &ComputePlan) -> CompiledPlan {
        CompiledPlan::compile(self.net, plan, self.hw, &mut self.model)
    }

    /// The penalised objective from its raw parts. This is the single
    /// float pipeline behind both [`cost_of`](Self::cost_of) and the
    /// engine fast path, so compiled and naive costs are bit-identical:
    /// schemes whose peak occupancy exceeds `buffer_limit` are steeply
    /// penalised (the paper deems them invalid; the penalty keeps the
    /// annealer's gradient alive when even the initial solution
    /// overflows).
    pub fn cost_of_parts(
        &self,
        latency_cycles: u64,
        energy_pj: f64,
        peak_buffer: u64,
        buffer_limit: u64,
    ) -> f64 {
        let energy_j = energy_pj * 1e-12;
        let delay_s = self.hw.cycles_to_seconds(latency_cycles);
        let mut cost =
            energy_j.powf(self.weights.energy_exp) * delay_s.powf(self.weights.delay_exp);
        if buffer_limit > 0 && peak_buffer > buffer_limit {
            let over = peak_buffer as f64 / buffer_limit as f64;
            cost *= over.powi(8);
        }
        cost
    }

    /// Penalised objective for a report under a buffer budget.
    pub fn cost_of(&self, report: &EvalReport, buffer_limit: u64) -> f64 {
        self.cost_of_parts(
            report.latency_cycles,
            report.energy.total_pj(),
            report.peak_buffer,
            buffer_limit,
        )
    }

    /// Whether a report fits the budget.
    pub fn feasible(&self, report: &EvalReport, buffer_limit: u64) -> bool {
        report.peak_buffer <= buffer_limit
    }

    /// Evaluates a plan + DLSA pair (full report). Returns `None` for
    /// deadlocked DRAM tensor orders (invalid schemes).
    pub fn eval_parts(
        &mut self,
        plan: &ComputePlan,
        dlsa: &Dlsa,
        buffer_limit: u64,
    ) -> Option<(f64, EvalReport)> {
        let Ok(report) = evaluate_parts(self.net, plan, dlsa, self.hw, &mut self.model) else {
            self.rejected += 1;
            return None;
        };
        self.evals += 1;
        let cost = self.cost_of(&report, buffer_limit);
        Some((cost, report))
    }

    /// Parses and evaluates an LFA under the double-buffer DLSA (the
    /// stage-1 view), full report. Returns `None` for structurally
    /// invalid LFAs.
    pub fn eval_lfa(
        &mut self,
        lfa: &Lfa,
        buffer_limit: u64,
    ) -> Option<(f64, ComputePlan, Dlsa, EvalReport)> {
        let Ok(plan) = parse_lfa(self.net, lfa) else {
            self.rejected += 1;
            return None;
        };
        let dlsa = Dlsa::double_buffer(&plan);
        let (cost, report) = self.eval_parts(&plan, &dlsa, buffer_limit)?;
        Some((cost, plan, dlsa, report))
    }

    /// Cost-only stage-1 evaluation: parse, compile, simulate the
    /// double-buffer DLSA through the engine fast path, fuse the buffer
    /// peak from the shared scratch. Bit-identical to
    /// [`eval_lfa`](Self::eval_lfa)'s cost, without building the report.
    pub fn eval_lfa_cost(&mut self, lfa: &Lfa, buffer_limit: u64) -> Option<f64> {
        let Ok(plan) = parse_lfa(self.net, lfa) else {
            self.rejected += 1;
            return None;
        };
        let dlsa = Dlsa::double_buffer(&plan);
        let compiled = self.compile(&plan);
        match compiled.simulate_cost(&dlsa, &mut self.scratch) {
            Err(_) => {
                self.rejected += 1;
                None
            }
            Ok(latency) => {
                self.evals += 1;
                let peak = lifetime::peak_buffer_into(&plan, &dlsa, self.scratch.diff_mut());
                Some(self.cost_of_parts(latency, compiled.energy_total_pj(), peak, buffer_limit))
            }
        }
    }

    /// Cost-only evaluation of a DLSA against a compiled plan whose peak
    /// occupancy the caller maintains incrementally (the stage-2 inner
    /// loop: `O(1)` profile update + allocation-free queue replay).
    /// Returns `None` for deadlocked orders.
    pub fn eval_compiled_with_peak(
        &mut self,
        compiled: &CompiledPlan,
        dlsa: &Dlsa,
        peak_buffer: u64,
        buffer_limit: u64,
    ) -> Option<f64> {
        match compiled.simulate_cost(dlsa, &mut self.scratch) {
            Err(_) => {
                self.rejected += 1;
                None
            }
            Ok(latency) => {
                self.evals += 1;
                Some(self.cost_of_parts(
                    latency,
                    compiled.energy_total_pj(),
                    peak_buffer,
                    buffer_limit,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn penalty_kicks_in_above_budget() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::fully_fused(&net, 4);
        let (_, _, _, report) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        let free = obj.cost_of(&report, u64::MAX);
        let squeezed = obj.cost_of(&report, report.peak_buffer / 2);
        assert!(squeezed > free * 100.0);
        assert!(obj.feasible(&report, hw.buffer_bytes));
        assert!(!obj.feasible(&report, report.peak_buffer - 1));
    }

    #[test]
    fn eval_counts_accumulate() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::unfused(&net, 2);
        obj.eval_lfa(&lfa, hw.buffer_bytes);
        obj.eval_lfa(&lfa, hw.buffer_bytes);
        assert_eq!(obj.evals(), 2);
        assert_eq!(obj.rejected(), 0);
    }

    #[test]
    fn cost_only_path_is_bit_identical_to_full_path() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        for lfa in [Lfa::unfused(&net, 4), Lfa::fully_fused(&net, 8)] {
            let (full_cost, ..) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
            let fast_cost = obj.eval_lfa_cost(&lfa, hw.buffer_bytes).unwrap();
            assert_eq!(full_cost.to_bits(), fast_cost.to_bits());
        }
    }

    #[test]
    fn rejected_counts_failures_separately() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());

        // Structurally invalid LFA: rejected, not evaluated.
        let mut bad = Lfa::unfused(&net, 2);
        bad.order.swap(0, 2);
        assert!(obj.eval_lfa(&bad, hw.buffer_bytes).is_none());
        assert_eq!((obj.evals(), obj.rejected()), (0, 1));
        assert!(obj.eval_lfa_cost(&bad, hw.buffer_bytes).is_none());
        assert_eq!((obj.evals(), obj.rejected()), (0, 2));

        // Deadlocked DLSA: rejected, not evaluated.
        let lfa = Lfa::unfused(&net, 2);
        let (_, plan, mut dlsa, _) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        assert_eq!((obj.evals(), obj.rejected()), (1, 2));
        let last_store = plan
            .dram_tensors
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !t.is_load)
            .map(|(i, _)| i as u32)
            .unwrap();
        let pos = dlsa.order.iter().position(|&o| o == last_store).unwrap();
        dlsa.order.remove(pos);
        dlsa.order.insert(0, last_store);
        assert!(obj.eval_parts(&plan, &dlsa, hw.buffer_bytes).is_none());
        assert_eq!((obj.evals(), obj.rejected()), (1, 3));
        let compiled = obj.compile(&plan);
        assert!(obj.eval_compiled_with_peak(&compiled, &dlsa, 0, hw.buffer_bytes).is_none());
        assert_eq!((obj.evals(), obj.rejected()), (1, 4));
    }

    #[test]
    fn deadlocked_dlsa_yields_none() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::unfused(&net, 2);
        let (_, plan, mut dlsa, _) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        // Move the last store to the front of the queue: the first tile's
        // loads now sit behind a store that needs the last tile.
        let last_store = plan
            .dram_tensors
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !t.is_load)
            .map(|(i, _)| i as u32)
            .unwrap();
        let pos = dlsa.order.iter().position(|&o| o == last_store).unwrap();
        dlsa.order.remove(pos);
        dlsa.order.insert(0, last_store);
        assert!(obj.eval_parts(&plan, &dlsa, hw.buffer_bytes).is_none());
    }

    #[test]
    fn invalid_lfa_yields_none() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let mut lfa = Lfa::unfused(&net, 2);
        lfa.order.swap(0, 2);
        assert!(obj.eval_lfa(&lfa, hw.buffer_bytes).is_none());
    }

    #[test]
    fn compiled_peak_eval_matches_full_eval() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::fully_fused(&net, 4);
        let (full_cost, plan, dlsa, report) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        let compiled = obj.compile(&plan);
        let fast = obj
            .eval_compiled_with_peak(&compiled, &dlsa, report.peak_buffer, hw.buffer_bytes)
            .unwrap();
        assert_eq!(full_cost.to_bits(), fast.to_bits());
    }
}
