//! The optimisation objective: `Energy^n x Delay^m` with buffer-budget
//! penalties.

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_core::{parse_lfa, ComputePlan, Dlsa, Encoding, Lfa};
use soma_model::Network;
use soma_sim::{evaluate_parts, CoreArrayModel, EvalReport};

/// Exponents of the paper's objective `Energy^n x Delay^m` (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Energy exponent `n`.
    pub energy_exp: f64,
    /// Delay exponent `m`.
    pub delay_exp: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // "The optimisation goal is set as Energy^1 x Delay^1" (Sec. VI-A1).
        Self { energy_exp: 1.0, delay_exp: 1.0 }
    }
}

/// A fully evaluated scheduling scheme.
#[derive(Debug, Clone)]
#[must_use]
pub struct Evaluated {
    /// The scheme.
    pub encoding: Encoding,
    /// Its evaluation report.
    pub report: EvalReport,
    /// Its penalised objective value.
    pub cost: f64,
}

/// Objective function bound to one network + hardware pair, owning the
/// memoised core-array model.
#[derive(Debug)]
pub struct Objective<'a> {
    net: &'a Network,
    hw: &'a HardwareConfig,
    weights: CostWeights,
    model: CoreArrayModel<'a>,
    evals: u64,
}

impl<'a> Objective<'a> {
    /// Creates the objective.
    pub fn new(net: &'a Network, hw: &'a HardwareConfig, weights: CostWeights) -> Self {
        Self { net, hw, weights, model: CoreArrayModel::new(hw), evals: 0 }
    }

    /// The network under optimisation.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// The target hardware.
    pub fn hardware(&self) -> &'a HardwareConfig {
        self.hw
    }

    /// Number of schedule evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Penalised objective for a report under a buffer budget: schemes
    /// whose peak occupancy exceeds `buffer_limit` are steeply penalised
    /// (the paper deems them invalid; the penalty keeps the annealer's
    /// gradient alive when even the initial solution overflows).
    pub fn cost_of(&self, report: &EvalReport, buffer_limit: u64) -> f64 {
        let mut cost = report.cost(self.hw, self.weights.energy_exp, self.weights.delay_exp);
        if buffer_limit > 0 && report.peak_buffer > buffer_limit {
            let over = report.peak_buffer as f64 / buffer_limit as f64;
            cost *= over.powi(8);
        }
        cost
    }

    /// Whether a report fits the budget.
    pub fn feasible(&self, report: &EvalReport, buffer_limit: u64) -> bool {
        report.peak_buffer <= buffer_limit
    }

    /// Evaluates a plan + DLSA pair. Returns `None` for deadlocked DRAM
    /// tensor orders (invalid schemes).
    pub fn eval_parts(
        &mut self,
        plan: &ComputePlan,
        dlsa: &Dlsa,
        buffer_limit: u64,
    ) -> Option<(f64, EvalReport)> {
        self.evals += 1;
        let report = evaluate_parts(self.net, plan, dlsa, self.hw, &mut self.model).ok()?;
        let cost = self.cost_of(&report, buffer_limit);
        Some((cost, report))
    }

    /// Parses and evaluates an LFA under the double-buffer DLSA (the
    /// stage-1 view). Returns `None` for structurally invalid LFAs.
    pub fn eval_lfa(
        &mut self,
        lfa: &Lfa,
        buffer_limit: u64,
    ) -> Option<(f64, ComputePlan, Dlsa, EvalReport)> {
        let plan = parse_lfa(self.net, lfa).ok()?;
        let dlsa = Dlsa::double_buffer(&plan);
        let (cost, report) = self.eval_parts(&plan, &dlsa, buffer_limit)?;
        Some((cost, plan, dlsa, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn penalty_kicks_in_above_budget() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::fully_fused(&net, 4);
        let (_, _, _, report) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        let free = obj.cost_of(&report, u64::MAX);
        let squeezed = obj.cost_of(&report, report.peak_buffer / 2);
        assert!(squeezed > free * 100.0);
        assert!(obj.feasible(&report, hw.buffer_bytes));
        assert!(!obj.feasible(&report, report.peak_buffer - 1));
    }

    #[test]
    fn eval_counts_accumulate() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::unfused(&net, 2);
        obj.eval_lfa(&lfa, hw.buffer_bytes);
        obj.eval_lfa(&lfa, hw.buffer_bytes);
        assert_eq!(obj.evals(), 2);
    }

    #[test]
    fn deadlocked_dlsa_yields_none() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let lfa = Lfa::unfused(&net, 2);
        let (_, plan, mut dlsa, _) = obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap();
        // Move the last store to the front of the queue: the first tile's
        // loads now sit behind a store that needs the last tile.
        let last_store = plan
            .dram_tensors
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !t.is_load)
            .map(|(i, _)| i as u32)
            .unwrap();
        let pos = dlsa.order.iter().position(|&o| o == last_store).unwrap();
        dlsa.order.remove(pos);
        dlsa.order.insert(0, last_store);
        assert!(obj.eval_parts(&plan, &dlsa, hw.buffer_bytes).is_none());
    }

    #[test]
    fn invalid_lfa_yields_none() {
        let net = zoo::fig2(1);
        let hw = HardwareConfig::edge();
        let mut obj = Objective::new(&net, &hw, CostWeights::default());
        let mut lfa = Lfa::unfused(&net, 2);
        lfa.order.swap(0, 2);
        assert!(obj.eval_lfa(&lfa, hw.buffer_bytes).is_none());
    }
}
