//! Feature-map shapes.

use serde::{Deserialize, Serialize};

/// Shape of a feature map in `NCHW` layout.
///
/// Convolutional networks use the natural mapping. Transformer workloads map
/// the sequence dimension to `h` and the hidden dimension to `c` with
/// `w = 1`, so that the scheduler's batch/height/width tiling (paper
/// Sec. IV-A1) naturally tiles the token dimension.
///
/// ```
/// use soma_model::FmapShape;
///
/// let s = FmapShape::new(1, 64, 56, 56);
/// assert_eq!(s.elems(), 64 * 56 * 56);
/// assert_eq!(s.bytes(1), 64 * 56 * 56); // INT8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FmapShape {
    /// Batch size.
    pub n: u32,
    /// Channels (hidden dimension for transformers).
    pub c: u32,
    /// Height (sequence length for transformers).
    pub h: u32,
    /// Width (always 1 for transformers).
    pub w: u32,
}

impl FmapShape {
    /// Creates a new shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n: u32, c: u32, h: u32, w: u32) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "feature map dimensions must be non-zero: ({n},{c},{h},{w})"
        );
        Self { n, c, h, w }
    }

    /// Shape of a flat (fully-connected style) activation vector.
    pub fn vector(n: u32, c: u32) -> Self {
        Self::new(n, c, 1, 1)
    }

    /// Shape of a transformer activation: `seq` tokens of `hidden` channels.
    pub fn tokens(n: u32, hidden: u32, seq: u32) -> Self {
        Self::new(n, hidden, seq, 1)
    }

    /// Number of elements.
    pub fn elems(&self) -> u64 {
        u64::from(self.n) * u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Size in bytes for the given element precision (bytes per element).
    pub fn bytes(&self, precision: u32) -> u64 {
        self.elems() * u64::from(precision)
    }

    /// Spatial extent `h * w`.
    pub fn spatial(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w)
    }

    /// Returns the shape with a different batch size.
    pub fn with_batch(mut self, n: u32) -> Self {
        assert!(n > 0, "batch must be non-zero");
        self.n = n;
        self
    }
}

impl std::fmt::Display for FmapShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_and_bytes() {
        let s = FmapShape::new(2, 3, 4, 5);
        assert_eq!(s.elems(), 120);
        assert_eq!(s.bytes(1), 120);
        assert_eq!(s.bytes(2), 240);
    }

    #[test]
    fn token_shape_maps_seq_to_h() {
        let s = FmapShape::tokens(4, 768, 512);
        assert_eq!(s.h, 512);
        assert_eq!(s.w, 1);
        assert_eq!(s.c, 768);
    }

    #[test]
    fn with_batch_scales_only_n() {
        let s = FmapShape::new(1, 8, 8, 8).with_batch(16);
        assert_eq!(s.n, 16);
        assert_eq!(s.elems(), 16 * 8 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        let _ = FmapShape::new(1, 0, 1, 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FmapShape::new(1, 2, 3, 4).to_string(), "1x2x3x4");
    }
}
