//! Receptive-field (halo) arithmetic for fused-tile sizing.
//!
//! When several layers are fused into a fine-grained layer-fusion group
//! (FLG) and processed tile by tile, each intermediate layer must produce a
//! slightly larger tile than `1/T` of its ofmap so that downstream kernels
//! have their full receptive field available (paper Sec. IV-A1, Fig. 2). The
//! per-layer enlargement ("halo extension") accumulates backwards through
//! the group. This module provides the primitive per-layer mapping; the
//! accumulation over a group lives in `soma-core::tiles` where group
//! membership is known.

/// Given a layer with kernel `k` and stride `s` along one spatial axis,
/// returns the input extent required to produce `out` output elements
/// (same-padding semantics).
///
/// ```
/// use soma_model::halo::in_extent;
///
/// assert_eq!(in_extent(4, 3, 1), 6); // 3x3 stride-1 conv: 4 outputs need 6 inputs
/// assert_eq!(in_extent(4, 1, 1), 4); // 1x1: identity
/// assert_eq!(in_extent(4, 3, 2), 9); // 3x3 stride-2
/// ```
pub fn in_extent(out: u32, k: u32, s: u32) -> u32 {
    if out == 0 {
        return 0;
    }
    (out - 1) * s + k
}

/// Propagates a downstream halo extension `e_out` (extra output elements a
/// consumer needs beyond the nominal tile) backwards through a layer with
/// kernel `k`, stride `s`: the producer must supply
/// `e_in = e_out * s + (k - s)` extra elements.
///
/// Identity layers (`k = s = 1`) pass the extension through unchanged.
///
/// ```
/// use soma_model::halo::back_extend;
///
/// assert_eq!(back_extend(0, 3, 1), 2); // one 3x3 conv adds 2 halo rows
/// assert_eq!(back_extend(2, 3, 1), 4); // two stacked 3x3 convs add 4
/// assert_eq!(back_extend(0, 1, 1), 0);
/// assert_eq!(back_extend(1, 3, 2), 3);
/// ```
pub fn back_extend(e_out: u32, k: u32, s: u32) -> u32 {
    e_out * s + k.saturating_sub(s)
}

/// Nominal tile extent for splitting a dimension of size `dim` into
/// `parts` pieces: the ceiling of the division, so `parts` tiles always
/// cover the dimension.
///
/// ```
/// use soma_model::halo::tile_extent;
///
/// assert_eq!(tile_extent(56, 4), 14);
/// assert_eq!(tile_extent(7, 2), 4);
/// assert_eq!(tile_extent(7, 8), 1);
/// ```
pub fn tile_extent(dim: u32, parts: u32) -> u32 {
    assert!(parts > 0, "cannot split into zero parts");
    dim.div_ceil(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_extent_identity_for_1x1() {
        for out in 1..10 {
            assert_eq!(in_extent(out, 1, 1), out);
        }
    }

    #[test]
    fn in_extent_zero() {
        assert_eq!(in_extent(0, 3, 1), 0);
    }

    #[test]
    fn back_extend_stacks_linearly_for_stride_1() {
        // Each 3x3 stride-1 conv adds exactly k-1 = 2.
        let mut e = 0;
        for _ in 0..5 {
            e = back_extend(e, 3, 1);
        }
        assert_eq!(e, 10);
    }

    #[test]
    fn back_extend_scales_with_stride() {
        // A stride-2 layer doubles the downstream extension.
        assert_eq!(back_extend(4, 3, 2), 9);
    }

    #[test]
    fn tile_extent_covers_dim() {
        for dim in 1..40u32 {
            for parts in 1..=dim {
                assert!(tile_extent(dim, parts) * parts >= dim);
            }
        }
    }
}
