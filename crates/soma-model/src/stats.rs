//! Per-layer workload statistics (paper Fig. 3a/3b).

use serde::{Deserialize, Serialize};

use crate::graph::Network;
use crate::layer::LayerId;

/// Operations and layer-by-layer DRAM traffic of one layer, assuming the
/// unfused baseline execution the paper's Fig. 3(a)/(b) depicts: every layer
/// reads its ifmaps and weights from DRAM and writes its ofmap back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStat {
    /// Layer id.
    pub layer: LayerId,
    /// Operation count.
    pub ops: u64,
    /// DRAM bytes moved (ifmaps + weights + ofmap).
    pub dram_bytes: u64,
}

/// Computes [`LayerStat`] for every layer of `net`.
pub fn layer_stats(net: &Network) -> Vec<LayerStat> {
    net.iter()
        .map(|(id, l)| LayerStat {
            layer: id,
            ops: net.layer_ops(id),
            dram_bytes: net.ifmap_bytes(id) + l.weight_bytes + net.ofmap_bytes(id),
        })
        .collect()
}

/// A point of the Fig. 3 scatter plots: per-item DRAM access and operation
/// count, each normalised by the maximum over all items.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Normalised DRAM access in `[0, 1]`.
    pub dram: f64,
    /// Normalised operations in `[0, 1]`.
    pub ops: f64,
}

/// Normalises `(dram, ops)` pairs independently by their maxima, as the
/// Fig. 3 caption prescribes.
pub fn normalize(points: &[(u64, u64)]) -> Vec<ScatterPoint> {
    let max_d = points.iter().map(|p| p.0).max().unwrap_or(1).max(1) as f64;
    let max_o = points.iter().map(|p| p.1).max().unwrap_or(1).max(1) as f64;
    points
        .iter()
        .map(|&(d, o)| ScatterPoint { dram: d as f64 / max_d, ops: o as f64 / max_o })
        .collect()
}

/// Sample standard deviation of a slice (used to quantify how "spread out"
/// the Fig. 3 scatter is before vs after fusion).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn stats_cover_all_layers() {
        let net = zoo::fig2(1);
        let stats = layer_stats(&net);
        assert_eq!(stats.len(), net.len());
        assert!(stats.iter().all(|s| s.ops > 0));
    }

    #[test]
    fn normalize_bounds() {
        let pts = normalize(&[(10, 100), (5, 50), (0, 0)]);
        assert!((pts[0].dram - 1.0).abs() < 1e-12);
        assert!((pts[0].ops - 1.0).abs() < 1e-12);
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.dram)));
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.ops)));
    }

    #[test]
    fn normalize_handles_empty_and_zero() {
        assert!(normalize(&[]).is_empty());
        let pts = normalize(&[(0, 0)]);
        assert_eq!(pts[0].dram, 0.0);
    }

    #[test]
    fn std_dev_basics() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
