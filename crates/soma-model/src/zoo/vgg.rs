//! VGG-16 (Simonyan & Zisserman, 2015): the classic heavy, purely
//! sequential CNN — maximal fmap pressure in the early layers, maximal
//! weight pressure at the end.
//!
//! The original 102 MB `fc6` layer exceeds every evaluated buffer and the
//! notation does not split weights along channels (see the zoo module
//! docs), so the classifier is the modern global-pool variant.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::shape::FmapShape;

/// VGG-16 feature extractor + global-pool classifier.
pub fn vgg16(batch: u32) -> Network {
    let mut b = NetworkBuilder::new("vgg16", 1);
    let x = b.external(FmapShape::new(batch, 3, 224, 224));
    let mut cur = x;
    let stages: [(u32, u32); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (si, &(c, reps)) in stages.iter().enumerate() {
        for r in 0..reps {
            cur = b.conv(format!("conv{}_{}", si + 1, r + 1), &[cur], c, 3, 1);
        }
        cur = b.pool(format!("pool{}", si + 1), cur, 2, 2);
    }
    let gp = b.global_pool("avgpool", cur);
    let fc = b.linear("fc", &[gp], 1000);
    b.mark_output(fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let net = vgg16(1);
        assert!(net.validate().is_ok());
        // 13 convs + 5 pools + gap + fc.
        assert_eq!(net.len(), 13 + 5 + 2);
    }

    #[test]
    fn is_compute_heavy() {
        let net = vgg16(1);
        // ~30 GOPs (15.3 GMACs) for the features at batch 1.
        let gops = net.total_ops() as f64 / 1e9;
        assert!((25.0..36.0).contains(&gops), "{gops} GOPs");
        // Feature weights ~14.7 MB INT8.
        let mb = net.total_weight_bytes() as f64 / 1e6;
        assert!((12.0..18.0).contains(&mb), "{mb} MB");
    }
}
