//! Model zoo: every workload used in the paper's evaluation (Sec. VI-A2).
//!
//! All builders take the batch size; transformer builders additionally take
//! sequence parameters matching the paper (GPT-2-Small with 512 tokens for
//! the edge platform, GPT-2-XL with 1024 for cloud). Weights are INT8
//! (1 byte/element), the paper's default precision.
//!
//! The language-model builders exclude the vocabulary-projection head: its
//! single weight tensor (d x 50257) exceeds every evaluated on-chip buffer
//! and the notation (like the paper's) does not split weights along
//! channels; the transformer stack dominates both compute and traffic.

mod bert;
mod gpt2;
mod inception;
mod mobilenet;
mod randwire;
mod resnet;
mod simple;
mod vgg;

pub use bert::{bert_base, bert_large};
pub use gpt2::{
    gpt2_decode, gpt2_prefill, gpt2_small_decode, gpt2_small_prefill, gpt2_xl_decode,
    gpt2_xl_prefill, transformer_large, Gpt2Config,
};
pub use inception::inception_resnet_v1;
pub use mobilenet::mobilenet_v2;
pub use randwire::randwire;
pub use resnet::{resnet101, resnet50};
pub use simple::{chain, fig2, fig4};
pub use vgg::vgg16;

use crate::graph::Network;

/// Workloads of the paper's Fig. 6 for the **edge** platform (16 TOPS):
/// ResNet-50, ResNet-101, Inception-ResNet-v1, RandWire, GPT-2-Small
/// prefill (512) and decode (513th token).
pub fn edge_suite(batch: u32) -> Vec<Network> {
    vec![
        resnet50(batch),
        resnet101(batch),
        inception_resnet_v1(batch),
        randwire(batch, 0xC0C0),
        gpt2_small_prefill(batch, 512),
        gpt2_small_decode(batch, 512),
    ]
}

/// Workloads of the paper's Fig. 6 for the **cloud** platform (128 TOPS):
/// same CNNs, GPT-2-XL prefill (1024) and decode (1025th token).
pub fn cloud_suite(batch: u32) -> Vec<Network> {
    vec![
        resnet50(batch),
        resnet101(batch),
        inception_resnet_v1(batch),
        randwire(batch, 0xC0C0),
        gpt2_xl_prefill(batch, 1024),
        gpt2_xl_decode(batch, 1024),
    ]
}

/// Every model in the zoo at batch 1 (the paper's suite plus the extended
/// members: MobileNetV2, VGG-16, BERT) — useful for broad smoke tests.
pub fn full_zoo(batch: u32) -> Vec<Network> {
    let mut nets = edge_suite(batch);
    nets.extend([
        gpt2_xl_prefill(batch, 1024),
        gpt2_xl_decode(batch, 1024),
        transformer_large(batch, 512),
        mobilenet_v2(batch),
        vgg16(batch),
        bert_base(batch, 384),
        bert_large(batch, 384),
        fig2(batch),
        fig4(batch),
    ]);
    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zoo_networks_validate() {
        for net in full_zoo(1) {
            assert!(net.validate().is_ok(), "{} failed validation", net.name());
        }
    }

    #[test]
    fn zoo_names_are_unique() {
        let nets = full_zoo(1);
        let mut names: Vec<_> = nets.iter().map(|n| n.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), nets.len());
    }

    #[test]
    fn batch_scales_ops_linearly_for_cnns() {
        let a = resnet50(1).total_ops();
        let b = resnet50(4).total_ops();
        assert_eq!(b, 4 * a);
    }

    #[test]
    fn every_network_has_positive_work_and_output() {
        for net in full_zoo(2) {
            assert!(net.total_ops() > 0, "{}", net.name());
            let outputs = net.iter().filter(|&(id, _)| net.is_output(id)).count();
            assert!(outputs >= 1, "{} has no outputs", net.name());
        }
    }
}
