//! Model zoo: every workload used in the paper's evaluation (Sec. VI-A2).
//!
//! All builders take the batch size; transformer builders additionally take
//! sequence parameters matching the paper (GPT-2-Small with 512 tokens for
//! the edge platform, GPT-2-XL with 1024 for cloud). Weights are INT8
//! (1 byte/element), the paper's default precision.
//!
//! The language-model builders exclude the vocabulary-projection head: its
//! single weight tensor (d x 50257) exceeds every evaluated on-chip buffer
//! and the notation (like the paper's) does not split weights along
//! channels; the transformer stack dominates both compute and traffic.
//!
//! Membership is defined once, in [`entries`]: each [`ZooEntry`] names one
//! canonical network (sequence parameters baked in, batch free) and flags
//! which evaluation suites it belongs to. [`edge_suite`], [`cloud_suite`]
//! and [`full_zoo`] are filters over that table, and [`by_name`] resolves a
//! canonical name to its network — the lookup the scenario registry and the
//! `SOMA_WORKLOAD` knob build on.

mod bert;
mod gpt2;
mod inception;
mod mobilenet;
mod randwire;
mod resnet;
mod simple;
mod vgg;

pub use bert::{bert_base, bert_large};
pub use gpt2::{
    gpt2_decode, gpt2_prefill, gpt2_small_decode, gpt2_small_prefill, gpt2_xl_decode,
    gpt2_xl_prefill, transformer_large, Gpt2Config,
};
pub use inception::inception_resnet_v1;
pub use mobilenet::mobilenet_v2;
pub use randwire::randwire;
pub use resnet::{resnet101, resnet50};
pub use simple::{chain, fig2, fig4};
pub use vgg::vgg16;

use crate::graph::Network;

/// One canonical zoo member: a stable name, suite membership flags, and
/// the constructor (sequence parameters are part of the canonical entry;
/// only the batch size is free).
#[derive(Clone, Copy)]
pub struct ZooEntry {
    /// Canonical name — always equal to `(self.build)(b).name()` for any
    /// batch `b` (checked by a test).
    pub name: &'static str,
    /// Member of the paper's Fig. 6 **edge** (16 TOPS) suite.
    pub edge: bool,
    /// Member of the paper's Fig. 6 **cloud** (128 TOPS) suite.
    pub cloud: bool,
    /// Builds the network at the given batch size.
    pub build: fn(u32) -> Network,
}

/// The canonical membership table, in [`full_zoo`] order. The paper's
/// suites are row filters: `edge` rows are Fig. 6's 16-TOPS workloads,
/// `cloud` rows the 128-TOPS ones, and the remaining rows are the extended
/// members (MobileNetV2, VGG-16, BERT, the Fig. 2/4 demos).
pub fn entries() -> &'static [ZooEntry] {
    const E: &[ZooEntry] = &[
        ZooEntry { name: "resnet50", edge: true, cloud: true, build: resnet50 },
        ZooEntry { name: "resnet101", edge: true, cloud: true, build: resnet101 },
        ZooEntry {
            name: "inception-resnet-v1",
            edge: true,
            cloud: true,
            build: inception_resnet_v1,
        },
        ZooEntry { name: "randwire", edge: true, cloud: true, build: |b| randwire(b, 0xC0C0) },
        ZooEntry {
            name: "gpt2-small-prefill512",
            edge: true,
            cloud: false,
            build: |b| gpt2_small_prefill(b, 512),
        },
        ZooEntry {
            name: "gpt2-small-decode513",
            edge: true,
            cloud: false,
            build: |b| gpt2_small_decode(b, 512),
        },
        ZooEntry {
            name: "gpt2-xl-prefill1024",
            edge: false,
            cloud: true,
            build: |b| gpt2_xl_prefill(b, 1024),
        },
        ZooEntry {
            name: "gpt2-xl-decode1025",
            edge: false,
            cloud: true,
            build: |b| gpt2_xl_decode(b, 1024),
        },
        ZooEntry {
            name: "transformer-large-512",
            edge: false,
            cloud: false,
            build: |b| transformer_large(b, 512),
        },
        ZooEntry { name: "mobilenet-v2", edge: false, cloud: false, build: mobilenet_v2 },
        ZooEntry { name: "vgg16", edge: false, cloud: false, build: vgg16 },
        ZooEntry {
            name: "bert-base-prefill384",
            edge: false,
            cloud: false,
            build: |b| bert_base(b, 384),
        },
        ZooEntry {
            name: "bert-large-prefill384",
            edge: false,
            cloud: false,
            build: |b| bert_large(b, 384),
        },
        ZooEntry { name: "fig2", edge: false, cloud: false, build: fig2 },
        ZooEntry { name: "fig4", edge: false, cloud: false, build: fig4 },
    ];
    E
}

/// Resolves a canonical zoo name (an [`entries`] row) at batch 1.
pub fn by_name(name: &str) -> Option<Network> {
    by_name_at(name, 1)
}

/// Resolves a canonical zoo name at the given batch size.
pub fn by_name_at(name: &str, batch: u32) -> Option<Network> {
    entries().iter().find(|e| e.name == name).map(|e| (e.build)(batch))
}

/// Workloads of the paper's Fig. 6 for the **edge** platform (16 TOPS):
/// ResNet-50, ResNet-101, Inception-ResNet-v1, RandWire, GPT-2-Small
/// prefill (512) and decode (513th token).
pub fn edge_suite(batch: u32) -> Vec<Network> {
    entries().iter().filter(|e| e.edge).map(|e| (e.build)(batch)).collect()
}

/// Workloads of the paper's Fig. 6 for the **cloud** platform (128 TOPS):
/// same CNNs, GPT-2-XL prefill (1024) and decode (1025th token).
pub fn cloud_suite(batch: u32) -> Vec<Network> {
    entries().iter().filter(|e| e.cloud).map(|e| (e.build)(batch)).collect()
}

/// Every model in the zoo (the paper's suite plus the extended members:
/// MobileNetV2, VGG-16, BERT) — useful for broad smoke tests.
pub fn full_zoo(batch: u32) -> Vec<Network> {
    entries().iter().map(|e| (e.build)(batch)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zoo_networks_validate() {
        for net in full_zoo(1) {
            assert!(net.validate().is_ok(), "{} failed validation", net.name());
        }
    }

    #[test]
    fn zoo_names_are_unique() {
        let nets = full_zoo(1);
        let mut names: Vec<_> = nets.iter().map(|n| n.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), nets.len());
    }

    #[test]
    fn entry_names_match_built_networks() {
        for e in entries() {
            for batch in [1, 4] {
                assert_eq!((e.build)(batch).name(), e.name, "entry {} misnamed", e.name);
            }
        }
    }

    #[test]
    fn by_name_resolves_every_entry_and_rejects_unknowns() {
        for e in entries() {
            assert_eq!(by_name(e.name).expect("entry resolves").name(), e.name);
            assert_eq!(by_name_at(e.name, 4).expect("entry resolves").name(), e.name);
        }
        assert!(by_name("no-such-network").is_none());
        // Case matters: canonical names are exact ids.
        assert!(by_name("ResNet50").is_none());
    }

    #[test]
    fn suites_are_entry_table_filters() {
        // The paper's Fig. 6 suites: six workloads each, CNNs shared,
        // LLM scaled to the platform.
        let edge: Vec<_> = edge_suite(1).iter().map(|n| n.name().to_string()).collect();
        assert_eq!(
            edge,
            [
                "resnet50",
                "resnet101",
                "inception-resnet-v1",
                "randwire",
                "gpt2-small-prefill512",
                "gpt2-small-decode513"
            ]
        );
        let cloud: Vec<_> = cloud_suite(1).iter().map(|n| n.name().to_string()).collect();
        assert_eq!(
            cloud,
            [
                "resnet50",
                "resnet101",
                "inception-resnet-v1",
                "randwire",
                "gpt2-xl-prefill1024",
                "gpt2-xl-decode1025"
            ]
        );
        assert_eq!(full_zoo(1).len(), entries().len());
    }

    #[test]
    fn batch_scales_ops_linearly_for_cnns() {
        let a = resnet50(1).total_ops();
        let b = resnet50(4).total_ops();
        assert_eq!(b, 4 * a);
    }

    #[test]
    fn every_network_has_positive_work_and_output() {
        for net in full_zoo(2) {
            assert!(net.total_ops() > 0, "{}", net.name());
            let outputs = net.iter().filter(|&(id, _)| net.is_output(id)).count();
            assert!(outputs >= 1, "{} has no outputs", net.name());
        }
    }
}
