//! MobileNetV2 (Sandler et al., CVPR 2018): the canonical depthwise-
//! separable edge CNN. Not part of the paper's Fig. 6 suite, but a
//! first-class member of this library's zoo — its alternating
//! high-channel 1x1 / low-arithmetic-intensity depthwise pattern stresses
//! the scheduler very differently from ResNet.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{EltOp, Src};
use crate::shape::FmapShape;

/// One inverted-residual block: 1x1 expand (xt), 3x3 depthwise (stride
/// `s`), 1x1 project; residual add when the shape is preserved.
fn inverted_residual(
    b: &mut NetworkBuilder,
    input: Src,
    cin: u32,
    cout: u32,
    t: u32,
    stride: u32,
    tag: &str,
) -> Src {
    let hidden = cin * t;
    let mut x = input;
    if t != 1 {
        x = b.conv(format!("{tag}.expand"), &[x], hidden, 1, 1);
    }
    let dw = b.dwconv(format!("{tag}.dw"), x, 3, stride);
    let proj = b.conv(format!("{tag}.project"), &[dw], cout, 1, 1);
    if stride == 1 && cin == cout {
        b.eltwise(format!("{tag}.add"), EltOp::Add, &[input, proj])
    } else {
        proj
    }
}

/// MobileNetV2 at the given batch size (224x224x3 input, width 1.0).
pub fn mobilenet_v2(batch: u32) -> Network {
    let mut b = NetworkBuilder::new("mobilenet-v2", 1);
    let x = b.external(FmapShape::new(batch, 3, 224, 224));
    let stem = b.conv("stem", &[x], 32, 3, 2); // 112

    // (expansion t, cout, repeats, stride of first repeat)
    let settings: [(u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cur = stem;
    let mut cin = 32;
    for (si, &(t, cout, reps, stride)) in settings.iter().enumerate() {
        for r in 0..reps {
            let s = if r == 0 { stride } else { 1 };
            cur =
                inverted_residual(&mut b, cur, cin, cout, t, s, &format!("ir{}_{}", si + 1, r + 1));
            cin = cout;
        }
    }
    let head = b.conv("head", &[cur], 1280, 1, 1);
    let gp = b.global_pool("avgpool", head);
    let fc = b.linear("fc", &[gp], 1000);
    b.mark_output(fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn builds_and_validates() {
        let net = mobilenet_v2(1);
        assert!(net.validate().is_ok());
        // 17 inverted residual blocks appear as 17 depthwise layers.
        let dw = net.layers().iter().filter(|l| matches!(l.kind, LayerKind::DwConv { .. })).count();
        assert_eq!(dw, 17);
    }

    #[test]
    fn sizes_match_the_literature() {
        let net = mobilenet_v2(1);
        // ~3.4M parameters, ~0.6 GOPs (0.3 GMACs) at 224x224.
        let mb = net.total_weight_bytes() as f64 / 1e6;
        assert!((2.0..5.0).contains(&mb), "weights {mb} MB");
        let gops = net.total_ops() as f64 / 1e9;
        assert!((0.4..1.2).contains(&gops), "{gops} GOPs");
    }

    #[test]
    fn depthwise_has_per_channel_weights() {
        let net = mobilenet_v2(1);
        let (id, dw) =
            net.iter().find(|(_, l)| matches!(l.kind, LayerKind::DwConv { .. })).unwrap();
        let cin = net.src_shape(dw.inputs[0]).c;
        assert_eq!(dw.weight_bytes, u64::from(cin) * 9);
        // Depthwise ops = 2 * elems * k^2 (no channel reduction).
        assert_eq!(net.layer_ops(id), 2 * dw.ofmap.elems() * 9);
    }
}
