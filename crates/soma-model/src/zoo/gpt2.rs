//! GPT-2 (Radford et al., 2019) prefill and decode graphs, plus the
//! Transformer-Large encoder used by the paper's Fig. 3(b).
//!
//! Modelling notes (see DESIGN.md):
//!
//! * Transformer activations map `seq -> h`, `hidden -> c` so the
//!   scheduler's batch/h tiling tiles the token dimension.
//! * Attention score maps are modelled head-aggregated (`seq x seq`); the
//!   operation count is exact (`2 n s^2 d` per matmul pair) since the
//!   reduction uses the full hidden dimension.
//! * Decode-phase KV caches are DRAM-resident read-only operands attached
//!   to the attention matmuls (`weight_bytes`), which is exactly how the
//!   schedule treats them: whole-tensor loads that scale with batch and
//!   context length. New K/V token vectors are network outputs (cache
//!   append).
//! * The vocabulary head is excluded (single weight tensor larger than any
//!   evaluated buffer; see `zoo` module docs).

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{EltOp, Src, VecOp};
use crate::shape::FmapShape;

/// Size/topology parameters of a GPT-2-family model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gpt2Config {
    /// Model name prefix.
    pub name: &'static str,
    /// Hidden dimension.
    pub d: u32,
    /// Number of transformer blocks.
    pub blocks: u32,
    /// Attention heads (informational; ops use `d` directly).
    pub heads: u32,
}

/// GPT-2-Small: 12 blocks, d=768.
pub const GPT2_SMALL: Gpt2Config = Gpt2Config { name: "gpt2-small", d: 768, blocks: 12, heads: 12 };
/// GPT-2-XL: 48 blocks, d=1600.
pub const GPT2_XL: Gpt2Config = Gpt2Config { name: "gpt2-xl", d: 1600, blocks: 48, heads: 25 };

/// One prefill transformer block; returns the residual-stream output.
fn prefill_block(b: &mut NetworkBuilder, x: Src, d: u32, seq: u32, tag: &str) -> Src {
    let ln1 = b.vector(format!("{tag}.ln1"), VecOp::LayerNorm, x);
    let q = b.linear(format!("{tag}.q"), &[ln1], d);
    let k = b.linear(format!("{tag}.k"), &[ln1], d);
    let v = b.linear(format!("{tag}.v"), &[ln1], d);
    let scores = b.matmul(format!("{tag}.qk"), q, k, seq, 0);
    let soft = b.vector(format!("{tag}.softmax"), VecOp::Softmax, scores);
    let attn = b.matmul(format!("{tag}.pv"), soft, v, d, 0);
    let proj = b.linear(format!("{tag}.proj"), &[attn], d);
    let res1 = b.eltwise(format!("{tag}.add1"), EltOp::Add, &[x, proj]);
    let ln2 = b.vector(format!("{tag}.ln2"), VecOp::LayerNorm, res1);
    let fc1 = b.linear(format!("{tag}.fc1"), &[ln2], 4 * d);
    let gelu = b.vector(format!("{tag}.gelu"), VecOp::Gelu, fc1);
    let fc2 = b.linear(format!("{tag}.fc2"), &[gelu], d);
    b.eltwise(format!("{tag}.add2"), EltOp::Add, &[res1, fc2])
}

/// One decode transformer block for a single new token with `past` cached
/// tokens; K/V caches are DRAM operands of the matmuls, and the new K/V
/// vectors are network outputs.
fn decode_block(
    b: &mut NetworkBuilder,
    x: Src,
    d: u32,
    past: u32,
    batch: u32,
    prec: u32,
    tag: &str,
) -> Src {
    let kv_cache_bytes = u64::from(batch) * u64::from(past) * u64::from(d) * u64::from(prec);
    let ln1 = b.vector(format!("{tag}.ln1"), VecOp::LayerNorm, x);
    let q = b.linear(format!("{tag}.q"), &[ln1], d);
    let k = b.linear(format!("{tag}.k"), &[ln1], d);
    let v = b.linear(format!("{tag}.v"), &[ln1], d);
    b.mark_output(k); // KV-cache append
    b.mark_output(v);
    let scores = b.matmul(format!("{tag}.qk"), q, k, past + 1, kv_cache_bytes);
    let soft = b.vector(format!("{tag}.softmax"), VecOp::Softmax, scores);
    let attn = b.matmul(format!("{tag}.pv"), soft, v, d, kv_cache_bytes);
    let proj = b.linear(format!("{tag}.proj"), &[attn], d);
    let res1 = b.eltwise(format!("{tag}.add1"), EltOp::Add, &[x, proj]);
    let ln2 = b.vector(format!("{tag}.ln2"), VecOp::LayerNorm, res1);
    let fc1 = b.linear(format!("{tag}.fc1"), &[ln2], 4 * d);
    let gelu = b.vector(format!("{tag}.gelu"), VecOp::Gelu, fc1);
    let fc2 = b.linear(format!("{tag}.fc2"), &[gelu], d);
    b.eltwise(format!("{tag}.add2"), EltOp::Add, &[res1, fc2])
}

/// GPT-2 prefill over `seq` tokens.
pub fn gpt2_prefill(cfg: Gpt2Config, batch: u32, seq: u32) -> Network {
    let mut b = NetworkBuilder::new(format!("{}-prefill{}", cfg.name, seq), 1);
    let x = b.external(FmapShape::tokens(batch, cfg.d, seq));
    let mut cur = x;
    for i in 0..cfg.blocks {
        cur = prefill_block(&mut b, cur, cfg.d, seq, &format!("blk{i}"));
    }
    b.mark_output(cur);
    b.finish()
}

/// GPT-2 decode of the `(past + 1)`-th token.
pub fn gpt2_decode(cfg: Gpt2Config, batch: u32, past: u32) -> Network {
    let mut b = NetworkBuilder::new(format!("{}-decode{}", cfg.name, past + 1), 1);
    let prec = 1;
    let x = b.external(FmapShape::tokens(batch, cfg.d, 1));
    let mut cur = x;
    for i in 0..cfg.blocks {
        cur = decode_block(&mut b, cur, cfg.d, past, batch, prec, &format!("blk{i}"));
    }
    b.mark_output(cur);
    b.finish()
}

/// GPT-2-Small prefill (edge workload: token length 512 in the paper).
pub fn gpt2_small_prefill(batch: u32, seq: u32) -> Network {
    gpt2_prefill(GPT2_SMALL, batch, seq)
}

/// GPT-2-Small decode of the `(past + 1)`-th token.
pub fn gpt2_small_decode(batch: u32, past: u32) -> Network {
    gpt2_decode(GPT2_SMALL, batch, past)
}

/// GPT-2-XL prefill (cloud workload: token length 1024 in the paper).
pub fn gpt2_xl_prefill(batch: u32, seq: u32) -> Network {
    gpt2_prefill(GPT2_XL, batch, seq)
}

/// GPT-2-XL decode of the `(past + 1)`-th token.
pub fn gpt2_xl_decode(batch: u32, past: u32) -> Network {
    gpt2_decode(GPT2_XL, batch, past)
}

/// Transformer-Large encoder (Vaswani et al.: 6 blocks, d=1024, 16 heads),
/// used for the paper's Fig. 3(b)/(d) scatter analysis.
pub fn transformer_large(batch: u32, seq: u32) -> Network {
    let cfg = Gpt2Config { name: "transformer-large", d: 1024, blocks: 6, heads: 16 };
    let mut b = NetworkBuilder::new(format!("{}-{}", cfg.name, seq), 1);
    let x = b.external(FmapShape::tokens(batch, cfg.d, seq));
    let mut cur = x;
    for i in 0..cfg.blocks {
        cur = prefill_block(&mut b, cur, cfg.d, seq, &format!("blk{i}"));
    }
    b.mark_output(cur);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_sizes() {
        let net = gpt2_small_prefill(1, 512);
        assert!(net.validate().is_ok());
        assert_eq!(net.len(), 12 * 14);
        // ~85M transformer parameters (12 d^2 per block).
        let mb = net.total_weight_bytes() as f64 / 1e6;
        assert!((75.0..95.0).contains(&mb), "weights {mb} MB");
        // Prefill ops roughly 2 * params * seq.
        let expected = 2.0 * mb * 1e6 * 512.0;
        let ops = net.total_ops() as f64;
        assert!(ops > 0.8 * expected && ops < 1.6 * expected, "ops {ops}");
    }

    #[test]
    fn decode_kv_cache_scales_with_batch_and_context() {
        let a = gpt2_small_decode(1, 512);
        let b = gpt2_small_decode(4, 512);
        let kv_a: u64 = a
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, crate::LayerKind::Matmul))
            .map(|l| l.weight_bytes)
            .sum();
        let kv_b: u64 = b
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, crate::LayerKind::Matmul))
            .map(|l| l.weight_bytes)
            .sum();
        assert_eq!(kv_b, 4 * kv_a);
        // KV per block: 2 * past * d = 2*512*768.
        assert_eq!(kv_a, 12 * 2 * 512 * 768);
    }

    #[test]
    fn decode_is_memory_dominated() {
        let net = gpt2_small_decode(1, 512);
        // Compute density (ops/byte of weights+KV) must be tiny (~2).
        let density = net.total_ops() as f64 / net.total_weight_bytes() as f64;
        assert!(density < 8.0, "density {density}");
    }

    #[test]
    fn decode_marks_kv_outputs() {
        let net = gpt2_small_decode(1, 16);
        let n_outputs = net.iter().filter(|&(id, _)| net.is_output(id)).count();
        // 2 per block (k, v) + final residual.
        assert_eq!(n_outputs, 12 * 2 + 1);
    }

    #[test]
    fn xl_is_much_bigger() {
        let s = gpt2_small_prefill(1, 64);
        let x = gpt2_xl_prefill(1, 64);
        assert!(x.total_weight_bytes() > 15 * s.total_weight_bytes());
    }

    #[test]
    fn transformer_large_builds() {
        let net = transformer_large(1, 512);
        assert!(net.validate().is_ok());
        assert_eq!(net.len(), 6 * 14);
    }
}
