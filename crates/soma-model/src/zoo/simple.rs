//! Small demonstration networks mirroring the paper's running examples.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::Src;
use crate::shape::FmapShape;

/// The three-layer network of the paper's Fig. 2: Conv A -> Conv B ->
/// Conv C, all spatial, suitable for demonstrating fused tiling with halo
/// overlap and double-buffer stalls.
pub fn fig2(batch: u32) -> Network {
    let mut b = NetworkBuilder::new("fig2", 1);
    let x = b.external(FmapShape::new(batch, 32, 56, 56));
    let a = b.conv("A", &[x], 64, 3, 1);
    let bl = b.conv("B", &[a], 64, 3, 1);
    let c = b.conv("C", &[bl], 128, 3, 1);
    b.mark_output(c);
    b.finish()
}

/// The five-layer network of the paper's Fig. 4 (layers A..E with a
/// pooling layer C and a diamond A->B->C->{E,D}, E->D).
pub fn fig4(batch: u32) -> Network {
    let mut b = NetworkBuilder::new("fig4", 1);
    let x = b.external(FmapShape::new(batch, 16, 28, 28));
    let a = b.conv("A", &[x], 32, 3, 1);
    let bl = b.conv("B", &[a], 32, 3, 1);
    let c = b.pool("C", bl, 2, 2); // pooling: no weights, like the paper
    let e = b.conv("E", &[c], 64, 3, 1);
    let d = b.conv("D", &[c, e], 64, 3, 1);
    b.mark_output(d);
    b.finish()
}

/// A linear chain of `depth` 3x3 convolutions at constant `channels` over a
/// `hw x hw` map — handy for tests and property-based generators.
pub fn chain(batch: u32, channels: u32, hw: u32, depth: u32) -> Network {
    assert!(depth > 0, "chain needs at least one layer");
    let mut b = NetworkBuilder::new(format!("chain{depth}"), 1);
    let x = b.external(FmapShape::new(batch, channels, hw, hw));
    let mut cur: Src = x;
    for i in 0..depth {
        cur = b.conv(format!("c{i}"), &[cur], channels, 3, 1);
    }
    b.mark_output(cur);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_is_three_convs() {
        let n = fig2(1);
        assert_eq!(n.len(), 3);
        assert!(n.validate().is_ok());
        assert!(n.layers().iter().all(|l| l.inputs.len() <= 2));
    }

    #[test]
    fn fig4_topology() {
        let n = fig4(1);
        assert_eq!(n.len(), 5);
        // C (pool) has no weights.
        assert_eq!(n.layer(crate::LayerId(2)).weight_bytes, 0);
        // D consumes both C and E.
        assert_eq!(n.layer(crate::LayerId(4)).inputs.len(), 2);
    }

    #[test]
    fn chain_depth() {
        let n = chain(1, 8, 16, 5);
        assert_eq!(n.len(), 5);
        assert!(n.validate().is_ok());
    }
}
