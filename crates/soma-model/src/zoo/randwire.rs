//! RandWire (Xie et al., ICCV 2019): randomly-wired CNN with Watts-Strogatz
//! small-world stage graphs, deterministically seeded.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{EltOp, Src};
use crate::shape::FmapShape;

/// Generates a Watts-Strogatz ring graph with `n` nodes, each connected to
/// `k` neighbours, rewired with probability `p`, then oriented from lower to
/// higher node index so the result is a DAG.
fn ws_dag(n: usize, k: usize, p: f64, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); n];
    for i in 0..n {
        for j in 1..=(k / 2) {
            let mut t = (i + j) % n;
            if rng.gen_bool(p) {
                // Rewire to a uniformly random other node.
                t = rng.gen_range(0..n);
                if t == i {
                    t = (t + 1) % n;
                }
            }
            let (lo, hi) = if i < t { (i, t) } else { (t, i) };
            if lo != hi && !preds[hi].contains(&lo) {
                preds[hi].push(lo);
            }
        }
    }
    preds
}

/// One RandWire stage: a WS DAG of conv nodes at fixed channel width.
/// Nodes with several predecessors aggregate by element-wise addition
/// before their conv (the paper's weighted-sum aggregation).
fn stage(
    b: &mut NetworkBuilder,
    input: Src,
    channels: u32,
    nodes: usize,
    rng: &mut StdRng,
    tag: &str,
) -> Src {
    let preds = ws_dag(nodes, 4, 0.75, rng);
    let mut outs: Vec<Src> = Vec::with_capacity(nodes);
    for (i, pred) in preds.iter().enumerate() {
        let srcs: Vec<Src> =
            if pred.is_empty() { vec![input] } else { pred.iter().map(|&p| outs[p]).collect() };
        let agg = if srcs.len() >= 2 {
            b.eltwise(format!("{tag}.n{i}.agg"), EltOp::Add, &srcs)
        } else {
            srcs[0]
        };
        outs.push(b.conv(format!("{tag}.n{i}.conv"), &[agg], channels, 3, 1));
    }
    // Output node: average the sinks (nodes without successors).
    let mut has_succ = vec![false; nodes];
    for pred in &preds {
        for &p in pred {
            has_succ[p] = true;
        }
    }
    let sinks: Vec<Src> = (0..nodes).filter(|&i| !has_succ[i]).map(|i| outs[i]).collect();
    if sinks.len() >= 2 {
        b.eltwise(format!("{tag}.out"), EltOp::Add, &sinks)
    } else {
        sinks[0]
    }
}

/// RandWire-CNN at the given batch size, with a deterministic wiring `seed`.
///
/// Three WS(8, 4, 0.75) stages at 64/128/256 channels with stride-2 entry
/// convs, a 1x1 head to 1280 channels, global pool, and a 1000-way
/// classifier — the "small regime" configuration scaled to our template.
pub fn randwire(batch: u32, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new("randwire", 1);
    let x = b.external(FmapShape::new(batch, 3, 224, 224));
    let stem1 = b.conv("stem.c1", &[x], 32, 3, 2); // 112
    let stem2 = b.conv("stem.c2", &[stem1], 64, 3, 2); // 56
    let mut cur = stem2;
    for (i, &c) in [64u32, 128, 256].iter().enumerate() {
        let down = b.conv(format!("s{}.down", i + 1), &[cur], c, 3, 2);
        cur = stage(&mut b, down, c, 8, &mut rng, &format!("s{}", i + 1));
    }
    let head = b.conv("head", &[cur], 1280, 1, 1);
    let gp = b.global_pool("avgpool", head);
    let fc = b.linear("fc", &[gp], 1000);
    b.mark_output(fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = randwire(1, 42);
        let b = randwire(1, 42);
        assert_eq!(a.len(), b.len());
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn different_seed_changes_wiring() {
        let a = randwire(1, 1);
        let b = randwire(1, 2);
        // Layer count may differ (different aggregation nodes).
        let same = a.len() == b.len() && a.layers().iter().zip(b.layers()).all(|(x, y)| x == y);
        assert!(!same, "seeds 1 and 2 produced identical networks");
    }

    #[test]
    fn validates_and_has_irregular_structure() {
        let net = randwire(1, 0xC0C0);
        assert!(net.validate().is_ok());
        assert!(net.len() > 30);
        // Irregular: at least one aggregation with >= 2 inputs exists.
        assert!(net
            .layers()
            .iter()
            .any(|l| matches!(l.kind, crate::LayerKind::Eltwise(_)) && l.inputs.len() >= 2));
    }
}
