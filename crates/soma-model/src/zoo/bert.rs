//! BERT-Base encoder (Devlin et al., 2019): bidirectional transformer
//! encoder, cited by the paper's introduction as a driver of model growth.
//! Structurally a prefill-only transformer stack.

use crate::graph::Network;
use crate::zoo::gpt2::{gpt2_prefill, Gpt2Config};

/// BERT-Base: 12 encoder blocks, d=768, 12 heads, over `seq` tokens.
pub fn bert_base(batch: u32, seq: u32) -> Network {
    let cfg = Gpt2Config { name: "bert-base", d: 768, blocks: 12, heads: 12 };
    gpt2_prefill(cfg, batch, seq)
}

/// BERT-Large: 24 encoder blocks, d=1024, 16 heads.
pub fn bert_large(batch: u32, seq: u32) -> Network {
    let cfg = Gpt2Config { name: "bert-large", d: 1024, blocks: 24, heads: 16 };
    gpt2_prefill(cfg, batch, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sizes() {
        let net = bert_base(1, 384);
        assert!(net.validate().is_ok());
        assert_eq!(net.len(), 12 * 14);
        // ~85M encoder parameters.
        let mb = net.total_weight_bytes() as f64 / 1e6;
        assert!((75.0..95.0).contains(&mb), "{mb} MB");
    }

    #[test]
    fn large_is_larger() {
        let b = bert_base(1, 128);
        let l = bert_large(1, 128);
        assert!(l.total_weight_bytes() > 3 * b.total_weight_bytes());
        assert!(l.len() > b.len());
    }
}
