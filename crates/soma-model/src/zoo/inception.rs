//! Inception-ResNet-v1 (Szegedy et al., AAAI 2017) — the paper's "wider,
//! more complex structure" CNN.

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{EltOp, Src};
use crate::shape::FmapShape;

/// Inception-ResNet-A block (operating at 35x35, 256 channels).
fn block35(b: &mut NetworkBuilder, x: Src, tag: &str) -> Src {
    let b0 = b.conv(format!("{tag}.b0"), &[x], 32, 1, 1);
    let b1a = b.conv(format!("{tag}.b1a"), &[x], 32, 1, 1);
    let b1b = b.conv(format!("{tag}.b1b"), &[b1a], 32, 3, 1);
    let b2a = b.conv(format!("{tag}.b2a"), &[x], 32, 1, 1);
    let b2b = b.conv(format!("{tag}.b2b"), &[b2a], 32, 3, 1);
    let b2c = b.conv(format!("{tag}.b2c"), &[b2b], 32, 3, 1);
    // Concat branches (implicit channel concat on the 1x1 "up" conv).
    let up = b.conv(format!("{tag}.up"), &[b0, b1b, b2c], 256, 1, 1);
    b.eltwise(format!("{tag}.add"), EltOp::Add, &[x, up])
}

/// Inception-ResNet-B block (17x17, 896 channels) with asymmetric 1x7/7x1.
fn block17(b: &mut NetworkBuilder, x: Src, tag: &str) -> Src {
    let b0 = b.conv(format!("{tag}.b0"), &[x], 128, 1, 1);
    let b1a = b.conv(format!("{tag}.b1a"), &[x], 128, 1, 1);
    let b1b = b.conv_rect(format!("{tag}.b1b"), &[b1a], 128, 1, 7, 1);
    let b1c = b.conv_rect(format!("{tag}.b1c"), &[b1b], 128, 7, 1, 1);
    let up = b.conv(format!("{tag}.up"), &[b0, b1c], 896, 1, 1);
    b.eltwise(format!("{tag}.add"), EltOp::Add, &[x, up])
}

/// Inception-ResNet-C block (8x8, 1792 channels) with asymmetric 1x3/3x1.
fn block8(b: &mut NetworkBuilder, x: Src, tag: &str) -> Src {
    let b0 = b.conv(format!("{tag}.b0"), &[x], 192, 1, 1);
    let b1a = b.conv(format!("{tag}.b1a"), &[x], 192, 1, 1);
    let b1b = b.conv_rect(format!("{tag}.b1b"), &[b1a], 192, 1, 3, 1);
    let b1c = b.conv_rect(format!("{tag}.b1c"), &[b1b], 192, 3, 1, 1);
    let up = b.conv(format!("{tag}.up"), &[b0, b1c], 1792, 1, 1);
    b.eltwise(format!("{tag}.add"), EltOp::Add, &[x, up])
}

/// Inception-ResNet-v1 at the given batch size (input 149x149 after the
/// usual 160/149 crop conventions; we use 149 directly).
pub fn inception_resnet_v1(batch: u32) -> Network {
    let mut b = NetworkBuilder::new("inception-resnet-v1", 1);
    let x = b.external(FmapShape::new(batch, 3, 149, 149));

    // Stem.
    let s1 = b.conv("stem.c1", &[x], 32, 3, 2); // 75
    let s2 = b.conv("stem.c2", &[s1], 32, 3, 1);
    let s3 = b.conv("stem.c3", &[s2], 64, 3, 1);
    let s4 = b.pool("stem.pool", s3, 3, 2); // 38
    let s5 = b.conv("stem.c4", &[s4], 80, 1, 1);
    let s6 = b.conv("stem.c5", &[s5], 192, 3, 1);
    let s7 = b.conv("stem.c6", &[s6], 256, 3, 2); // 19

    // 5 x Inception-ResNet-A.
    let mut cur = s7;
    for i in 0..5 {
        cur = block35(&mut b, cur, &format!("a{}", i + 1));
    }

    // Reduction-A: concat(3x3/2 conv 384; 1x1->3x3->3x3/2 256; maxpool/2)
    let ra0 = b.conv("redA.b0", &[cur], 384, 3, 2); // 10
    let ra1a = b.conv("redA.b1a", &[cur], 192, 1, 1);
    let ra1b = b.conv("redA.b1b", &[ra1a], 192, 3, 1);
    let ra1c = b.conv("redA.b1c", &[ra1b], 256, 3, 2);
    let rap = b.pool("redA.pool", cur, 3, 2);
    // 384 + 256 + 256 = 896 channels; fold the concat into the next 1x1.
    let mut cur = b.conv("redA.mix", &[ra0, ra1c, rap], 896, 1, 1);

    // 10 x Inception-ResNet-B.
    for i in 0..10 {
        cur = block17(&mut b, cur, &format!("b{}", i + 1));
    }

    // Reduction-B.
    let rb0a = b.conv("redB.b0a", &[cur], 256, 1, 1);
    let rb0b = b.conv("redB.b0b", &[rb0a], 384, 3, 2); // 5
    let rb1a = b.conv("redB.b1a", &[cur], 256, 1, 1);
    let rb1b = b.conv("redB.b1b", &[rb1a], 256, 3, 2);
    let rb2a = b.conv("redB.b2a", &[cur], 256, 1, 1);
    let rb2b = b.conv("redB.b2b", &[rb2a], 256, 3, 1);
    let rb2c = b.conv("redB.b2c", &[rb2b], 256, 3, 2);
    let rbp = b.pool("redB.pool", cur, 3, 2);
    let mut cur = b.conv("redB.mix", &[rb0b, rb1b, rb2c, rbp], 1792, 1, 1);

    // 5 x Inception-ResNet-C.
    for i in 0..5 {
        cur = block8(&mut b, cur, &format!("c{}", i + 1));
    }

    let gp = b.global_pool("avgpool", cur);
    let fc = b.linear("embed", &[gp], 512);
    b.mark_output(fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let net = inception_resnet_v1(1);
        assert!(net.validate().is_ok());
        // stem 7 + 5*8 + redA 6 + 10*6 + redB 9 + 5*6 + 2
        assert_eq!(net.len(), 7 + 40 + 6 + 60 + 9 + 30 + 2);
    }

    #[test]
    fn sizes_are_plausible() {
        let net = inception_resnet_v1(1);
        let mb = net.total_weight_bytes() as f64 / (1 << 20) as f64;
        assert!((15.0..40.0).contains(&mb), "weights {mb} MB");
        let gops = net.total_ops() as f64 / 1e9;
        assert!((2.0..12.0).contains(&gops), "ops {gops} GOPs");
    }

    #[test]
    fn has_wide_fanout() {
        let net = inception_resnet_v1(1);
        // Some layer must feed at least 3 consumers (inception branching).
        let max_fanout = net.iter().map(|(id, _)| net.consumers(id).len()).max().unwrap();
        assert!(max_fanout >= 3, "max fanout {max_fanout}");
    }
}
