//! ResNet-50 and ResNet-101 (He et al., CVPR 2016).

use crate::builder::NetworkBuilder;
use crate::graph::Network;
use crate::layer::{EltOp, Src};
use crate::shape::FmapShape;

/// One bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand, plus the
/// projection shortcut when shape changes.
fn bottleneck(
    b: &mut NetworkBuilder,
    input: Src,
    cmid: u32,
    cout: u32,
    stride: u32,
    project: bool,
    tag: &str,
) -> Src {
    let c1 = b.conv(format!("{tag}.conv1"), &[input], cmid, 1, 1);
    let c2 = b.conv(format!("{tag}.conv2"), &[c1], cmid, 3, stride);
    let c3 = b.conv(format!("{tag}.conv3"), &[c2], cout, 1, 1);
    let shortcut =
        if project { b.conv(format!("{tag}.proj"), &[input], cout, 1, stride) } else { input };
    b.eltwise(format!("{tag}.add"), EltOp::Add, &[c3, shortcut])
}

fn resnet(name: &str, batch: u32, blocks: [u32; 4]) -> Network {
    let mut b = NetworkBuilder::new(name, 1);
    let x = b.external(FmapShape::new(batch, 3, 224, 224));
    let stem = b.conv("conv1", &[x], 64, 7, 2);
    let mut cur = b.pool("pool1", stem, 3, 2);
    let cmids = [64u32, 128, 256, 512];
    let couts = [256u32, 512, 1024, 2048];
    for (stage, &n_blocks) in blocks.iter().enumerate() {
        for blk in 0..n_blocks {
            let first = blk == 0;
            // Stage 1 keeps stride 1 (pool already downsampled); later
            // stages downsample in their first block.
            let stride = if first && stage > 0 { 2 } else { 1 };
            cur = bottleneck(
                &mut b,
                cur,
                cmids[stage],
                couts[stage],
                stride,
                first,
                &format!("s{}b{}", stage + 1, blk + 1),
            );
        }
    }
    let gp = b.global_pool("avgpool", cur);
    let fc = b.linear("fc", &[gp], 1000);
    b.mark_output(fc);
    b.finish()
}

/// ResNet-50 at the given batch size (input 224x224x3, INT8).
pub fn resnet50(batch: u32) -> Network {
    resnet("resnet50", batch, [3, 4, 6, 3])
}

/// ResNet-101 at the given batch size.
pub fn resnet101(batch: u32) -> Network {
    resnet("resnet101", batch, [3, 4, 23, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_structure() {
        let net = resnet50(1);
        assert!(net.validate().is_ok());
        // 2 stem + 16 blocks x (3..4 convs + add) + pool + fc
        // 16 blocks: 4 with projection (5 layers), 12 without (4 layers).
        assert_eq!(net.len(), 2 + 4 * 5 + 12 * 4 + 2);
        // ~25.5M parameters -> ~25.5MB INT8 (fc included, no bn folding).
        let mb = net.total_weight_bytes() as f64 / (1 << 20) as f64;
        assert!((20.0..30.0).contains(&mb), "weights {mb} MB");
        // ~8.2 GOPs (4.1 GMACs) at batch 1.
        let gops = net.total_ops() as f64 / 1e9;
        assert!((7.0..9.5).contains(&gops), "ops {gops} GOPs");
    }

    #[test]
    fn resnet101_is_deeper() {
        let a = resnet50(1);
        let b = resnet101(1);
        assert!(b.len() > a.len());
        assert!(b.total_ops() > a.total_ops());
        let gops = b.total_ops() as f64 / 1e9;
        assert!((14.0..18.0).contains(&gops), "ops {gops} GOPs");
    }

    #[test]
    fn final_shape_is_1000_logits() {
        let net = resnet50(2);
        let last = net.layer(crate::LayerId(net.len() as u32 - 1));
        assert_eq!(last.ofmap, FmapShape::vector(2, 1000));
    }
}
