//! DNN workload graph substrate for the SoMa DRAM-communication scheduler.
//!
//! This crate provides everything the scheduler needs to know about a
//! workload, built from scratch:
//!
//! * [`FmapShape`] — NCHW feature-map shapes (transformers map `seq -> h`,
//!   `hidden -> c`, `w = 1`).
//! * [`Layer`] / [`LayerKind`] — the operator vocabulary of the accelerator
//!   template from the paper (Conv/GEMM on the PE array, pooling and
//!   element-wise work on the vector unit).
//! * [`Network`] — a validated DAG of layers in topological order, plus
//!   derived queries (consumers, shapes, operation counts, DRAM footprints).
//! * [`halo`] — receptive-field math used for fused-tile (halo) sizing.
//! * [`zoo`] — builders for every workload in the paper's evaluation:
//!   ResNet-50/101, Inception-ResNet-v1, RandWire, GPT-2 (prefill and
//!   decode, small and XL) and Transformer-Large, plus small demo networks
//!   mirroring the paper's Fig. 2 and Fig. 4 examples.
//! * [`stats`] — per-layer operation/DRAM-access statistics (paper Fig. 3).
//!
//! # Example
//!
//! ```
//! use soma_model::zoo;
//!
//! let net = zoo::resnet50(1);
//! assert!(net.validate().is_ok());
//! assert!(net.total_ops() > 7_000_000_000); // ~8.2 GOPs at batch 1
//! ```

pub mod builder;
pub mod graph;
pub mod halo;
pub mod layer;
pub mod shape;
pub mod stats;
pub mod zoo;

pub use builder::NetworkBuilder;
pub use graph::{Network, NetworkError};
pub use layer::{EltOp, Layer, LayerId, LayerKind, Src, VecOp};
pub use shape::FmapShape;
