//! The network DAG and derived queries.

use serde::{Deserialize, Serialize};

use crate::layer::{ExtId, Layer, LayerId, LayerKind, Src, VecOp};
use crate::shape::FmapShape;

/// Errors produced by [`Network::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// An input refers to a layer at or after the consumer (not topological).
    ForwardReference { layer: LayerId, input: LayerId },
    /// An input refers to a non-existent layer or external.
    DanglingInput { layer: LayerId },
    /// A layer has the wrong number of inputs for its kind.
    BadArity { layer: LayerId, expected: &'static str, got: usize },
    /// A declared output id does not exist.
    BadOutput { output: LayerId },
    /// A batch dimension differs between a layer and its input.
    BatchMismatch { layer: LayerId },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::ForwardReference { layer, input } => {
                write!(f, "layer {layer} consumes later layer {input}")
            }
            NetworkError::DanglingInput { layer } => {
                write!(f, "layer {layer} has a dangling input reference")
            }
            NetworkError::BadArity { layer, expected, got } => {
                write!(f, "layer {layer} expects {expected} inputs, got {got}")
            }
            NetworkError::BadOutput { output } => {
                write!(f, "declared output {output} does not exist")
            }
            NetworkError::BatchMismatch { layer } => {
                write!(f, "layer {layer} batch differs from its input")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated DNN workload: a DAG of [`Layer`]s stored in topological order.
///
/// Construct networks with [`crate::NetworkBuilder`] or pick one from
/// [`crate::zoo`].
///
/// ```
/// use soma_model::zoo;
///
/// let net = zoo::fig2(1);
/// assert_eq!(net.len(), 3);
/// assert_eq!(net.consumers(soma_model::LayerId(0)), &[soma_model::LayerId(1)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    pub(crate) name: String,
    /// Bytes per element (1 = INT8, the paper's default precision).
    pub(crate) precision: u32,
    pub(crate) externals: Vec<FmapShape>,
    pub(crate) layers: Vec<Layer>,
    /// Layers whose ofmaps always leave to DRAM (network outputs). Layers
    /// without consumers are outputs implicitly.
    pub(crate) outputs: Vec<LayerId>,
    /// Consumer adjacency, derived at build time.
    pub(crate) consumers: Vec<Vec<LayerId>>,
}

impl Network {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes per element.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// All layers, in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.index()]
    }

    /// Iterator over `(LayerId, &Layer)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, &Layer)> {
        self.layers.iter().enumerate().map(|(i, l)| (LayerId(i as u32), l))
    }

    /// Shapes of the network external inputs.
    pub fn externals(&self) -> &[FmapShape] {
        &self.externals
    }

    /// Layers that consume the ofmap of `id`.
    pub fn consumers(&self, id: LayerId) -> &[LayerId] {
        &self.consumers[id.index()]
    }

    /// The *declared* network outputs, in declaration order (layers
    /// without consumers are additionally outputs implicitly — see
    /// [`is_output`](Self::is_output)).
    pub fn outputs(&self) -> &[LayerId] {
        &self.outputs
    }

    /// Whether `id` is a network output (declared, or has no consumers).
    pub fn is_output(&self, id: LayerId) -> bool {
        self.outputs.contains(&id) || self.consumers[id.index()].is_empty()
    }

    /// Shape of an input source.
    pub fn src_shape(&self, src: Src) -> FmapShape {
        match src {
            Src::Layer(id) => self.layers[id.index()].ofmap,
            Src::External(ExtId(i)) => self.externals[i as usize],
        }
    }

    /// Total input channels of a layer (multi-input layers concatenate).
    pub fn in_channels(&self, id: LayerId) -> u64 {
        self.layers[id.index()].inputs.iter().map(|&s| u64::from(self.src_shape(s).c)).sum()
    }

    /// Operation count of a layer (multiply-accumulate counted as 2 ops,
    /// vector-unit element operations counted per element touched).
    pub fn layer_ops(&self, id: LayerId) -> u64 {
        let l = &self.layers[id.index()];
        let of = l.ofmap;
        match l.kind {
            LayerKind::Conv { kh, kw, .. } => {
                2 * of.elems() * self.in_channels(id) * u64::from(kh) * u64::from(kw)
            }
            LayerKind::DwConv { k, .. } => 2 * of.elems() * u64::from(k) * u64::from(k),
            LayerKind::Linear => 2 * of.elems() * self.in_channels(id),
            LayerKind::Matmul => {
                // reduction dimension = channel count of the streamed input
                let red = u64::from(self.src_shape(l.inputs[0]).c);
                2 * of.elems() * red
            }
            LayerKind::Pool { k, .. } => of.elems() * u64::from(k) * u64::from(k),
            LayerKind::GlobalPool => self.src_shape(l.inputs[0]).elems(),
            LayerKind::Eltwise(_) => of.elems() * l.inputs.len() as u64,
            LayerKind::Vector(op) => {
                let f = match op {
                    VecOp::Relu => 1,
                    VecOp::Gelu => 4,
                    VecOp::Softmax => 4,
                    VecOp::LayerNorm => 4,
                };
                of.elems() * f
            }
        }
    }

    /// Total operations in the network.
    pub fn total_ops(&self) -> u64 {
        (0..self.layers.len()).map(|i| self.layer_ops(LayerId(i as u32))).sum()
    }

    /// Total weight bytes in the network.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Ofmap bytes of a layer.
    pub fn ofmap_bytes(&self, id: LayerId) -> u64 {
        self.layers[id.index()].ofmap.bytes(self.precision)
    }

    /// Total ifmap bytes of a layer (sum over all inputs).
    pub fn ifmap_bytes(&self, id: LayerId) -> u64 {
        self.layers[id.index()]
            .inputs
            .iter()
            .map(|&s| self.src_shape(s).bytes(self.precision))
            .sum()
    }

    /// Checks all structural invariants. Builders call this; call it again
    /// after any manual surgery.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetworkError> {
        for (i, l) in self.layers.iter().enumerate() {
            let id = LayerId(i as u32);
            for &src in &l.inputs {
                match src {
                    Src::Layer(p) => {
                        if p.index() >= self.layers.len() {
                            return Err(NetworkError::DanglingInput { layer: id });
                        }
                        if p.index() >= i {
                            return Err(NetworkError::ForwardReference { layer: id, input: p });
                        }
                        if self.layers[p.index()].ofmap.n != l.ofmap.n {
                            return Err(NetworkError::BatchMismatch { layer: id });
                        }
                    }
                    Src::External(ExtId(e)) => {
                        if e as usize >= self.externals.len() {
                            return Err(NetworkError::DanglingInput { layer: id });
                        }
                    }
                }
            }
            let arity_ok = match l.kind {
                LayerKind::Matmul => l.inputs.len() == 2,
                LayerKind::Eltwise(_) => l.inputs.len() >= 2,
                LayerKind::Pool { .. }
                | LayerKind::DwConv { .. }
                | LayerKind::GlobalPool
                | LayerKind::Vector(_) => l.inputs.len() == 1,
                LayerKind::Conv { .. } | LayerKind::Linear => !l.inputs.is_empty(),
            };
            if !arity_ok {
                return Err(NetworkError::BadArity {
                    layer: id,
                    expected: match l.kind {
                        LayerKind::Matmul => "exactly 2",
                        LayerKind::Eltwise(_) => "at least 2",
                        LayerKind::Conv { .. } | LayerKind::Linear => "at least 1",
                        LayerKind::Pool { .. }
                        | LayerKind::DwConv { .. }
                        | LayerKind::GlobalPool
                        | LayerKind::Vector(_) => "exactly 1",
                    },
                    got: l.inputs.len(),
                });
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.layers.len() {
                return Err(NetworkError::BadOutput { output: o });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new("tiny", 1);
        let x = b.external(FmapShape::new(1, 3, 8, 8));
        let c1 = b.conv("c1", &[x], 16, 3, 1);
        let c2 = b.conv("c2", &[c1], 16, 3, 1);
        let p = b.pool("p", c2, 2, 2);
        b.mark_output(p);
        b.finish()
    }

    #[test]
    fn consumers_and_outputs() {
        let n = tiny();
        assert_eq!(n.consumers(LayerId(0)).len(), 1);
        assert!(n.is_output(LayerId(2)));
        assert!(!n.is_output(LayerId(0)));
    }

    #[test]
    fn ops_conv_formula() {
        let n = tiny();
        // c1: 2 * (1*16*8*8) * 3 * 3 * 3
        assert_eq!(n.layer_ops(LayerId(0)), 2 * 16 * 64 * 3 * 9);
    }

    #[test]
    fn weight_totals() {
        let n = tiny();
        // c1: 3*16*9, c2: 16*16*9, pool: 0
        assert_eq!(n.total_weight_bytes(), (3 * 16 * 9 + 16 * 16 * 9) as u64);
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let mut n = tiny();
        n.layers[0].inputs = vec![Src::Layer(LayerId(2))];
        assert!(matches!(n.validate(), Err(NetworkError::ForwardReference { .. })));
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut n = tiny();
        n.layers[2].inputs = vec![];
        assert!(matches!(n.validate(), Err(NetworkError::BadArity { .. })));
    }
}
