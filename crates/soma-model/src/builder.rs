//! Fluent construction of [`Network`]s.

use crate::graph::Network;
use crate::layer::{EltOp, ExtId, Layer, LayerId, LayerKind, Src, VecOp};
use crate::shape::FmapShape;

/// Incrementally builds a [`Network`] in topological order.
///
/// Shape inference uses same-padding semantics: a stride-`s` spatial layer
/// maps `h` to `ceil(h / s)`.
///
/// ```
/// use soma_model::{FmapShape, NetworkBuilder};
/// use soma_model::builder::SrcExt;
///
/// let mut b = NetworkBuilder::new("demo", 1);
/// let x = b.external(FmapShape::new(1, 3, 32, 32));
/// let c = b.conv("c", &[x], 8, 3, 2);
/// let net = b.finish();
/// assert_eq!(net.layer(c.expect_layer()).ofmap.h, 16);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    precision: u32,
    externals: Vec<FmapShape>,
    layers: Vec<Layer>,
    outputs: Vec<LayerId>,
}

/// Helper trait so builder methods uniformly accept [`Src`] handles.
pub trait IntoSrc {
    /// Converts into a [`Src`].
    fn into_src(self) -> Src;
}

impl IntoSrc for Src {
    fn into_src(self) -> Src {
        self
    }
}

impl IntoSrc for LayerId {
    fn into_src(self) -> Src {
        Src::Layer(self)
    }
}

/// Extension helpers on [`Src`] used by builders/tests.
pub trait SrcExt {
    /// Unwraps a [`Src::Layer`].
    ///
    /// # Panics
    ///
    /// Panics if the source is an external input.
    fn expect_layer(self) -> LayerId;
}

impl SrcExt for Src {
    fn expect_layer(self) -> LayerId {
        match self {
            Src::Layer(id) => id,
            Src::External(_) => panic!("expected a layer source, got an external input"),
        }
    }
}

fn ceil_div(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

impl NetworkBuilder {
    /// Starts a new network with the given name and element precision
    /// (bytes per element; 1 = INT8).
    pub fn new(name: impl Into<String>, precision: u32) -> Self {
        assert!(precision > 0, "precision must be at least one byte");
        Self {
            name: name.into(),
            precision,
            externals: Vec::new(),
            layers: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Declares a network external input with the given shape.
    pub fn external(&mut self, shape: FmapShape) -> Src {
        self.externals.push(shape);
        Src::External(ExtId(self.externals.len() as u32 - 1))
    }

    fn src_shape(&self, src: Src) -> FmapShape {
        match src {
            Src::Layer(id) => self.layers[id.index()].ofmap,
            Src::External(ExtId(i)) => self.externals[i as usize],
        }
    }

    fn push(&mut self, layer: Layer) -> Src {
        self.layers.push(layer);
        Src::Layer(LayerId(self.layers.len() as u32 - 1))
    }

    /// Adds a square-kernel convolution with same padding.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        inputs: &[Src],
        cout: u32,
        k: u32,
        stride: u32,
    ) -> Src {
        self.conv_rect(name, inputs, cout, k, k, stride)
    }

    /// Adds a rectangular-kernel convolution with same padding.
    pub fn conv_rect(
        &mut self,
        name: impl Into<String>,
        inputs: &[Src],
        cout: u32,
        kh: u32,
        kw: u32,
        stride: u32,
    ) -> Src {
        assert!(!inputs.is_empty(), "conv needs at least one input");
        let in0 = self.src_shape(inputs[0]);
        let cin: u32 = inputs.iter().map(|&s| self.src_shape(s).c).sum();
        let ofmap = FmapShape::new(in0.n, cout, ceil_div(in0.h, stride), ceil_div(in0.w, stride));
        let weight_bytes = u64::from(kh)
            * u64::from(kw)
            * u64::from(cin)
            * u64::from(cout)
            * u64::from(self.precision);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::Conv { kh, kw, stride },
            inputs: inputs.to_vec(),
            ofmap,
            weight_bytes,
        })
    }

    /// Adds a depthwise convolution (one filter per channel).
    pub fn dwconv(&mut self, name: impl Into<String>, input: Src, k: u32, stride: u32) -> Src {
        let i = self.src_shape(input);
        let ofmap = FmapShape::new(i.n, i.c, ceil_div(i.h, stride), ceil_div(i.w, stride));
        let weight_bytes = u64::from(k) * u64::from(k) * u64::from(i.c) * u64::from(self.precision);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::DwConv { k, stride },
            inputs: vec![input],
            ofmap,
            weight_bytes,
        })
    }

    /// Adds a pooling layer.
    pub fn pool(&mut self, name: impl Into<String>, input: Src, k: u32, stride: u32) -> Src {
        let i = self.src_shape(input);
        let ofmap = FmapShape::new(i.n, i.c, ceil_div(i.h, stride), ceil_div(i.w, stride));
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::Pool { k, stride },
            inputs: vec![input],
            ofmap,
            weight_bytes: 0,
        })
    }

    /// Adds a global average pooling layer (`h x w -> 1 x 1`).
    pub fn global_pool(&mut self, name: impl Into<String>, input: Src) -> Src {
        let i = self.src_shape(input);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::GlobalPool,
            inputs: vec![input],
            ofmap: FmapShape::new(i.n, i.c, 1, 1),
            weight_bytes: 0,
        })
    }

    /// Adds a token-wise linear (GEMM) layer with `cout` output channels.
    pub fn linear(&mut self, name: impl Into<String>, inputs: &[Src], cout: u32) -> Src {
        assert!(!inputs.is_empty(), "linear needs at least one input");
        let in0 = self.src_shape(inputs[0]);
        let cin: u32 = inputs.iter().map(|&s| self.src_shape(s).c).sum();
        let ofmap = FmapShape::new(in0.n, cout, in0.h, in0.w);
        let weight_bytes = u64::from(cin) * u64::from(cout) * u64::from(self.precision);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::Linear,
            inputs: inputs.to_vec(),
            ofmap,
            weight_bytes,
        })
    }

    /// Adds an activation x activation matmul.
    ///
    /// `streamed` is tiled along its `h` dimension; `full` must be entirely
    /// resident before any tile runs. `cout`/`h` of the output are given
    /// explicitly because attention reshapes head layouts. `extra_dram_bytes`
    /// models a DRAM-resident operand such as a decode-phase KV cache.
    pub fn matmul(
        &mut self,
        name: impl Into<String>,
        streamed: Src,
        full: Src,
        cout: u32,
        extra_dram_bytes: u64,
    ) -> Src {
        let s = self.src_shape(streamed);
        let ofmap = FmapShape::new(s.n, cout, s.h, s.w);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::Matmul,
            inputs: vec![streamed, full],
            ofmap,
            weight_bytes: extra_dram_bytes,
        })
    }

    /// Adds an element-wise n-ary layer. All inputs must share a shape.
    pub fn eltwise(&mut self, name: impl Into<String>, op: EltOp, inputs: &[Src]) -> Src {
        assert!(inputs.len() >= 2, "eltwise needs at least two inputs");
        let shape = self.src_shape(inputs[0]);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::Eltwise(op),
            inputs: inputs.to_vec(),
            ofmap: shape,
            weight_bytes: 0,
        })
    }

    /// Adds a unary vector layer (shape-preserving).
    pub fn vector(&mut self, name: impl Into<String>, op: VecOp, input: Src) -> Src {
        let shape = self.src_shape(input);
        self.push(Layer {
            name: name.into(),
            kind: LayerKind::Vector(op),
            inputs: vec![input],
            ofmap: shape,
            weight_bytes: 0,
        })
    }

    /// Declares `src` (which must be a layer) as a network output.
    ///
    /// # Panics
    ///
    /// Panics if `src` is an external input.
    pub fn mark_output(&mut self, src: Src) {
        self.outputs.push(src.expect_layer());
    }

    /// Finalises the network, deriving consumer adjacency and validating.
    ///
    /// # Panics
    ///
    /// Panics if the constructed network violates a structural invariant
    /// (builder misuse — cannot happen through the typed API).
    pub fn finish(self) -> Network {
        let mut consumers = vec![Vec::new(); self.layers.len()];
        for (i, l) in self.layers.iter().enumerate() {
            for &src in &l.inputs {
                if let Src::Layer(p) = src {
                    consumers[p.index()].push(LayerId(i as u32));
                }
            }
        }
        let net = Network {
            name: self.name,
            precision: self.precision,
            externals: self.externals,
            layers: self.layers,
            outputs: self.outputs,
            consumers,
        };
        net.validate().expect("builder produced an invalid network");
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_shape_inference() {
        let mut b = NetworkBuilder::new("t", 1);
        let x = b.external(FmapShape::new(1, 3, 224, 224));
        let c = b.conv("c", &[x], 64, 7, 2);
        assert_eq!(b.src_shape(c), FmapShape::new(1, 64, 112, 112));
        let p = b.pool("p", c, 3, 2);
        assert_eq!(b.src_shape(p), FmapShape::new(1, 64, 56, 56));
    }

    #[test]
    fn multi_input_conv_concatenates_channels() {
        let mut b = NetworkBuilder::new("t", 1);
        let x = b.external(FmapShape::new(1, 8, 16, 16));
        let a = b.conv("a", &[x], 4, 1, 1);
        let c = b.conv("c", &[x], 12, 1, 1);
        let m = b.conv("m", &[a, c], 10, 1, 1);
        let net = b.finish();
        assert_eq!(net.in_channels(m.expect_layer()), 16);
        // weights: 1*1*16*10
        assert_eq!(net.layer(m.expect_layer()).weight_bytes, 160);
    }

    #[test]
    fn matmul_shapes() {
        let mut b = NetworkBuilder::new("t", 1);
        let x = b.external(FmapShape::tokens(1, 64, 128));
        let q = b.linear("q", &[x], 64);
        let k = b.linear("k", &[x], 64);
        let s = b.matmul("qk", q, k, 128, 0);
        let net = b.finish();
        let sid = s.expect_layer();
        assert_eq!(net.layer(sid).ofmap, FmapShape::tokens(1, 128, 128));
        // ops = 2 * n*cout*h * red(=64)
        assert_eq!(net.layer_ops(sid), 2 * 128 * 128 * 64);
    }

    #[test]
    #[should_panic(expected = "expected a layer source")]
    fn external_cannot_be_output() {
        let mut b = NetworkBuilder::new("t", 1);
        let x = b.external(FmapShape::new(1, 1, 1, 1));
        b.mark_output(x);
    }
}
