//! Layers: the operator vocabulary of the accelerator template.

use serde::{Deserialize, Serialize};

use crate::shape::FmapShape;

/// Identifier of a layer inside a [`crate::Network`] (its topological index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(pub u32);

impl LayerId {
    /// The index of this layer in the network's layer vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a network external input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExtId(pub u32);

/// Source of a layer input: another layer's ofmap or a network input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Src {
    /// The output feature map of an earlier layer.
    Layer(LayerId),
    /// A network external input (always loaded from DRAM).
    External(ExtId),
}

/// Element-wise binary/n-ary operations handled by the vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EltOp {
    /// Element-wise addition (residual connections, RandWire aggregation).
    Add,
    /// Element-wise multiplication (gating).
    Mul,
}

/// Unary vector-unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VecOp {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (transformer MLPs).
    Gelu,
    /// Row-wise softmax over the channel dimension (attention scores).
    Softmax,
    /// Layer normalisation over the channel dimension.
    LayerNorm,
}

/// The kind of computation a layer performs.
///
/// This is the operator set of the generic accelerator template (paper
/// Sec. II): GEMM/Conv work runs on the PE array, everything else on the
/// vector unit. Multi-input [`LayerKind::Conv`]/[`LayerKind::Linear`] layers
/// implicitly concatenate their inputs along the channel dimension, which is
/// how Inception-style concatenations are represented (concatenation itself
/// is free via addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution with (possibly rectangular) kernel and same-padding.
    Conv {
        /// Kernel height.
        kh: u32,
        /// Kernel width.
        kw: u32,
        /// Stride (same in both spatial dimensions).
        stride: u32,
    },
    /// Depthwise convolution: one `k x k` filter per channel
    /// (MobileNet-class networks).
    DwConv {
        /// Square kernel size.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Max/average pooling window.
    Pool {
        /// Square kernel size.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Global average pooling: collapses `h x w` to `1 x 1`.
    ///
    /// Each output tile needs the *entire* input, so inside a fused group it
    /// must be separated from its producer by a fine-grained fusion cut.
    GlobalPool,
    /// Token-wise (position-independent) GEMM: a `1x1` convolution over the
    /// `h = seq` dimension. Used for FC layers and all transformer
    /// projections.
    Linear,
    /// Activation x activation matrix multiply (attention `QK^T` and `PV`).
    ///
    /// Input 0 is streamed (tiled along `h`); input 1 is needed *in full*
    /// for every output tile. `weight_bytes` may be non-zero to model a KV
    /// cache resident in DRAM (decode phase).
    Matmul,
    /// Element-wise n-ary operation.
    Eltwise(EltOp),
    /// Unary vector operation.
    Vector(VecOp),
}

impl LayerKind {
    /// Receptive-field parameters `(kernel, stride)` along the height axis,
    /// used by halo computation. Non-spatial layers are `(1, 1)`.
    pub fn spatial_h(&self) -> (u32, u32) {
        match *self {
            LayerKind::Conv { kh, stride, .. } => (kh, stride),
            LayerKind::DwConv { k, stride } | LayerKind::Pool { k, stride } => (k, stride),
            _ => (1, 1),
        }
    }

    /// Receptive-field parameters `(kernel, stride)` along the width axis.
    pub fn spatial_w(&self) -> (u32, u32) {
        match *self {
            LayerKind::Conv { kw, stride, .. } => (kw, stride),
            LayerKind::DwConv { k, stride } | LayerKind::Pool { k, stride } => (k, stride),
            _ => (1, 1),
        }
    }

    /// Whether the PE array executes this layer (GEMM/Conv class).
    pub fn is_gemm(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::DwConv { .. }
                | LayerKind::Linear
                | LayerKind::Matmul
        )
    }

    /// Whether input `idx` must be available *in full* before any output
    /// tile can be computed (paper Sec. IV-A1 aggregation rule).
    pub fn needs_full_input(&self, idx: usize) -> bool {
        match self {
            LayerKind::Matmul => idx == 1,
            LayerKind::GlobalPool => true,
            _ => false,
        }
    }
}

/// One layer of a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name (unique within a network by construction).
    pub name: String,
    /// Operator kind.
    pub kind: LayerKind,
    /// Input sources, in positional order.
    pub inputs: Vec<Src>,
    /// Output feature-map shape.
    pub ofmap: FmapShape,
    /// Bytes of DRAM-resident read-only data attached to this layer:
    /// weights for Conv/Linear, the KV cache for decode-phase Matmul.
    pub weight_bytes: u64,
}

impl Layer {
    /// Whether this layer has DRAM-resident weights to load.
    pub fn has_weights(&self) -> bool {
        self.weight_bytes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_params() {
        let conv = LayerKind::Conv { kh: 3, kw: 7, stride: 2 };
        assert_eq!(conv.spatial_h(), (3, 2));
        assert_eq!(conv.spatial_w(), (7, 2));
        let lin = LayerKind::Linear;
        assert_eq!(lin.spatial_h(), (1, 1));
    }

    #[test]
    fn full_input_rules() {
        assert!(LayerKind::Matmul.needs_full_input(1));
        assert!(!LayerKind::Matmul.needs_full_input(0));
        assert!(LayerKind::GlobalPool.needs_full_input(0));
        assert!(!LayerKind::Linear.needs_full_input(0));
    }

    #[test]
    fn gemm_classification() {
        assert!(LayerKind::Linear.is_gemm());
        assert!(LayerKind::Conv { kh: 1, kw: 1, stride: 1 }.is_gemm());
        assert!(!LayerKind::Pool { k: 2, stride: 2 }.is_gemm());
        assert!(!LayerKind::Vector(VecOp::Softmax).is_gemm());
    }
}
