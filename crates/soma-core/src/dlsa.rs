//! DRAM-load-and-store-related attributes (DLSA): the DRAM Tensor Order
//! and per-tensor Living Durations (paper Sec. IV-A2).

use serde::{Deserialize, Serialize};

use crate::error::ParseError;
use crate::plan::ComputePlan;

/// Stage-2 attributes over the DRAM tensor set of a [`ComputePlan`].
///
/// Tensors are identified by their index in the plan's canonical
/// enumeration. Living durations follow the paper's semantics:
///
/// * **Loads** (weights, ifmaps): `end` is *fixed* at the tile after the
///   last use; `start` is the schedulable knob — the load may begin once
///   the tile *before* `start` has finished (`start == 0` means
///   immediately), and buffer is held from `start` onwards.
/// * **Stores** (ofmaps): `start` is *fixed* at the producing tile; `end`
///   is the schedulable knob — the tile with global index `end` may not
///   begin until the store completes. `end == n_tiles` is the `END`
///   sentinel (no compute tile waits on it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dlsa {
    /// Execution order: `order[k]` is the canonical tensor index that the
    /// DRAM engine serves `k`-th.
    pub order: Vec<u32>,
    /// Living-duration start of each tensor (canonical index).
    pub start: Vec<u32>,
    /// Living-duration end of each tensor (canonical index).
    pub end: Vec<u32>,
}

impl Dlsa {
    /// The classical double-buffer strategy (paper Sec. III-B): prefetch
    /// each load during the tile before its first use, drain each store
    /// during the tile after its producer. This is the implicit DLSA of
    /// SoMa's first stage and of the Cocco baseline.
    pub fn double_buffer(plan: &ComputePlan) -> Self {
        let n_tiles = plan.n_tiles();
        let mut start = Vec::with_capacity(plan.dram_tensors.len());
        let mut end = Vec::with_capacity(plan.dram_tensors.len());
        for t in &plan.dram_tensors {
            if t.is_load {
                start.push(t.anchor.saturating_sub(1));
                end.push(t.last_use + 1);
            } else {
                start.push(t.anchor);
                end.push((t.anchor + 2).min(n_tiles));
            }
        }
        Self { order: (0..plan.dram_tensors.len() as u32).collect(), start, end }
    }

    /// Checks this DLSA against the plan it is meant for.
    ///
    /// # Errors
    ///
    /// [`ParseError::DlsaNotPermutation`] if `order` is not a permutation
    /// of the tensor set, [`ParseError::BadLivingDuration`] if any bound
    /// leaves its legal range.
    pub fn validate(&self, plan: &ComputePlan) -> Result<(), ParseError> {
        let n = plan.dram_tensors.len();
        if self.order.len() != n || self.start.len() != n || self.end.len() != n {
            return Err(ParseError::DlsaNotPermutation);
        }
        let mut seen = vec![false; n];
        for &i in &self.order {
            let i = i as usize;
            if i >= n || seen[i] {
                return Err(ParseError::DlsaNotPermutation);
            }
            seen[i] = true;
        }
        let n_tiles = plan.n_tiles();
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                // Start may be anywhere in [0, anchor]; End is fixed.
                if self.start[i] > t.anchor || self.end[i] != t.last_use + 1 {
                    return Err(ParseError::BadLivingDuration { tensor: i });
                }
            } else {
                // Start fixed at the producer; End in (anchor, n_tiles].
                if self.start[i] != t.anchor || self.end[i] <= t.anchor || self.end[i] > n_tiles {
                    return Err(ParseError::BadLivingDuration { tensor: i });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Lfa;
    use crate::plan::parse_lfa;
    use soma_model::zoo;

    fn plan() -> ComputePlan {
        let net = zoo::fig2(1);
        parse_lfa(&net, &Lfa::unfused(&net, 2)).unwrap()
    }

    #[test]
    fn double_buffer_is_valid() {
        let p = plan();
        let d = Dlsa::double_buffer(&p);
        assert!(d.validate(&p).is_ok());
    }

    #[test]
    fn double_buffer_prefetches_one_tile() {
        let p = plan();
        let d = Dlsa::double_buffer(&p);
        for (i, t) in p.dram_tensors.iter().enumerate() {
            if t.is_load {
                assert_eq!(d.start[i], t.anchor.saturating_sub(1));
            } else {
                assert_eq!(d.end[i], (t.anchor + 2).min(p.n_tiles()));
            }
        }
    }

    #[test]
    fn validate_rejects_duplicate_order() {
        let p = plan();
        let mut d = Dlsa::double_buffer(&p);
        d.order[1] = d.order[0];
        assert!(matches!(d.validate(&p), Err(ParseError::DlsaNotPermutation)));
    }

    #[test]
    fn validate_rejects_late_load_start() {
        let p = plan();
        let mut d = Dlsa::double_buffer(&p);
        let load = p.dram_tensors.iter().position(|t| t.is_load).unwrap();
        d.start[load] = p.dram_tensors[load].anchor + 1;
        assert!(matches!(d.validate(&p), Err(ParseError::BadLivingDuration { .. })));
    }

    #[test]
    fn validate_rejects_store_end_at_producer() {
        let p = plan();
        let mut d = Dlsa::double_buffer(&p);
        let st = p.dram_tensors.iter().position(|t| !t.is_load).unwrap();
        d.end[st] = p.dram_tensors[st].anchor;
        assert!(matches!(d.validate(&p), Err(ParseError::BadLivingDuration { .. })));
    }
}
