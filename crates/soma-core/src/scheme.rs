//! Plain-text serialisation of scheduling schemes.
//!
//! SoMa's outputs include "a detailed scheduling scheme" (paper Sec. V-A)
//! that can be archived, diffed and fed back into the toolchain. This is
//! a small line-oriented format with no external dependencies:
//!
//! ```text
//! soma-scheme v1
//! net fig4 layers 5
//! order 0 1 2 3 4
//! flc 1 2
//! dram_cuts 2
//! tiling 2 1 2
//! dlsa_order 0 1 2 ...
//! dlsa_start 0 0 1 ...
//! dlsa_end 2 3 3 ...
//! end
//! ```
//!
//! The `dlsa_*` lines are omitted for stage-1 schemes (implicit
//! double-buffer DLSA).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use soma_model::{LayerId, Network};

use crate::dlsa::Dlsa;
use crate::encoding::{Encoding, Lfa};

/// Errors when reading a scheme file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// Missing or wrong header line.
    BadHeader,
    /// A required line is missing.
    MissingLine(&'static str),
    /// A line failed to parse.
    BadLine(String),
    /// The scheme targets a different network.
    NetworkMismatch { expected: String, got: String },
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::BadHeader => write!(f, "missing `soma-scheme v1` header"),
            SchemeError::MissingLine(what) => write!(f, "missing `{what}` line"),
            SchemeError::BadLine(line) => write!(f, "malformed line: {line}"),
            SchemeError::NetworkMismatch { expected, got } => {
                write!(f, "scheme targets network `{got}`, expected `{expected}`")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// Writes an encoding to the scheme text format.
pub fn write_scheme(net: &Network, enc: &Encoding) -> String {
    let mut out = String::new();
    out.push_str("soma-scheme v1\n");
    let _ = writeln!(out, "net {} layers {}", net.name(), net.len());
    let nums = |v: &mut String, it: &mut dyn Iterator<Item = u64>| {
        for (i, x) in it.enumerate() {
            if i > 0 {
                v.push(' ');
            }
            let _ = write!(v, "{x}");
        }
        v.push('\n');
    };
    out.push_str("order ");
    nums(&mut out, &mut enc.lfa.order.iter().map(|l| u64::from(l.0)));
    out.push_str("flc ");
    nums(&mut out, &mut enc.lfa.flc.iter().map(|&p| p as u64));
    out.push_str("dram_cuts ");
    nums(&mut out, &mut enc.lfa.dram_cuts.iter().map(|&p| p as u64));
    out.push_str("tiling ");
    nums(&mut out, &mut enc.lfa.tiling.iter().map(|&t| u64::from(t)));
    if let Some(dlsa) = &enc.dlsa {
        out.push_str("dlsa_order ");
        nums(&mut out, &mut dlsa.order.iter().map(|&x| u64::from(x)));
        out.push_str("dlsa_start ");
        nums(&mut out, &mut dlsa.start.iter().map(|&x| u64::from(x)));
        out.push_str("dlsa_end ");
        nums(&mut out, &mut dlsa.end.iter().map(|&x| u64::from(x)));
    }
    out.push_str("end\n");
    out
}

fn parse_nums(rest: &str, line: &str) -> Result<Vec<u64>, SchemeError> {
    rest.split_whitespace()
        .map(|t| t.parse::<u64>().map_err(|_| SchemeError::BadLine(line.to_string())))
        .collect()
}

/// Reads an encoding from the scheme text format, checking it targets
/// `net`.
///
/// # Errors
///
/// Returns [`SchemeError`] on malformed input or a network mismatch.
pub fn read_scheme(net: &Network, text: &str) -> Result<Encoding, SchemeError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("soma-scheme v1") {
        return Err(SchemeError::BadHeader);
    }

    let mut order: Option<Vec<LayerId>> = None;
    let mut flc: Option<BTreeSet<usize>> = None;
    let mut dram_cuts: Option<BTreeSet<usize>> = None;
    let mut tiling: Option<Vec<u32>> = None;
    let mut dlsa_order: Option<Vec<u32>> = None;
    let mut dlsa_start: Option<Vec<u32>> = None;
    let mut dlsa_end: Option<Vec<u32>> = None;

    for line in lines {
        let line = line.trim();
        if line.is_empty() || line == "end" {
            continue;
        }
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "net" => {
                let got = rest.split_whitespace().next().unwrap_or("").to_string();
                if got != net.name() {
                    return Err(SchemeError::NetworkMismatch {
                        expected: net.name().to_string(),
                        got,
                    });
                }
            }
            "order" => {
                order =
                    Some(parse_nums(rest, line)?.into_iter().map(|x| LayerId(x as u32)).collect())
            }
            "flc" => flc = Some(parse_nums(rest, line)?.into_iter().map(|x| x as usize).collect()),
            "dram_cuts" => {
                dram_cuts = Some(parse_nums(rest, line)?.into_iter().map(|x| x as usize).collect())
            }
            "tiling" => {
                tiling = Some(parse_nums(rest, line)?.into_iter().map(|x| x as u32).collect())
            }
            "dlsa_order" => {
                dlsa_order = Some(parse_nums(rest, line)?.into_iter().map(|x| x as u32).collect())
            }
            "dlsa_start" => {
                dlsa_start = Some(parse_nums(rest, line)?.into_iter().map(|x| x as u32).collect())
            }
            "dlsa_end" => {
                dlsa_end = Some(parse_nums(rest, line)?.into_iter().map(|x| x as u32).collect())
            }
            _ => return Err(SchemeError::BadLine(line.to_string())),
        }
    }

    let lfa = Lfa {
        order: order.ok_or(SchemeError::MissingLine("order"))?,
        flc: flc.ok_or(SchemeError::MissingLine("flc"))?,
        tiling: tiling.ok_or(SchemeError::MissingLine("tiling"))?,
        dram_cuts: dram_cuts.ok_or(SchemeError::MissingLine("dram_cuts"))?,
    };
    let dlsa = match (dlsa_order, dlsa_start, dlsa_end) {
        (Some(order), Some(start), Some(end)) => Some(Dlsa { order, start, end }),
        (None, None, None) => None,
        _ => return Err(SchemeError::MissingLine("dlsa_*")),
    };
    Ok(Encoding { lfa, dlsa })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::parse_lfa;
    use soma_model::zoo;

    fn sample() -> (Network, Encoding) {
        let net = zoo::fig4(1);
        let mut lfa = Lfa::fully_fused(&net, 2);
        lfa.flc = [1, 2].into_iter().collect();
        lfa.dram_cuts = [2].into_iter().collect();
        lfa.tiling = vec![2, 1, 2];
        let plan = parse_lfa(&net, &lfa).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        (net, Encoding { lfa, dlsa: Some(dlsa) })
    }

    use soma_model::Network;

    #[test]
    fn round_trip_with_dlsa() {
        let (net, enc) = sample();
        let text = write_scheme(&net, &enc);
        let back = read_scheme(&net, &text).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn round_trip_without_dlsa() {
        let (net, mut enc) = sample();
        enc.dlsa = None;
        let text = write_scheme(&net, &enc);
        assert!(!text.contains("dlsa_order"));
        let back = read_scheme(&net, &text).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn rejects_wrong_network() {
        let (net, enc) = sample();
        let text = write_scheme(&net, &enc);
        let other = zoo::fig2(1);
        assert!(matches!(read_scheme(&other, &text), Err(SchemeError::NetworkMismatch { .. })));
    }

    #[test]
    fn rejects_bad_header_and_garbage() {
        let net = zoo::fig4(1);
        assert_eq!(read_scheme(&net, "nope"), Err(SchemeError::BadHeader));
        let text = "soma-scheme v1\nbogus line\n";
        assert!(matches!(read_scheme(&net, text), Err(SchemeError::BadLine(_))));
    }

    #[test]
    fn rejects_partial_dlsa() {
        let (net, enc) = sample();
        let mut text = write_scheme(&net, &enc);
        text = text.replace("dlsa_end", "flc"); // corrupt one dlsa line
        assert!(read_scheme(&net, &text).is_err());
    }
}
