//! Errors of the notation parser.

use soma_model::LayerId;

/// Why an encoding could not be parsed into a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The computing order is not a permutation of the network's layers.
    OrderNotPermutation,
    /// The computing order violates a data dependency (paper Sec. IV-A1:
    /// "a valid Computing Order cannot have any dependency that goes from
    /// right to left").
    OrderNotTopological { producer: LayerId, consumer: LayerId },
    /// An FLC position is outside `1..len`.
    BadCutPosition { pos: usize },
    /// A DRAM cut is not a member of the FLC set (the DRAM Cut Set must be
    /// a subset of the FLC Set).
    DramCutNotFlc { pos: usize },
    /// Wrong number of tiling numbers (must equal the FLG count).
    TilingCountMismatch { expected: usize, got: usize },
    /// A tiling number is zero or not a power of two.
    BadTilingNumber { flg: usize, tiling: u32 },
    /// A layer that needs one of its inputs in full (attention operand,
    /// global pooling) shares an FLG with that input's producer.
    FullInputInsideFlg { consumer: LayerId },
    /// DLSA order is not a permutation of the DRAM tensor set.
    DlsaNotPermutation,
    /// A living-duration bound is outside its legal range.
    BadLivingDuration { tensor: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::OrderNotPermutation => {
                write!(f, "computing order is not a permutation of the layers")
            }
            ParseError::OrderNotTopological { producer, consumer } => write!(
                f,
                "computing order places consumer {consumer} before its producer {producer}"
            ),
            ParseError::BadCutPosition { pos } => write!(f, "cut position {pos} out of range"),
            ParseError::DramCutNotFlc { pos } => {
                write!(f, "DRAM cut {pos} is not in the FLC set")
            }
            ParseError::TilingCountMismatch { expected, got } => {
                write!(f, "expected {expected} tiling numbers, got {got}")
            }
            ParseError::BadTilingNumber { flg, tiling } => {
                write!(f, "FLG {flg} has invalid tiling number {tiling}")
            }
            ParseError::FullInputInsideFlg { consumer } => {
                write!(f, "layer {consumer} needs a full input but shares an FLG with its producer")
            }
            ParseError::DlsaNotPermutation => {
                write!(f, "DLSA order is not a permutation of the DRAM tensors")
            }
            ParseError::BadLivingDuration { tensor } => {
                write!(f, "living duration of DRAM tensor {tensor} out of range")
            }
        }
    }
}

impl std::error::Error for ParseError {}
