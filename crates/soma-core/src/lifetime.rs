//! Static buffer-occupancy accounting.
//!
//! Every byte in the GBUF belongs to exactly one of:
//!
//! * an on-chip fused fmap ([`crate::OnchipInterval`], fixed by the LFA),
//! * a DRAM load tensor, resident over `[start, end)` of its living
//!   duration,
//! * a DRAM store tensor, resident over `[anchor, end)` (until the tile
//!   its completion gates; `END`-sentinel stores are conservatively held to
//!   the last tile).
//!
//! Both optimisation paradigms trade buffer for DRAM traffic, so this
//! profile is what the two SA stages compete over and what the Buffer
//! Allocator budgets (paper Sec. III-C, V-B).

use crate::dlsa::Dlsa;
use crate::plan::ComputePlan;

/// Per-tile GBUF occupancy in bytes (length `n_tiles`).
///
/// Index `t` is the occupancy while compute tile `t` executes.
pub fn buffer_profile(plan: &ComputePlan, dlsa: &Dlsa) -> Vec<u64> {
    let n = plan.n_tiles() as usize;
    if n == 0 {
        return Vec::new();
    }
    // Difference array over tiles; intervals are [from, to] inclusive.
    let mut diff = Vec::new();
    fill_diff(plan, dlsa, &mut diff);
    let mut out = Vec::with_capacity(n);
    let mut cur = 0i64;
    for d in diff.iter().take(n) {
        cur += d;
        debug_assert!(cur >= 0, "buffer occupancy went negative");
        out.push(cur as u64);
    }
    out
}

/// Writes the per-tensor occupancy intervals of `(plan, dlsa)` into a
/// difference array (`diff[t]` = occupancy change when tile `t` starts).
/// `diff` is cleared and resized to `n_tiles + 1`.
fn fill_diff(plan: &ComputePlan, dlsa: &Dlsa, diff: &mut Vec<i64>) {
    let n = plan.n_tiles() as usize;
    diff.clear();
    diff.resize(n + 1, 0);
    let mut add = |from: u32, to_excl: u32, bytes: u64| {
        let from = (from as usize).min(n);
        let to = (to_excl as usize).min(n);
        if from < to {
            diff[from] += bytes as i64;
            diff[to] -= bytes as i64;
        }
    };
    for iv in &plan.onchip {
        add(iv.from, iv.to + 1, iv.bytes);
    }
    for (i, t) in plan.dram_tensors.iter().enumerate() {
        if t.is_load {
            add(dlsa.start[i], t.last_use + 1, t.bytes);
        } else {
            add(t.anchor, dlsa.end[i].max(t.anchor + 1), t.bytes);
        }
    }
}

/// Peak of [`buffer_profile`], without materialising the profile: one
/// fused pass over the difference array, accumulating the running
/// maximum.
pub fn peak_buffer(plan: &ComputePlan, dlsa: &Dlsa) -> u64 {
    let mut diff = Vec::new();
    peak_buffer_into(plan, dlsa, &mut diff)
}

/// [`peak_buffer`] against a caller-owned scratch difference array: zero
/// heap allocation once `diff`'s capacity has grown to `n_tiles + 1`
/// (the evaluation-engine hot path re-uses one scratch across thousands
/// of calls).
pub fn peak_buffer_into(plan: &ComputePlan, dlsa: &Dlsa, diff: &mut Vec<i64>) -> u64 {
    let n = plan.n_tiles() as usize;
    if n == 0 {
        return 0;
    }
    fill_diff(plan, dlsa, diff);
    let mut cur = 0i64;
    let mut peak = 0i64;
    for d in diff.iter().take(n) {
        cur += d;
        debug_assert!(cur >= 0, "buffer occupancy went negative");
        peak = peak.max(cur);
    }
    peak as u64
}

/// The buffer-occupancy profile as a *maintained* structure: a segment
/// tree over tiles supporting `O(log n)` range adds and `O(1)` peak
/// queries, so a single-tensor living-duration move costs `O(log n)`
/// instead of an `O(n)` profile rebuild.
///
/// This is the stage-2 annealer's view of [`buffer_profile`]: built once
/// per frozen plan, then kept in sync with each DLSA mutation via
/// [`shift_interval_start`](Self::shift_interval_start) /
/// [`shift_interval_end`](Self::shift_interval_end) (and rolled back the
/// same way when a proposal is rejected).
#[derive(Debug, Clone)]
pub struct OccupancyProfile {
    /// Number of tiles (leaves of the tree).
    n: usize,
    /// Subtree max, *including* this node's pending add.
    mx: Vec<i64>,
    /// Pending range-add covering the node's whole segment.
    add: Vec<i64>,
}

impl OccupancyProfile {
    /// Builds the profile of `(plan, dlsa)`; equal to [`buffer_profile`]
    /// point-for-point.
    pub fn new(plan: &ComputePlan, dlsa: &Dlsa) -> Self {
        let profile = buffer_profile(plan, dlsa);
        let n = profile.len();
        let mut p = Self { n, mx: vec![0; 4 * n.max(1)], add: vec![0; 4 * n.max(1)] };
        if n > 0 {
            p.build(1, 0, n - 1, &profile);
        }
        p
    }

    fn build(&mut self, node: usize, lo: usize, hi: usize, profile: &[u64]) {
        if lo == hi {
            self.mx[node] = profile[lo] as i64;
            return;
        }
        let mid = (lo + hi) / 2;
        self.build(2 * node, lo, mid, profile);
        self.build(2 * node + 1, mid + 1, hi, profile);
        self.mx[node] = self.mx[2 * node].max(self.mx[2 * node + 1]);
    }

    /// Number of tiles covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan has no tiles.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Peak occupancy over all tiles, in bytes.
    pub fn peak(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.mx[1].max(0) as u64
        }
    }

    /// Occupancy while tile `t` executes (point query; for tests and
    /// differential checks).
    pub fn occupancy(&self, t: usize) -> u64 {
        assert!(t < self.n, "tile {t} out of range ({} tiles)", self.n);
        let mut node = 1;
        let (mut lo, mut hi) = (0, self.n - 1);
        let mut acc = 0i64;
        while lo < hi {
            acc += self.add[node];
            let mid = (lo + hi) / 2;
            if t <= mid {
                node *= 2;
                hi = mid;
            } else {
                node = 2 * node + 1;
                lo = mid + 1;
            }
        }
        (acc + self.mx[node]).max(0) as u64
    }

    /// Adds `delta` bytes to the occupancy of tiles `[from, to_excl)`
    /// (clamped to the tile range; empty ranges are a no-op).
    pub fn range_add(&mut self, from: u32, to_excl: u32, delta: i64) {
        let from = (from as usize).min(self.n);
        let to = (to_excl as usize).min(self.n);
        if from < to {
            self.range_add_rec(1, 0, self.n - 1, from, to - 1, delta);
        }
    }

    fn range_add_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, d: i64) {
        if l <= lo && hi <= r {
            self.add[node] += d;
            self.mx[node] += d;
            return;
        }
        let mid = (lo + hi) / 2;
        if l <= mid {
            self.range_add_rec(2 * node, lo, mid, l, r.min(mid), d);
        }
        if r > mid {
            self.range_add_rec(2 * node + 1, mid + 1, hi, l.max(mid + 1), r, d);
        }
        self.mx[node] = self.mx[2 * node].max(self.mx[2 * node + 1]) + self.add[node];
    }

    /// Moves the *start* of a resident interval `[start, to_excl)` of
    /// `bytes` from `old_start` to `new_start` (a load's Living-Duration
    /// `Start` mutation: earlier start ⇒ tiles `[new, old)` gain the
    /// bytes, later start ⇒ tiles `[old, new)` release them).
    pub fn shift_interval_start(&mut self, bytes: u64, old_start: u32, new_start: u32) {
        match new_start.cmp(&old_start) {
            std::cmp::Ordering::Less => self.range_add(new_start, old_start, bytes as i64),
            std::cmp::Ordering::Greater => self.range_add(old_start, new_start, -(bytes as i64)),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Moves the *exclusive end* of a resident interval from `old_end` to
    /// `new_end` (a store's Living-Duration `End` mutation).
    pub fn shift_interval_end(&mut self, bytes: u64, old_end: u32, new_end: u32) {
        match new_end.cmp(&old_end) {
            std::cmp::Ordering::Greater => self.range_add(old_end, new_end, bytes as i64),
            std::cmp::Ordering::Less => self.range_add(new_end, old_end, -(bytes as i64)),
            std::cmp::Ordering::Equal => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Lfa;
    use crate::plan::parse_lfa;
    use soma_model::zoo;

    #[test]
    fn profile_length_matches_tiles() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 4)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        assert_eq!(buffer_profile(&plan, &dlsa).len(), plan.n_tiles() as usize);
    }

    #[test]
    fn earlier_prefetch_raises_occupancy() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 4)).unwrap();
        let mut dlsa = Dlsa::double_buffer(&plan);
        let base: u64 = buffer_profile(&plan, &dlsa).iter().sum();
        // Pull every load to the very beginning.
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                dlsa.start[i] = 0;
            }
        }
        let eager: u64 = buffer_profile(&plan, &dlsa).iter().sum();
        assert!(eager > base);
        assert!(peak_buffer(&plan, &dlsa) >= base / plan.n_tiles() as u64);
    }

    #[test]
    fn fusion_keeps_fmaps_resident() {
        let net = zoo::fig2(1);
        let fused = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let d = Dlsa::double_buffer(&fused);
        let profile = buffer_profile(&fused, &d);
        // Weights of all three layers are live across the whole group,
        // so occupancy is everywhere at least the total weight bytes.
        let w: u64 = net.total_weight_bytes();
        assert!(profile.iter().all(|&b| b >= w / 2));
    }

    #[test]
    fn peak_of_empty_plan_is_zero() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 1)).unwrap();
        let d = Dlsa::double_buffer(&plan);
        assert!(peak_buffer(&plan, &d) > 0);
    }

    #[test]
    fn end_sentinel_store_holds_buffer_to_the_last_tile() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 2)).unwrap();
        let mut d = Dlsa::double_buffer(&plan);
        let n = plan.n_tiles();
        // Delay the first store to the END sentinel: its bytes must stay
        // resident through the final tile.
        let (si, bytes) = plan
            .dram_tensors
            .iter()
            .enumerate()
            .find(|(_, t)| !t.is_load)
            .map(|(i, t)| (i, t.bytes))
            .unwrap();
        let before = buffer_profile(&plan, &d);
        d.end[si] = n;
        let after = buffer_profile(&plan, &d);
        assert_eq!(after[n as usize - 1], before[n as usize - 1] + bytes);
    }

    #[test]
    fn fused_peak_matches_profile_max() {
        let net = zoo::fig2(1);
        for lfa in [Lfa::unfused(&net, 4), Lfa::fully_fused(&net, 8)] {
            let plan = parse_lfa(&net, &lfa).unwrap();
            let dlsa = Dlsa::double_buffer(&plan);
            let expect = buffer_profile(&plan, &dlsa).into_iter().max().unwrap_or(0);
            assert_eq!(peak_buffer(&plan, &dlsa), expect);
            let mut scratch = Vec::new();
            assert_eq!(peak_buffer_into(&plan, &dlsa, &mut scratch), expect);
            // Scratch re-use across calls keeps the answer stable.
            assert_eq!(peak_buffer_into(&plan, &dlsa, &mut scratch), expect);
        }
    }

    #[test]
    fn occupancy_profile_matches_rebuild_pointwise() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        let p = OccupancyProfile::new(&plan, &dlsa);
        let reference = buffer_profile(&plan, &dlsa);
        assert_eq!(p.len(), reference.len());
        for (t, &b) in reference.iter().enumerate() {
            assert_eq!(p.occupancy(t), b, "tile {t}");
        }
        assert_eq!(p.peak(), reference.iter().copied().max().unwrap());
    }

    #[test]
    fn occupancy_profile_tracks_living_duration_moves() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 4)).unwrap();
        let mut dlsa = Dlsa::double_buffer(&plan);
        let mut p = OccupancyProfile::new(&plan, &dlsa);

        // Pull one load's start to 0 and push one store's end to the
        // sentinel; the maintained profile must match a fresh rebuild
        // after every move, and undo must restore the previous state.
        let li = plan.dram_tensors.iter().position(|t| t.is_load && t.anchor > 0).unwrap();
        let (old, bytes) = (dlsa.start[li], plan.dram_tensors[li].bytes);
        let peak_before = p.peak();
        p.shift_interval_start(bytes, old, 0);
        dlsa.start[li] = 0;
        assert_eq!(p.peak(), peak_buffer(&plan, &dlsa));
        for (t, &b) in buffer_profile(&plan, &dlsa).iter().enumerate() {
            assert_eq!(p.occupancy(t), b, "tile {t} after start move");
        }
        // Undo restores the original peak.
        p.shift_interval_start(bytes, 0, old);
        assert_eq!(p.peak(), peak_before);
        dlsa.start[li] = old;

        let si = plan.dram_tensors.iter().position(|t| !t.is_load).unwrap();
        let (old_end, bytes) = (dlsa.end[si], plan.dram_tensors[si].bytes);
        p.shift_interval_end(bytes, old_end, plan.n_tiles());
        dlsa.end[si] = plan.n_tiles();
        assert_eq!(p.peak(), peak_buffer(&plan, &dlsa));
        for (t, &b) in buffer_profile(&plan, &dlsa).iter().enumerate() {
            assert_eq!(p.occupancy(t), b, "tile {t} after end move");
        }
    }

    #[test]
    fn weight_release_frees_buffer_after_last_use() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 2)).unwrap();
        let d = Dlsa::double_buffer(&plan);
        let profile = buffer_profile(&plan, &d);
        // Weights of layer A (first layer) are released after its last
        // tile: occupancy must strictly include WA early and exclude it
        // in the final tile (which only needs C's data).
        let wa = net.layer(soma_model::LayerId(0)).weight_bytes;
        assert!(wa > 0);
        let last = *profile.last().unwrap();
        let first = profile[0];
        assert!(first > 0 && last > 0);
        // The last tile no longer holds A's or B's weights.
        let wb = net.layer(soma_model::LayerId(1)).weight_bytes;
        assert!(last + wa + wb <= profile.iter().copied().max().unwrap() + wa + wb);
    }
}
