//! Static buffer-occupancy accounting.
//!
//! Every byte in the GBUF belongs to exactly one of:
//!
//! * an on-chip fused fmap ([`crate::OnchipInterval`], fixed by the LFA),
//! * a DRAM load tensor, resident over `[start, end)` of its living
//!   duration,
//! * a DRAM store tensor, resident over `[anchor, end)` (until the tile
//!   its completion gates; `END`-sentinel stores are conservatively held to
//!   the last tile).
//!
//! Both optimisation paradigms trade buffer for DRAM traffic, so this
//! profile is what the two SA stages compete over and what the Buffer
//! Allocator budgets (paper Sec. III-C, V-B).

use crate::dlsa::Dlsa;
use crate::plan::ComputePlan;

/// Per-tile GBUF occupancy in bytes (length `n_tiles`).
///
/// Index `t` is the occupancy while compute tile `t` executes.
pub fn buffer_profile(plan: &ComputePlan, dlsa: &Dlsa) -> Vec<u64> {
    let n = plan.n_tiles() as usize;
    if n == 0 {
        return Vec::new();
    }
    // Difference array over tiles; intervals are [from, to] inclusive.
    let mut diff = vec![0i64; n + 1];
    let mut add = |from: u32, to_excl: u32, bytes: u64| {
        let from = (from as usize).min(n);
        let to = (to_excl as usize).min(n);
        if from < to {
            diff[from] += bytes as i64;
            diff[to] -= bytes as i64;
        }
    };
    for iv in &plan.onchip {
        add(iv.from, iv.to + 1, iv.bytes);
    }
    for (i, t) in plan.dram_tensors.iter().enumerate() {
        if t.is_load {
            add(dlsa.start[i], t.last_use + 1, t.bytes);
        } else {
            add(t.anchor, dlsa.end[i].max(t.anchor + 1), t.bytes);
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut cur = 0i64;
    for d in diff.iter().take(n) {
        cur += d;
        debug_assert!(cur >= 0, "buffer occupancy went negative");
        out.push(cur as u64);
    }
    out
}

/// Peak of [`buffer_profile`].
pub fn peak_buffer(plan: &ComputePlan, dlsa: &Dlsa) -> u64 {
    buffer_profile(plan, dlsa).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Lfa;
    use crate::plan::parse_lfa;
    use soma_model::zoo;

    #[test]
    fn profile_length_matches_tiles() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 4)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        assert_eq!(buffer_profile(&plan, &dlsa).len(), plan.n_tiles() as usize);
    }

    #[test]
    fn earlier_prefetch_raises_occupancy() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 4)).unwrap();
        let mut dlsa = Dlsa::double_buffer(&plan);
        let base: u64 = buffer_profile(&plan, &dlsa).iter().sum();
        // Pull every load to the very beginning.
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                dlsa.start[i] = 0;
            }
        }
        let eager: u64 = buffer_profile(&plan, &dlsa).iter().sum();
        assert!(eager > base);
        assert!(peak_buffer(&plan, &dlsa) >= base / plan.n_tiles() as u64);
    }

    #[test]
    fn fusion_keeps_fmaps_resident() {
        let net = zoo::fig2(1);
        let fused = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let d = Dlsa::double_buffer(&fused);
        let profile = buffer_profile(&fused, &d);
        // Weights of all three layers are live across the whole group,
        // so occupancy is everywhere at least the total weight bytes.
        let w: u64 = net.total_weight_bytes();
        assert!(profile.iter().all(|&b| b >= w / 2));
    }

    #[test]
    fn peak_of_empty_plan_is_zero() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 1)).unwrap();
        let d = Dlsa::double_buffer(&plan);
        assert!(peak_buffer(&plan, &d) > 0);
    }

    #[test]
    fn end_sentinel_store_holds_buffer_to_the_last_tile() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 2)).unwrap();
        let mut d = Dlsa::double_buffer(&plan);
        let n = plan.n_tiles();
        // Delay the first store to the END sentinel: its bytes must stay
        // resident through the final tile.
        let (si, bytes) = plan
            .dram_tensors
            .iter()
            .enumerate()
            .find(|(_, t)| !t.is_load)
            .map(|(i, t)| (i, t.bytes))
            .unwrap();
        let before = buffer_profile(&plan, &d);
        d.end[si] = n;
        let after = buffer_profile(&plan, &d);
        assert_eq!(after[n as usize - 1], before[n as usize - 1] + bytes);
    }

    #[test]
    fn weight_release_frees_buffer_after_last_use() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 2)).unwrap();
        let d = Dlsa::double_buffer(&plan);
        let profile = buffer_profile(&plan, &d);
        // Weights of layer A (first layer) are released after its last
        // tile: occupancy must strictly include WA early and exclude it
        // in the final tile (which only needs C's data).
        let wa = net.layer(soma_model::LayerId(0)).weight_bytes;
        assert!(wa > 0);
        let last = *profile.last().unwrap();
        let first = profile[0];
        assert!(first > 0 && last > 0);
        // The last tile no longer holds A's or B's weights.
        let wb = net.layer(soma_model::LayerId(1)).weight_bytes;
        assert!(last + wa + wb <= profile.iter().copied().max().unwrap() + wa + wb);
    }
}
