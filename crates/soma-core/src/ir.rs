//! Lowering a parsed schedule into the abstract instruction stream.
//!
//! The paper's accelerator template exposes three abstract instructions
//! (Sec. II): `load` (DRAM -> GBUF), `store` (GBUF -> DRAM) and `compute`
//! (one tile on the core group). The start and end of any instruction can
//! serve as a trigger marker for another; we emit explicit dependencies so
//! an instruction generator for a concrete chip (paper Sec. V-E/F) only
//! has to translate opcode + operands.

use serde::{Deserialize, Serialize};

use crate::plan::DramKind;
use crate::ParsedSchedule;

/// An abstract instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Move a tensor from DRAM into the GBUF.
    Load {
        /// Canonical DRAM-tensor index.
        tensor: u32,
        /// Transfer size.
        bytes: u64,
        /// Kind tag (weight/ifmap) for the backend.
        kind: DramKind,
        /// The compute tile whose completion releases this load to start
        /// (`None` = may start immediately, subject to queue order).
        after_tile: Option<u32>,
    },
    /// Move a tensor from the GBUF to DRAM.
    Store {
        /// Canonical DRAM-tensor index.
        tensor: u32,
        /// Transfer size.
        bytes: u64,
        /// Kind tag for the backend.
        kind: DramKind,
        /// The producing tile (must complete first).
        after_tile: u32,
    },
    /// Execute one computing tile.
    Compute {
        /// Global tile index.
        tile: u32,
        /// Operation count (for the backend's cost annotations).
        ops: u64,
        /// DRAM tensors (canonical indices) whose completion gates this
        /// tile: its own loads plus stores whose `End` equals this tile.
        wait_for: Vec<u32>,
    },
}

/// A lowered instruction stream: the DRAM queue and the compute queue, each
/// in issue order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// `load`/`store` instructions in DRAM Tensor Order.
    pub dram_queue: Vec<Instr>,
    /// `compute` instructions in tile order.
    pub compute_queue: Vec<Instr>,
}

impl Program {
    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.dram_queue.len() + self.compute_queue.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the program as a textual assembly listing — the shape a
    /// chip-specific instruction generator consumes (paper Sec. V-F's IR).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("; DRAM queue\n");
        for instr in &self.dram_queue {
            match instr {
                Instr::Load { tensor, bytes, kind, after_tile } => {
                    let gate = after_tile.map_or_else(|| "-".to_string(), |t| format!("tile{t}"));
                    out.push_str(&format!(
                        "load  t{tensor:<5} {bytes:>10}B after {gate:<8} ; {kind:?}\n"
                    ));
                }
                Instr::Store { tensor, bytes, kind, after_tile } => {
                    out.push_str(&format!(
                        "store t{tensor:<5} {bytes:>10}B after tile{after_tile:<4} ; {kind:?}\n"
                    ));
                }
                Instr::Compute { .. } => unreachable!("compute lives in the compute queue"),
            }
        }
        out.push_str("; COMPUTE queue\n");
        for instr in &self.compute_queue {
            if let Instr::Compute { tile, ops, wait_for } = instr {
                let waits: Vec<String> = wait_for.iter().map(|w| format!("t{w}")).collect();
                out.push_str(&format!(
                    "comp  tile{tile:<4} {ops:>12}ops wait [{}]\n",
                    waits.join(",")
                ));
            }
        }
        out
    }
}

/// Lowers a parsed schedule into a [`Program`].
pub fn lower(sched: &ParsedSchedule) -> Program {
    let plan = &sched.plan;
    let dlsa = &sched.dlsa;

    let mut dram_queue = Vec::with_capacity(plan.dram_tensors.len());
    for &ti in &dlsa.order {
        let t = &plan.dram_tensors[ti as usize];
        if t.is_load {
            let start = dlsa.start[ti as usize];
            dram_queue.push(Instr::Load {
                tensor: ti,
                bytes: t.bytes,
                kind: t.kind,
                after_tile: if start == 0 { None } else { Some(start - 1) },
            });
        } else {
            dram_queue.push(Instr::Store {
                tensor: ti,
                bytes: t.bytes,
                kind: t.kind,
                after_tile: t.anchor,
            });
        }
    }

    // Per-tile gating tensors: the tile's own loads plus stores with
    // End == tile.
    let mut waits: Vec<Vec<u32>> = vec![Vec::new(); plan.n_tiles() as usize];
    for (i, t) in plan.dram_tensors.iter().enumerate() {
        if t.is_load {
            waits[t.anchor as usize].push(i as u32);
        } else {
            let end = dlsa.end[i];
            if (end as usize) < waits.len() {
                waits[end as usize].push(i as u32);
            }
        }
    }
    let compute_queue = plan
        .tiles
        .iter()
        .enumerate()
        .map(|(pos, tile)| Instr::Compute {
            tile: pos as u32,
            ops: tile.ops,
            wait_for: std::mem::take(&mut waits[pos]),
        })
        .collect();

    Program { dram_queue, compute_queue }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Encoding, Lfa};
    use soma_model::zoo;

    fn program() -> Program {
        let net = zoo::fig2(1);
        let enc = Encoding::from_lfa(Lfa::unfused(&net, 2));
        let sched = ParsedSchedule::new(&net, &enc).unwrap();
        lower(&sched)
    }

    #[test]
    fn one_instruction_per_tensor_and_tile() {
        let net = zoo::fig2(1);
        let enc = Encoding::from_lfa(Lfa::unfused(&net, 2));
        let sched = ParsedSchedule::new(&net, &enc).unwrap();
        let prog = lower(&sched);
        assert_eq!(prog.dram_queue.len(), sched.plan.dram_tensors.len());
        assert_eq!(prog.compute_queue.len(), sched.plan.tiles.len());
        assert!(!prog.is_empty());
    }

    #[test]
    fn every_tile_with_inputs_waits_on_its_loads() {
        let prog = program();
        // Tile 0 consumes the network input and weights: must wait.
        match &prog.compute_queue[0] {
            Instr::Compute { wait_for, .. } => assert!(!wait_for.is_empty()),
            other => panic!("expected compute, got {other:?}"),
        }
    }

    #[test]
    fn text_listing_covers_every_instruction() {
        let prog = program();
        let text = prog.to_text();
        assert_eq!(
            text.matches('\n').count(),
            prog.len() + 2, // one line per instruction + two headers
        );
        assert!(text.contains("load"));
        assert!(text.contains("store"));
        assert!(text.contains("comp"));
    }

    #[test]
    fn stores_wait_on_their_producer() {
        let prog = program();
        for instr in &prog.dram_queue {
            if let Instr::Store { after_tile, tensor, .. } = instr {
                // Producer index equals the tensor anchor by construction.
                assert!(*after_tile < prog.compute_queue.len() as u32, "{tensor}");
            }
        }
    }
}
