//! Stage-1 parsing: LFA -> compute plan (paper Fig. 4(a)).

use serde::{Deserialize, Serialize};
use soma_model::{LayerId, Network, Src};

use crate::encoding::Lfa;
use crate::error::ParseError;
use crate::tiles::{FlgLayout, TileShape};

/// Largest admissible tiling number (paper schedules never approach this;
/// it bounds plan size so invalid SA moves stay cheap to reject).
pub const MAX_TILING: u32 = 4096;

/// One computing tile: the unit of the COMPUTE row in the paper's
/// DRAM-COMPUTE diagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// The layer this tile belongs to.
    pub layer: LayerId,
    /// Tile index within the layer (`0..tiling`).
    pub tile_idx: u32,
    /// FLG index.
    pub flg: u32,
    /// LG index.
    pub lg: u32,
    /// Operations in this tile (halo recompute included).
    pub ops: u64,
    /// Per-tile output shape (with and without halo).
    pub shape: TileShape,
    /// Bytes of all inputs the tile reads from the GBUF.
    pub in_bytes: u64,
    /// Full weight bytes of the layer (resident while the tile runs).
    pub weight_bytes: u64,
    /// Tile ofmap bytes including halo (buffer view).
    pub out_bytes: u64,
    /// Tile ofmap bytes excluding halo (unique data, DRAM-store view).
    pub out_bytes_nom: u64,
    /// Whether the PE array executes this tile (GEMM/Conv class) as
    /// opposed to the vector unit.
    pub on_pe: bool,
}

/// What a DRAM tensor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// A layer's weights (or DRAM-resident KV cache): loaded once, used by
    /// every tile of the layer.
    Weight(LayerId),
    /// The ifmap region of one tile, loaded from DRAM.
    Ifmap {
        /// Consuming layer.
        layer: LayerId,
        /// Consuming tile index within the layer.
        tile: u32,
        /// Which of the layer's inputs this region feeds.
        input: u32,
    },
    /// The ofmap of one tile, stored to DRAM.
    Ofmap {
        /// Producing layer.
        layer: LayerId,
        /// Producing tile index within the layer.
        tile: u32,
    },
}

/// A tensor that must move between DRAM and the GBUF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTensor {
    /// What the tensor is.
    pub kind: DramKind,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// `true` for loads (weights/ifmaps), `false` for stores (ofmaps).
    pub is_load: bool,
    /// Loads: global index of the first tile that uses the data (the load
    /// must complete before it). Stores: global index of the producing
    /// tile (the store may begin after it).
    pub anchor: u32,
    /// Loads: global index of the last tile using the data (buffer is
    /// released after it; fixed `End = last_use + 1`). Stores: equals
    /// `anchor`.
    pub last_use: u32,
}

/// On-chip residency of a fused feature map (not a DRAM tensor): buffer is
/// occupied from tile `from` through tile `to`, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnchipInterval {
    /// First global tile index during which the bytes are resident.
    pub from: u32,
    /// Last global tile index (inclusive).
    pub to: u32,
    /// Resident bytes.
    pub bytes: u64,
}

/// The result of stage-1 parsing: tile sequence, DRAM tensor set (in
/// canonical need-order), on-chip buffer residency and the group layouts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComputePlan {
    /// All computing tiles, in execution order.
    pub tiles: Vec<Tile>,
    /// All DRAM tensors, enumerated in canonical need-order (loads of a
    /// tile before it, store of a tile after it). A [`crate::Dlsa`]
    /// permutes this set.
    pub dram_tensors: Vec<DramTensor>,
    /// On-chip fused-fmap residency intervals.
    pub onchip: Vec<OnchipInterval>,
    /// Per-FLG tiling layouts.
    pub flgs: Vec<FlgLayout>,
    /// FLG index of each layer (indexed by `LayerId`).
    pub flg_of: Vec<u32>,
    /// LG index of each FLG.
    pub lg_of_flg: Vec<u32>,
    /// Global tile positions of each layer (indexed by `LayerId`).
    pub tile_pos: Vec<Vec<u32>>,
}

impl ComputePlan {
    /// Number of tiles in the plan.
    pub fn n_tiles(&self) -> u32 {
        self.tiles.len() as u32
    }

    /// Number of LGs.
    pub fn n_lgs(&self) -> usize {
        self.lg_of_flg.last().map_or(0, |&l| l as usize + 1)
    }

    /// Total bytes moved to/from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_tensors.iter().map(|t| t.bytes).sum()
    }

    /// Total operations across all tiles (halo recompute included).
    pub fn total_ops(&self) -> u64 {
        self.tiles.iter().map(|t| t.ops).sum()
    }
}

/// Parses the layer-fusion-related attributes into a [`ComputePlan`]
/// (the paper's first parsing stage, Sec. IV-A1).
///
/// # Errors
///
/// Returns a [`ParseError`] when the order is not a topological
/// permutation, cut/tiling attributes are malformed, or a full-input
/// consumer shares an FLG with its producer.
pub fn parse_lfa(net: &Network, lfa: &Lfa) -> Result<ComputePlan, ParseError> {
    let n = net.len();

    // --- Computing order: permutation + topological. ---
    if lfa.order.len() != n {
        return Err(ParseError::OrderNotPermutation);
    }
    let mut pos_of = vec![usize::MAX; n];
    for (p, &id) in lfa.order.iter().enumerate() {
        if id.index() >= n || pos_of[id.index()] != usize::MAX {
            return Err(ParseError::OrderNotPermutation);
        }
        pos_of[id.index()] = p;
    }
    for (cid, layer) in net.iter() {
        for &src in &layer.inputs {
            if let Src::Layer(pid) = src {
                if pos_of[pid.index()] >= pos_of[cid.index()] {
                    return Err(ParseError::OrderNotTopological { producer: pid, consumer: cid });
                }
            }
        }
    }

    // --- Cuts and tiling numbers. ---
    for &p in &lfa.flc {
        if p == 0 || p >= n {
            return Err(ParseError::BadCutPosition { pos: p });
        }
    }
    for &p in &lfa.dram_cuts {
        if !lfa.flc.contains(&p) {
            return Err(ParseError::DramCutNotFlc { pos: p });
        }
    }
    let ranges = lfa.flg_ranges();
    if lfa.tiling.len() != ranges.len() {
        return Err(ParseError::TilingCountMismatch {
            expected: ranges.len(),
            got: lfa.tiling.len(),
        });
    }
    for (g, &t) in lfa.tiling.iter().enumerate() {
        if t == 0 || !t.is_power_of_two() || t > MAX_TILING {
            return Err(ParseError::BadTilingNumber { flg: g, tiling: t });
        }
    }

    // --- Group membership. ---
    let mut flg_of = vec![0u32; n];
    let mut lg_of_flg = Vec::with_capacity(ranges.len());
    let mut lg = 0u32;
    for (g, &(start, end)) in ranges.iter().enumerate() {
        if g > 0 && lfa.dram_cuts.contains(&start) {
            lg += 1;
        }
        lg_of_flg.push(lg);
        for p in start..end {
            flg_of[lfa.order[p].index()] = g as u32;
        }
    }
    let lg_of = |id: LayerId| lg_of_flg[flg_of[id.index()] as usize];

    // --- Full-input aggregation rule. ---
    for (cid, layer) in net.iter() {
        for (idx, &src) in layer.inputs.iter().enumerate() {
            if let Src::Layer(pid) = src {
                if layer.kind.needs_full_input(idx) && flg_of[pid.index()] == flg_of[cid.index()] {
                    return Err(ParseError::FullInputInsideFlg { consumer: cid });
                }
            }
        }
    }

    // --- Layouts, tiles, positions. ---
    let prec = u64::from(net.precision());
    let mut flgs = Vec::with_capacity(ranges.len());
    let mut tiles = Vec::new();
    let mut tile_pos: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (g, &(start, end)) in ranges.iter().enumerate() {
        let layers: Vec<LayerId> = lfa.order[start..end].to_vec();
        let layout = FlgLayout::build(net, &layers, lfa.tiling[g]);
        let t_count = lfa.tiling[g];
        // Per-layer tile quantities are identical across tile indices:
        // compute them once per layer.
        let protos: Vec<Tile> = layers
            .iter()
            .enumerate()
            .map(|(j, &id)| {
                let layer = net.layer(id);
                let shape = layout.shapes[j];
                let ops = ((net.layer_ops(id) as u128 * shape.elems() as u128)
                    / layer.ofmap.elems() as u128) as u64;
                let in_bytes: u64 = (0..layer.inputs.len())
                    .map(|idx| layout.input_tile_bytes(net, j, idx, false))
                    .sum();
                Tile {
                    layer: id,
                    tile_idx: 0,
                    flg: g as u32,
                    lg: lg_of_flg[g],
                    ops,
                    shape,
                    in_bytes,
                    weight_bytes: layer.weight_bytes,
                    out_bytes: shape.elems() * prec,
                    out_bytes_nom: shape.elems_nom() * prec,
                    on_pe: layer.kind.is_gemm(),
                }
            })
            .collect();
        for &id in &layers {
            tile_pos[id.index()] = Vec::with_capacity(t_count as usize);
        }
        tiles.reserve(t_count as usize * layers.len());
        for i in 0..t_count {
            for proto in &protos {
                let pos = tiles.len() as u32;
                tile_pos[proto.layer.index()].push(pos);
                tiles.push(Tile { tile_idx: i, ..*proto });
            }
        }
        flgs.push(layout);
    }

    // --- DRAM tensors in canonical need-order, plus on-chip intervals. ---
    // Pre-derive, per layer: which inputs cross an LG boundary (with their
    // per-tile load bytes) and whether its ofmap must be stored.
    struct LayerDram {
        crossing_inputs: Vec<(u32, u64)>, // (input index, bytes per tile)
        stores: bool,
    }
    let mut per_layer: Vec<LayerDram> = Vec::with_capacity(n);
    for (id, layer) in net.iter() {
        let g = flg_of[id.index()] as usize;
        let layout = &flgs[g];
        let j = layout.layers.iter().position(|&l| l == id).expect("layer belongs to its FLG");
        let crossing_inputs = layer
            .inputs
            .iter()
            .enumerate()
            .filter(|&(_, &src)| match src {
                Src::External(_) => true,
                Src::Layer(p) => lg_of(p) != lg_of(id),
            })
            .map(|(idx, _)| (idx as u32, layout.input_tile_bytes(net, j, idx, false)))
            .collect();
        let stores = net.is_output(id) || net.consumers(id).iter().any(|&c| lg_of(c) != lg_of(id));
        per_layer.push(LayerDram { crossing_inputs, stores });
    }
    let mut dram_tensors = Vec::new();
    for (pos, tile) in tiles.iter().enumerate() {
        let pos = pos as u32;
        let id = tile.layer;
        let ld = &per_layer[id.index()];
        // Weights load at the layer's first tile.
        if tile.tile_idx == 0 && tile.weight_bytes > 0 {
            let positions = &tile_pos[id.index()];
            dram_tensors.push(DramTensor {
                kind: DramKind::Weight(id),
                bytes: tile.weight_bytes,
                is_load: true,
                anchor: positions[0],
                last_use: *positions.last().expect("layer has at least one tile"),
            });
        }
        // Ifmap loads for LG-crossing or external inputs.
        for &(idx, bytes) in &ld.crossing_inputs {
            dram_tensors.push(DramTensor {
                kind: DramKind::Ifmap { layer: id, tile: tile.tile_idx, input: idx },
                bytes,
                is_load: true,
                anchor: pos,
                last_use: pos,
            });
        }
        // Ofmap store if the output leaves the LG (or the network).
        if ld.stores {
            dram_tensors.push(DramTensor {
                kind: DramKind::Ofmap { layer: id, tile: tile.tile_idx },
                bytes: tile.out_bytes_nom,
                is_load: false,
                anchor: pos,
                last_use: pos,
            });
        }
    }

    // On-chip residency, from the producer side.
    let mut onchip = Vec::new();
    for (pid, _) in net.iter() {
        let same_lg: Vec<LayerId> =
            net.consumers(pid).iter().copied().filter(|&c| lg_of(c) == lg_of(pid)).collect();
        if same_lg.is_empty() {
            continue;
        }
        let all_same_flg = same_lg.iter().all(|&c| flg_of[c.index()] == flg_of[pid.index()]);
        let p_positions = &tile_pos[pid.index()];
        if all_same_flg {
            // Tile-wise hand-off within the FLG (Fig. 2 style).
            let g = flg_of[pid.index()] as usize;
            let layout = &flgs[g];
            let j = layout.layers.iter().position(|&l| l == pid).expect("member");
            let bytes = layout.shapes[j].elems() * prec;
            for (i, &from) in p_positions.iter().enumerate() {
                let to = same_lg
                    .iter()
                    .map(|&c| tile_pos[c.index()][i])
                    .max()
                    .expect("non-empty consumer set");
                onchip.push(OnchipInterval { from, to, bytes });
            }
        } else {
            // The full ofmap accumulates across an FLC (paper: the
            // producing FLG must aggregate before the consuming FLG runs).
            let from = p_positions[0];
            let to = same_lg
                .iter()
                .map(|&c| *tile_pos[c.index()].last().expect("tiles"))
                .max()
                .expect("non-empty consumer set");
            let bytes = net.ofmap_bytes(pid);
            onchip.push(OnchipInterval { from, to, bytes });
        }
    }

    Ok(ComputePlan { tiles, dram_tensors, onchip, flgs, flg_of, lg_of_flg, tile_pos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Lfa;
    use soma_model::zoo;

    #[test]
    fn unfused_plan_counts() {
        let net = zoo::fig2(1);
        let lfa = Lfa::unfused(&net, 4);
        let plan = parse_lfa(&net, &lfa).unwrap();
        assert_eq!(plan.n_tiles(), 12); // 3 layers x 4 tiles
        assert_eq!(plan.n_lgs(), 3);
        // Every layer loads weights once, every tile loads ifmap and
        // stores ofmap (all boundaries are DRAM cuts).
        let weights =
            plan.dram_tensors.iter().filter(|t| matches!(t.kind, DramKind::Weight(_))).count();
        assert_eq!(weights, 3);
        let ifmaps =
            plan.dram_tensors.iter().filter(|t| matches!(t.kind, DramKind::Ifmap { .. })).count();
        assert_eq!(ifmaps, 12);
        let ofmaps =
            plan.dram_tensors.iter().filter(|t| matches!(t.kind, DramKind::Ofmap { .. })).count();
        assert_eq!(ofmaps, 12);
        assert!(plan.onchip.is_empty());
    }

    #[test]
    fn fused_plan_drops_intermediate_dram_traffic() {
        let net = zoo::fig2(1);
        let fused = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let unfused = parse_lfa(&net, &Lfa::unfused(&net, 4)).unwrap();
        assert!(fused.dram_bytes() < unfused.dram_bytes());
        // Intermediate fmaps stay on chip: 2 producers x 4 tiles.
        assert_eq!(fused.onchip.len(), 8);
        // Only the network input is loaded as fmaps; output stored.
        let ifmaps =
            fused.dram_tensors.iter().filter(|t| matches!(t.kind, DramKind::Ifmap { .. })).count();
        assert_eq!(ifmaps, 4);
    }

    #[test]
    fn interleaved_tile_order_within_flg() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 2)).unwrap();
        let seq: Vec<(u32, u32)> = plan.tiles.iter().map(|t| (t.layer.0, t.tile_idx)).collect();
        assert_eq!(seq, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn halo_inflates_fused_ops() {
        let net = zoo::fig2(1);
        let fused = parse_lfa(&net, &Lfa::fully_fused(&net, 16)).unwrap();
        let unfused = parse_lfa(&net, &Lfa::unfused(&net, 1)).unwrap();
        assert!(fused.total_ops() > unfused.total_ops());
    }

    #[test]
    fn rejects_non_topological_order() {
        let net = zoo::fig2(1);
        let mut lfa = Lfa::unfused(&net, 1);
        lfa.order.swap(0, 1);
        assert!(matches!(parse_lfa(&net, &lfa), Err(ParseError::OrderNotTopological { .. })));
    }

    #[test]
    fn rejects_bad_tiling() {
        let net = zoo::fig2(1);
        let mut lfa = Lfa::unfused(&net, 1);
        lfa.tiling[0] = 3;
        assert!(matches!(parse_lfa(&net, &lfa), Err(ParseError::BadTilingNumber { .. })));
    }

    #[test]
    fn rejects_dram_cut_outside_flc() {
        let net = zoo::fig2(1);
        let mut lfa = Lfa::fully_fused(&net, 2);
        lfa.dram_cuts.insert(1);
        assert!(matches!(parse_lfa(&net, &lfa), Err(ParseError::DramCutNotFlc { pos: 1 })));
    }

    #[test]
    fn rejects_full_input_in_same_flg() {
        // fig4's pooling is fine, but a matmul workload triggers the rule.
        let net = zoo::transformer_large(1, 64);
        let lfa = Lfa::fully_fused(&net, 1);
        assert!(matches!(parse_lfa(&net, &lfa), Err(ParseError::FullInputInsideFlg { .. })));
    }

    #[test]
    fn weight_tensor_spans_all_layer_tiles() {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, 4)).unwrap();
        let w0 = plan
            .dram_tensors
            .iter()
            .find(|t| t.kind == DramKind::Weight(soma_model::LayerId(0)))
            .unwrap();
        assert_eq!(w0.anchor, 0);
        assert_eq!(w0.last_use, 9); // layer 0's 4th tile sits at position 9
        assert!(w0.is_load);
    }

    #[test]
    fn fig4_style_mixed_cuts() {
        let net = zoo::fig4(1);
        // FLC {1, 2}, DRAM cut {2}: groups [A], [B], [C,E,D] as in Fig. 4.
        let mut lfa = Lfa::fully_fused(&net, 2);
        lfa.flc = [1, 2].into_iter().collect();
        lfa.dram_cuts = [2].into_iter().collect();
        lfa.tiling = vec![2, 1, 2];
        let plan = parse_lfa(&net, &lfa).unwrap();
        assert_eq!(plan.n_lgs(), 2);
        assert_eq!(plan.n_tiles(), 2 + 1 + 3 * 2);
        // B -> C crosses the DRAM cut: C's tiles load ifmaps from DRAM.
        let c_loads = plan
            .dram_tensors
            .iter()
            .filter(|t| {
                matches!(t.kind, DramKind::Ifmap { layer, .. } if layer == soma_model::LayerId(2))
            })
            .count();
        assert_eq!(c_loads, 2);
        // A -> B crosses only an FLC: kept on chip, full-fmap interval.
        assert!(plan.onchip.iter().any(|iv| iv.bytes == net.ofmap_bytes(soma_model::LayerId(0))));
    }
}
