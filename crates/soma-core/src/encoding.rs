//! The six-attribute encoding (paper Fig. 4 left).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use soma_model::{LayerId, Network};

use crate::dlsa::Dlsa;

/// Layer-fusion-related attributes (LFA): computing order, FLC set, tiling
/// numbers, DRAM cut set.
///
/// Cut positions are indices into the computing order: a cut at position
/// `p` separates `order[p-1]` from `order[p]`. Positions `0` and
/// `order.len()` are implicit group boundaries and are not stored.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lfa {
    /// Coarse-grained serial execution order of all layers.
    pub order: Vec<LayerId>,
    /// Fine-grained layer-fusion cut positions (the FLC set).
    pub flc: BTreeSet<usize>,
    /// Tiling number of each FLG, in order (`flc.len() + 1` entries,
    /// powers of two).
    pub tiling: Vec<u32>,
    /// DRAM cut positions; must be a subset of `flc`.
    pub dram_cuts: BTreeSet<usize>,
}

impl Lfa {
    /// The paper's stage-1 initial solution: every layer is its own FLG and
    /// LG (no fusion), with the given uniform tiling number.
    pub fn unfused(net: &Network, tiling: u32) -> Self {
        let n = net.len();
        let order: Vec<LayerId> = (0..n as u32).map(LayerId).collect();
        let cuts: BTreeSet<usize> = (1..n).collect();
        Self { order, flc: cuts.clone(), tiling: vec![tiling; n], dram_cuts: cuts }
    }

    /// A single fully-fused group covering the whole network (useful in
    /// tests; usually infeasible for real buffers).
    pub fn fully_fused(net: &Network, tiling: u32) -> Self {
        Self {
            order: (0..net.len() as u32).map(LayerId).collect(),
            flc: BTreeSet::new(),
            tiling: vec![tiling],
            dram_cuts: BTreeSet::new(),
        }
    }

    /// Number of FLGs this LFA induces.
    pub fn flg_count(&self) -> usize {
        self.flc.len() + 1
    }

    /// Number of LGs this LFA induces.
    pub fn lg_count(&self) -> usize {
        self.dram_cuts.len() + 1
    }

    /// FLG boundaries as half-open ranges over order positions.
    pub fn flg_ranges(&self) -> Vec<(usize, usize)> {
        let mut bounds: Vec<usize> = Vec::with_capacity(self.flc.len() + 2);
        bounds.push(0);
        bounds.extend(self.flc.iter().copied());
        bounds.push(self.order.len());
        bounds.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

/// A complete scheduling scheme: LFA plus (optionally) DLSA.
///
/// When `dlsa` is `None`, parsing substitutes the classical double-buffer
/// strategy — exactly what SoMa's first exploration stage does while it
/// varies the LFA (paper Sec. V-C1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    /// Layer-fusion-related attributes.
    pub lfa: Lfa,
    /// DRAM-load-and-store-related attributes, if explicitly scheduled.
    pub dlsa: Option<Dlsa>,
}

impl Encoding {
    /// Wraps an LFA with the implicit double-buffer DLSA.
    pub fn from_lfa(lfa: Lfa) -> Self {
        Self { lfa, dlsa: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn unfused_has_one_group_per_layer() {
        let net = zoo::fig4(1);
        let lfa = Lfa::unfused(&net, 1);
        assert_eq!(lfa.flg_count(), 5);
        assert_eq!(lfa.lg_count(), 5);
        assert_eq!(lfa.flg_ranges(), vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn fully_fused_is_one_group() {
        let net = zoo::fig4(1);
        let lfa = Lfa::fully_fused(&net, 4);
        assert_eq!(lfa.flg_count(), 1);
        assert_eq!(lfa.flg_ranges(), vec![(0, 5)]);
    }

    #[test]
    fn flg_ranges_respect_cuts() {
        let net = zoo::fig4(1);
        let mut lfa = Lfa::fully_fused(&net, 2);
        lfa.flc.insert(1);
        lfa.flc.insert(2);
        lfa.tiling = vec![2, 1, 2];
        assert_eq!(lfa.flg_ranges(), vec![(0, 1), (1, 2), (2, 5)]);
    }
}
