//! Binary encoding of the abstract instruction stream.
//!
//! The end of the paper's compilation flow (Sec. V-A) emits instructions
//! for the target chip. This module defines a compact, versioned binary
//! layout for the abstract three-instruction ISA of Sec. II so backends
//! (and tests) can round-trip programs without a serde dependency chain.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   "SOMA"            4 bytes
//! version u16               currently 1
//! n_dram  u32, n_comp u32
//! then n_dram + n_comp instruction records:
//!   opcode u8: 0 = load, 1 = store, 2 = compute
//!   load:    kind_tag u8, layer u32, tile u32, input u32,
//!            tensor u32, bytes u64, gate u32 (u32::MAX = none)
//!   store:   same fields, gate = producing tile
//!   compute: tile u32, ops u64, n_waits u32, waits u32 x n
//! ```

use crate::ir::{Instr, Program};
use crate::plan::DramKind;
use soma_model::LayerId;

/// Binary decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Truncated input.
    Truncated,
    /// Unknown opcode or kind tag.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing SOMA magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported program version {v}"),
            DecodeError::Truncated => write!(f, "truncated program"),
            DecodeError::BadTag(t) => write!(f, "unknown opcode or kind tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"SOMA";
const VERSION: u16 = 1;
const NO_GATE: u32 = u32::MAX;

fn put_kind(out: &mut Vec<u8>, kind: DramKind) {
    match kind {
        DramKind::Weight(l) => {
            out.push(0);
            out.extend_from_slice(&l.0.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
        DramKind::Ifmap { layer, tile, input } => {
            out.push(1);
            out.extend_from_slice(&layer.0.to_le_bytes());
            out.extend_from_slice(&tile.to_le_bytes());
            out.extend_from_slice(&input.to_le_bytes());
        }
        DramKind::Ofmap { layer, tile } => {
            out.push(2);
            out.extend_from_slice(&layer.0.to_le_bytes());
            out.extend_from_slice(&tile.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn kind(&mut self) -> Result<DramKind, DecodeError> {
        let tag = self.u8()?;
        let layer = LayerId(self.u32()?);
        let tile = self.u32()?;
        let input = self.u32()?;
        match tag {
            0 => Ok(DramKind::Weight(layer)),
            1 => Ok(DramKind::Ifmap { layer, tile, input }),
            2 => Ok(DramKind::Ofmap { layer, tile }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// Encodes a program to bytes.
pub fn encode(prog: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + prog.len() * 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(prog.dram_queue.len() as u32).to_le_bytes());
    out.extend_from_slice(&(prog.compute_queue.len() as u32).to_le_bytes());
    for instr in prog.dram_queue.iter().chain(&prog.compute_queue) {
        match instr {
            Instr::Load { tensor, bytes, kind, after_tile } => {
                out.push(0);
                put_kind(&mut out, *kind);
                out.extend_from_slice(&tensor.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
                out.extend_from_slice(&after_tile.unwrap_or(NO_GATE).to_le_bytes());
            }
            Instr::Store { tensor, bytes, kind, after_tile } => {
                out.push(1);
                put_kind(&mut out, *kind);
                out.extend_from_slice(&tensor.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
                out.extend_from_slice(&after_tile.to_le_bytes());
            }
            Instr::Compute { tile, ops, wait_for } => {
                out.push(2);
                out.extend_from_slice(&tile.to_le_bytes());
                out.extend_from_slice(&ops.to_le_bytes());
                out.extend_from_slice(&(wait_for.len() as u32).to_le_bytes());
                for w in wait_for {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Decodes a program from bytes.
///
/// # Errors
///
/// Returns [`DecodeError`] for malformed, truncated or unknown-version
/// input.
pub fn decode(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let n_dram = r.u32()? as usize;
    let n_comp = r.u32()? as usize;

    let mut dram_queue = Vec::with_capacity(n_dram);
    let mut compute_queue = Vec::with_capacity(n_comp);
    for i in 0..n_dram + n_comp {
        let opcode = r.u8()?;
        let instr = match opcode {
            0 => {
                let kind = r.kind()?;
                let tensor = r.u32()?;
                let bytes = r.u64()?;
                let gate = r.u32()?;
                Instr::Load { tensor, bytes, kind, after_tile: (gate != NO_GATE).then_some(gate) }
            }
            1 => {
                let kind = r.kind()?;
                let tensor = r.u32()?;
                let bytes = r.u64()?;
                let after_tile = r.u32()?;
                Instr::Store { tensor, bytes, kind, after_tile }
            }
            2 => {
                let tile = r.u32()?;
                let ops = r.u64()?;
                let n = r.u32()? as usize;
                let mut wait_for = Vec::with_capacity(n);
                for _ in 0..n {
                    wait_for.push(r.u32()?);
                }
                Instr::Compute { tile, ops, wait_for }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        if i < n_dram {
            dram_queue.push(instr);
        } else {
            compute_queue.push(instr);
        }
    }
    Ok(Program { dram_queue, compute_queue })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Encoding, Lfa};
    use crate::ir::lower;
    use crate::ParsedSchedule;
    use soma_model::zoo;

    fn program() -> Program {
        let net = zoo::fig4(1);
        let mut lfa = Lfa::fully_fused(&net, 2);
        lfa.flc = [1, 2].into_iter().collect();
        lfa.dram_cuts = [2].into_iter().collect();
        lfa.tiling = vec![2, 1, 2];
        let sched = ParsedSchedule::new(&net, &Encoding { lfa, dlsa: None }).unwrap();
        lower(&sched)
    }

    #[test]
    fn round_trip() {
        let prog = program();
        let bytes = encode(&prog);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let prog = program();
        let mut bytes = encode(&prog);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
        let mut bytes = encode(&prog);
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&program());
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "decoding a {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        let prog = program();
        let mut bytes = encode(&prog);
        bytes[14] = 9; // first opcode byte (after 14-byte header)
        assert!(matches!(decode(&bytes), Err(DecodeError::BadTag(9))));
    }
}
