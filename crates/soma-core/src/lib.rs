//! The tensor-centric notation of the DRAM communication scheduling space
//! (paper Sec. IV) and its parsing into concrete hardware behaviour.
//!
//! A scheduling scheme is an [`Encoding`] with six attributes in two
//! categories:
//!
//! * **LFA** (layer-fusion-related): *Computing Order*, *Fine-grained
//!   Layer-fusion Cut (FLC) set*, per-FLG *Tiling Number*, and the *DRAM
//!   Cut set* (a subset of the FLC set).
//! * **DLSA** (DRAM-load-and-store-related): the *DRAM Tensor Order* and a
//!   per-tensor *Living Duration*.
//!
//! Parsing proceeds in the paper's two stages:
//!
//! 1. [`parse_lfa`] turns the LFA into a [`ComputePlan`]: the full tile
//!    sequence (the COMPUTE row of Fig. 4), every tensor requiring DRAM
//!    interaction, and the on-chip buffer residency of fused feature maps.
//! 2. A [`Dlsa`] assigns each DRAM tensor its queue position and living
//!    duration; [`lifetime::buffer_profile`] then yields per-tile buffer
//!    occupancy and the simulator in `soma-sim` derives exact timing.
//!
//! ```
//! use soma_core::{parse_lfa, Dlsa, Lfa};
//! use soma_model::zoo;
//!
//! let net = zoo::fig4(1);
//! let lfa = Lfa::unfused(&net, 2);
//! let plan = parse_lfa(&net, &lfa)?;
//! let dlsa = Dlsa::double_buffer(&plan);
//! assert_eq!(dlsa.order.len(), plan.dram_tensors.len());
//! # Ok::<(), soma_core::ParseError>(())
//! ```

pub mod dlsa;
pub mod encoding;
pub mod error;
pub mod ir;
pub mod isa;
pub mod lifetime;
pub mod plan;
pub mod scheme;
pub mod tiles;

pub use dlsa::Dlsa;
pub use encoding::{Encoding, Lfa};
pub use error::ParseError;
pub use ir::{lower, Instr, Program};
pub use lifetime::OccupancyProfile;
pub use plan::{parse_lfa, ComputePlan, DramKind, DramTensor, OnchipInterval, Tile};
pub use scheme::{read_scheme, write_scheme, SchemeError};
pub use tiles::{FlgLayout, TileGrid, TileShape};

/// A fully parsed schedule: the compute plan plus a validated DLSA.
///
/// This is the object the evaluator consumes.
#[derive(Debug, Clone)]
pub struct ParsedSchedule {
    /// Stage-1 parse result.
    pub plan: ComputePlan,
    /// Stage-2 attributes, validated against `plan`.
    pub dlsa: Dlsa,
}

impl ParsedSchedule {
    /// Parses a complete encoding against a network.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if the LFA is structurally invalid or the
    /// DLSA does not match the derived DRAM tensor set.
    pub fn new(net: &soma_model::Network, enc: &Encoding) -> Result<Self, ParseError> {
        let plan = parse_lfa(net, &enc.lfa)?;
        let dlsa = match &enc.dlsa {
            Some(d) => {
                d.validate(&plan)?;
                d.clone()
            }
            None => Dlsa::double_buffer(&plan),
        };
        Ok(Self { plan, dlsa })
    }
}
