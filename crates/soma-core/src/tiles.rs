//! Tile-grid selection and halo accumulation inside an FLG
//! (paper Sec. IV-A1).

use serde::{Deserialize, Serialize};
use soma_model::halo::{back_extend, in_extent, tile_extent};
use soma_model::{LayerId, Network};

/// How a tiling number is split across the batch/height/width dimensions.
///
/// The paper's heuristic: tile the batch dimension first (no halo), then
/// height and width "keeping them as equal as possible to reduce overlap";
/// the channel dimension is never split so downstream layers keep access to
/// all channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGrid {
    /// Parts along batch.
    pub tb: u32,
    /// Parts along height.
    pub th: u32,
    /// Parts along width.
    pub tw: u32,
}

impl TileGrid {
    /// Total tile count (`tb * th * tw`, equals the FLG's tiling number).
    pub fn tiles(&self) -> u32 {
        self.tb * self.th * self.tw
    }

    /// Chooses a grid for tiling number `t` (a power of two) against a
    /// reference ofmap of `(n, h, w)`: batch first, then the spatially
    /// larger of height/width.
    pub fn choose(t: u32, n: u32, h: u32, w: u32) -> Self {
        debug_assert!(t.is_power_of_two());
        let mut g = TileGrid { tb: 1, th: 1, tw: 1 };
        let mut rem = t;
        while rem > 1 && g.tb * 2 <= n {
            g.tb *= 2;
            rem /= 2;
        }
        while rem > 1 {
            // Split the dimension with the larger current tile extent.
            if h / g.th >= w / g.tw {
                g.th *= 2;
            } else {
                g.tw *= 2;
            }
            rem /= 2;
        }
        g
    }
}

/// Per-tile output extents of one layer inside an FLG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Batch elements per tile.
    pub n: u32,
    /// Channels (never split).
    pub c: u32,
    /// Output rows per tile *including* the halo extension.
    pub h: u32,
    /// Output columns per tile including the halo extension.
    pub w: u32,
    /// Output rows per tile *excluding* the halo (unique elements).
    pub h_nom: u32,
    /// Output columns per tile excluding the halo.
    pub w_nom: u32,
}

impl TileShape {
    /// Elements per tile including halo (compute/buffer view).
    pub fn elems(&self) -> u64 {
        u64::from(self.n) * u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Elements per tile excluding halo (unique data, DRAM-store view).
    pub fn elems_nom(&self) -> u64 {
        u64::from(self.n) * u64::from(self.c) * u64::from(self.h_nom) * u64::from(self.w_nom)
    }
}

/// The complete tiling layout of one FLG: the grid, each layer's halo
/// extension, and each layer's per-tile output shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlgLayout {
    /// Layers of the FLG in computing order.
    pub layers: Vec<LayerId>,
    /// Tiling number.
    pub tiling: u32,
    /// Chosen split of the tiling number.
    pub grid: TileGrid,
    /// Halo extension `(eh, ew)` of each layer (extra output elements each
    /// tile must produce for downstream in-group consumers).
    pub ext: Vec<(u32, u32)>,
    /// Per-tile output shape of each layer.
    pub shapes: Vec<TileShape>,
}

impl FlgLayout {
    /// Builds the layout for `layers` (a contiguous computing-order
    /// segment) with tiling number `tiling`.
    ///
    /// The grid reference is the layer with the largest ofmap spatial
    /// extent, so early high-resolution layers dominate the split choice.
    pub fn build(net: &Network, layers: &[LayerId], tiling: u32) -> Self {
        let reference = layers
            .iter()
            .map(|&id| net.layer(id).ofmap)
            .max_by_key(|s| s.spatial())
            .expect("FLG cannot be empty");
        let grid = TileGrid::choose(tiling, reference.n, reference.h, reference.w);

        // Backward halo accumulation: consumers inside the same FLG push
        // their requirement through their own kernels.
        let mut ext = vec![(0u32, 0u32); layers.len()];
        let pos_of = |id: LayerId| layers.iter().position(|&l| l == id);
        for i in (0..layers.len()).rev() {
            let id = layers[i];
            let mut eh = 0;
            let mut ew = 0;
            for &cons in net.consumers(id) {
                if let Some(j) = pos_of(cons) {
                    if j <= i {
                        continue; // within-order sanity; parse validates
                    }
                    let ck = net.layer(cons).kind;
                    let (kh, sh) = ck.spatial_h();
                    let (kw, sw) = ck.spatial_w();
                    eh = eh.max(back_extend(ext[j].0, kh, sh));
                    ew = ew.max(back_extend(ext[j].1, kw, sw));
                }
            }
            ext[i] = (eh, ew);
        }

        let shapes = layers
            .iter()
            .zip(&ext)
            .map(|(&id, &(eh, ew))| {
                let of = net.layer(id).ofmap;
                let n = tile_extent(of.n, grid.tb.min(of.n));
                let h_nom = tile_extent(of.h, grid.th.min(of.h));
                let w_nom = tile_extent(of.w, grid.tw.min(of.w));
                TileShape {
                    n,
                    c: of.c,
                    h: (h_nom + eh).min(of.h),
                    w: (w_nom + ew).min(of.w),
                    h_nom,
                    w_nom,
                }
            })
            .collect();

        Self { layers: layers.to_vec(), tiling, grid, ext, shapes }
    }

    /// Bytes of the input region a tile of `layer_idx` (position within
    /// this FLG) needs from input source `input_idx`, under the network's
    /// precision. `full` requests the whole (batch-tiled) operand.
    pub fn input_tile_bytes(
        &self,
        net: &Network,
        layer_idx: usize,
        input_idx: usize,
        full: bool,
    ) -> u64 {
        let id = self.layers[layer_idx];
        let l = net.layer(id);
        let src = net.src_shape(l.inputs[input_idx]);
        let shape = &self.shapes[layer_idx];
        let prec = u64::from(net.precision());
        if full || l.kind.needs_full_input(input_idx) {
            return u64::from(shape.n)
                * u64::from(src.c)
                * u64::from(src.h)
                * u64::from(src.w)
                * prec;
        }
        let (kh, sh) = l.kind.spatial_h();
        let (kw, sw) = l.kind.spatial_w();
        let ih = in_extent(shape.h, kh, sh).min(src.h);
        let iw = in_extent(shape.w, kw, sw).min(src.w);
        u64::from(shape.n) * u64::from(src.c) * u64::from(ih) * u64::from(iw) * prec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn grid_prefers_batch() {
        let g = TileGrid::choose(8, 4, 56, 56);
        assert_eq!(g.tb, 4);
        assert_eq!(g.th * g.tw, 2);
        assert_eq!(g.tiles(), 8);
    }

    #[test]
    fn grid_balances_h_w() {
        let g = TileGrid::choose(4, 1, 56, 56);
        assert_eq!((g.th, g.tw), (2, 2)); // the paper's Fig. 2 example
        let g = TileGrid::choose(8, 1, 112, 28);
        assert!(g.th >= g.tw);
        assert_eq!(g.tiles(), 8);
    }

    #[test]
    fn transformer_grid_keeps_w_one() {
        // seq maps to h, w = 1: splitting must stay on h.
        let g = TileGrid::choose(16, 1, 512, 1);
        assert_eq!(g.tw, 1);
        assert_eq!(g.th, 16);
    }

    #[test]
    fn halo_accumulates_backwards() {
        // fig2: three 3x3 stride-1 convs fused; extensions 4, 2, 0.
        let net = zoo::fig2(1);
        let layers: Vec<_> = net.iter().map(|(id, _)| id).collect();
        let layout = FlgLayout::build(&net, &layers, 4);
        assert_eq!(layout.ext, vec![(4, 4), (2, 2), (0, 0)]);
        // 56x56 split 2x2 -> nominal 28, A's tile is 28+4 = 32.
        assert_eq!(layout.shapes[0].h, 32);
        assert_eq!(layout.shapes[0].h_nom, 28);
        assert_eq!(layout.shapes[2].h, 28);
    }

    #[test]
    fn single_layer_flg_has_no_halo() {
        let net = zoo::fig2(1);
        let layout = FlgLayout::build(&net, &[soma_model::LayerId(1)], 4);
        assert_eq!(layout.ext, vec![(0, 0)]);
    }

    #[test]
    fn tile_shapes_clamp_to_fmap() {
        let net = zoo::fig2(1);
        let layers: Vec<_> = net.iter().map(|(id, _)| id).collect();
        // Extreme tiling: tiles stay within the feature map.
        let layout = FlgLayout::build(&net, &layers, 64);
        for s in &layout.shapes {
            assert!(s.h <= 56 && s.w <= 56);
            assert!(s.h >= s.h_nom);
        }
    }

    #[test]
    fn input_bytes_include_receptive_field() {
        let net = zoo::fig2(1);
        let layers: Vec<_> = net.iter().map(|(id, _)| id).collect();
        let layout = FlgLayout::build(&net, &layers, 4);
        // Layer A tile: out 32x32 (halo), 3x3 s1 conv -> input 34x34 of 32ch.
        let bytes = layout.input_tile_bytes(&net, 0, 0, false);
        assert_eq!(bytes, 32 * 34 * 34);
    }
}
