//! Property tests for the notation internals: tile grids, halo shapes,
//! scheme round-trips and binary program round-trips.

use proptest::prelude::*;
use soma_core::{
    isa, lower, parse_lfa, read_scheme, write_scheme, Encoding, Lfa, ParsedSchedule, TileGrid,
};
use soma_model::zoo;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The chosen grid always multiplies back to the tiling number and
    /// never splits batch beyond its size.
    #[test]
    fn grid_product_and_batch_bound(
        t_pow in 0u32..10,
        n_pow in 0u32..7,
        h in 1u32..512,
        w in 1u32..512,
    ) {
        let t = 1 << t_pow;
        let n = 1 << n_pow;
        let g = TileGrid::choose(t, n, h, w);
        prop_assert_eq!(g.tiles(), t);
        prop_assert!(g.tb <= n.max(1));
    }

    /// Grid choice favours the spatially larger dimension (as long as the
    /// tiling fits it).
    #[test]
    fn grid_prefers_larger_dimension(t_pow in 1u32..8, h in 2u32..256) {
        let t = 1u32 << t_pow;
        prop_assume!(t <= h);
        // Width 1 (transformer layout): everything must land on h or batch.
        let g = TileGrid::choose(t, 1, h, 1);
        prop_assert_eq!(g.tw, 1);
        prop_assert_eq!(g.th, t);
    }

    /// Scheme text round-trips for arbitrary valid chain encodings.
    #[test]
    fn scheme_round_trip(depth in 2u32..7, seed in any::<u64>()) {
        let net = zoo::chain(1, 16, 16, depth);
        let n = net.len();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(0x5DEECE66D).wrapping_add(11);
            (s >> 20) as u32
        };
        let mut lfa = Lfa::fully_fused(&net, 1);
        for p in 1..n {
            if next() % 2 == 0 {
                lfa.flc.insert(p);
                if next() % 2 == 0 {
                    lfa.dram_cuts.insert(p);
                }
            }
        }
        lfa.tiling = (0..lfa.flg_count()).map(|_| 1 << (next() % 4)).collect();
        let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(lfa.clone())).unwrap();
        let enc = Encoding { lfa, dlsa: Some(sched.dlsa) };
        let text = write_scheme(&net, &enc);
        prop_assert_eq!(read_scheme(&net, &text).unwrap(), enc);
    }

    /// Binary programs round-trip for arbitrary valid chain encodings.
    #[test]
    fn isa_round_trip(depth in 2u32..6, tiling_pow in 0u32..4) {
        let net = zoo::chain(1, 8, 16, depth);
        let lfa = Lfa::unfused(&net, 1 << tiling_pow);
        let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(lfa)).unwrap();
        let prog = lower(&sched);
        let bytes = isa::encode(&prog);
        prop_assert_eq!(isa::decode(&bytes).unwrap(), prog);
    }

    /// Halo-enlarged tiles never shrink below nominal and never exceed
    /// the feature map.
    #[test]
    fn tile_shapes_are_bounded(depth in 2u32..6, t_pow in 0u32..6) {
        let net = zoo::chain(1, 8, 40, depth);
        let lfa = Lfa::fully_fused(&net, 1 << t_pow);
        let plan = parse_lfa(&net, &lfa).unwrap();
        for tile in &plan.tiles {
            let of = net.layer(tile.layer).ofmap;
            prop_assert!(tile.shape.h >= tile.shape.h_nom);
            prop_assert!(tile.shape.h <= of.h);
            prop_assert!(tile.shape.w <= of.w);
            prop_assert!(tile.ops > 0);
        }
    }
}
