//! The compiled evaluation engine: plan-invariant precomputation for the
//! SA hot path.
//!
//! The annealers evaluate tens of thousands of DLSAs against one frozen
//! [`ComputePlan`]. The naive path ([`simulate`](crate::simulate) +
//! [`evaluate_parts`](crate::evaluate_parts)) rebuilds the world on every
//! call: per-tile costs through the memoised core-array model (a hash
//! lookup per tile), per-tensor DRAM durations, a `Vec<Vec<u32>>` gate
//! table, four timing vectors and a full buffer profile. All of that is
//! either invariant for a frozen plan or re-usable scratch.
//!
//! [`CompiledPlan::compile`] hoists the invariants out once:
//!
//! * `tile_cost` / `tensor_dur` — flat arrays, no hashing on the hot path;
//! * the *load* gate table in flat CSR layout (loads gate the tile of
//!   their first use, which is plan-fixed; store gates move with the DLSA
//!   and live in the scratch);
//! * the energy split, DRAM byte totals and busy sums, which do not
//!   depend on the DLSA at all.
//!
//! [`CompiledPlan::simulate_cost`] then plays the two serial queues with
//! **zero heap allocation** against a caller-owned [`SimScratch`],
//! returning only the end-to-end latency — the cost-only fast path for
//! annealers that combine it with an incrementally maintained
//! [`OccupancyProfile`](soma_core::OccupancyProfile) peak.
//! [`CompiledPlan::report`] is the slow sibling that fills a full
//! [`EvalReport`], bit-identical to [`evaluate_parts`](crate::evaluate_parts)
//! (the differential suite in `tests/engine_equiv.rs` proves both claims
//! on random mutation chains).

use soma_arch::HardwareConfig;
use soma_core::{lifetime, ComputePlan, Dlsa};
use soma_model::Network;

use crate::core_array::CoreArrayModel;
use crate::report::{EnergyBreakdown, EvalReport};
use crate::timeline::{SimError, Timeline};

/// Re-usable workspace for [`CompiledPlan`] simulations. One scratch
/// serves plans of any size (vectors grow to the high-water mark and are
/// then re-used allocation-free).
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Queue position of each tensor under the current DLSA order.
    queue_pos: Vec<u32>,
    /// Start cycle of each DRAM tensor (full path only).
    tensor_start: Vec<u64>,
    /// End cycle of each DRAM tensor.
    tensor_end: Vec<u64>,
    /// Start cycle of each tile (full path only).
    tile_start: Vec<u64>,
    /// End cycle of each tile.
    tile_end: Vec<u64>,
    /// Store gates per tile (DLSA-dependent, rebuilt per call without
    /// allocation in steady state).
    store_gates: Vec<Vec<u32>>,
    /// Whether the last simulation recorded start times (guards
    /// [`CompiledPlan::timeline`] against reading a cost-only run).
    full_times: bool,
    /// Difference-array scratch for peak-occupancy queries.
    pub(crate) diff: Vec<i64>,
}

impl SimScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch for [`lifetime::peak_buffer_into`] calls that share this
    /// workspace.
    pub fn diff_mut(&mut self) -> &mut Vec<i64> {
        &mut self.diff
    }

    fn ensure(&mut self, n_tiles: usize, n_tensors: usize, full: bool) {
        self.full_times = full;
        self.queue_pos.clear();
        self.queue_pos.resize(n_tensors, u32::MAX);
        self.tensor_end.clear();
        self.tensor_end.resize(n_tensors, 0);
        self.tile_end.clear();
        self.tile_end.resize(n_tiles, 0);
        if full {
            self.tensor_start.clear();
            self.tensor_start.resize(n_tensors, 0);
            self.tile_start.clear();
            self.tile_start.resize(n_tiles, 0);
        }
        if self.store_gates.len() < n_tiles {
            self.store_gates.resize_with(n_tiles, Vec::new);
        }
        for g in self.store_gates.iter_mut().take(n_tiles) {
            g.clear();
        }
    }
}

/// A [`ComputePlan`] compiled against one hardware configuration: every
/// DLSA-invariant quantity the evaluator needs, precomputed once.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_tiles: usize,
    n_tensors: usize,
    /// Cycles of each tile (global index).
    tile_cost: Vec<u64>,
    /// DRAM transfer cycles of each tensor (canonical index).
    tensor_dur: Vec<u64>,
    /// `is_load` of each tensor.
    tensor_is_load: Vec<bool>,
    /// `anchor` of each tensor.
    tensor_anchor: Vec<u32>,
    /// CSR offsets into [`Self::load_gate_idx`], length `n_tiles + 1`.
    load_gate_off: Vec<u32>,
    /// Load tensors gating each tile (its own loads), CSR values.
    load_gate_idx: Vec<u32>,
    /// Core-array energy of the whole plan in picojoules.
    core_pj: f64,
    /// DRAM access energy of the whole plan in picojoules.
    dram_pj: f64,
    /// Total DRAM bytes loaded.
    dram_read: u64,
    /// Total DRAM bytes stored.
    dram_write: u64,
    /// Sum of tile compute durations.
    compute_busy: u64,
    /// Sum of DRAM transfer durations.
    dram_busy: u64,
    /// Total network operations (for utilisation metrics).
    net_ops: u64,
    /// Peak MAC throughput of the hardware, ops/cycle.
    peak_ops_per_cycle: u64,
}

impl CompiledPlan {
    /// Precomputes every plan-invariant quantity. The memoised
    /// `model` is consulted once per tile; subsequent evaluations never
    /// touch it.
    pub fn compile(
        net: &Network,
        plan: &ComputePlan,
        hw: &HardwareConfig,
        model: &mut CoreArrayModel<'_>,
    ) -> Self {
        let n_tiles = plan.tiles.len();
        let n_tensors = plan.dram_tensors.len();

        // One memoised-model query per tile, feeding both the cost array
        // and the energy sum (summed in the same tile order as
        // `evaluate_parts`, so the float total is bit-identical).
        let mut tile_cost = Vec::with_capacity(n_tiles);
        let mut core_pj = 0.0;
        for t in &plan.tiles {
            let c = model.cost(t);
            tile_cost.push(c.cycles);
            core_pj += c.energy_pj;
        }
        let tensor_dur: Vec<u64> =
            plan.dram_tensors.iter().map(|t| hw.dram_cycles(t.bytes).max(1)).collect();

        // Load gates in CSR layout: count, prefix, fill (ascending tensor
        // index within each tile, matching the naive gate-table order).
        let mut load_gate_off = vec![0u32; n_tiles + 1];
        for t in &plan.dram_tensors {
            if t.is_load {
                load_gate_off[t.anchor as usize + 1] += 1;
            }
        }
        for i in 0..n_tiles {
            load_gate_off[i + 1] += load_gate_off[i];
        }
        let mut load_gate_idx = vec![0u32; *load_gate_off.last().unwrap_or(&0) as usize];
        let mut cursor = load_gate_off.clone();
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                let slot = &mut cursor[t.anchor as usize];
                load_gate_idx[*slot as usize] = i as u32;
                *slot += 1;
            }
        }

        let mut dram_read = 0u64;
        let mut dram_write = 0u64;
        for t in &plan.dram_tensors {
            if t.is_load {
                dram_read += t.bytes;
            } else {
                dram_write += t.bytes;
            }
        }
        let dram_pj = hw.energy.dram(dram_read, dram_write);

        Self {
            n_tiles,
            n_tensors,
            compute_busy: tile_cost.iter().sum(),
            dram_busy: tensor_dur.iter().sum(),
            tile_cost,
            tensor_dur,
            tensor_is_load: plan.dram_tensors.iter().map(|t| t.is_load).collect(),
            tensor_anchor: plan.dram_tensors.iter().map(|t| t.anchor).collect(),
            load_gate_off,
            load_gate_idx,
            core_pj,
            dram_pj,
            dram_read,
            dram_write,
            net_ops: net.total_ops(),
            peak_ops_per_cycle: hw.peak_ops_per_cycle(),
        }
    }

    /// Number of tiles in the compiled plan.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Number of DRAM tensors in the compiled plan.
    pub fn n_tensors(&self) -> usize {
        self.n_tensors
    }

    /// Total energy (core + DRAM) of any schedule of this plan, in
    /// picojoules — energy does not depend on the DLSA.
    pub fn energy_total_pj(&self) -> f64 {
        self.core_pj + self.dram_pj
    }

    /// Total DRAM bytes moved.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read + self.dram_write
    }

    /// Plays the two serial queues with zero heap allocation, writing
    /// times into `scratch`. With `FULL`, also records start times (the
    /// [`Timeline`] view); without, only what latency needs.
    fn run_queues<const FULL: bool>(
        &self,
        dlsa: &Dlsa,
        scratch: &mut SimScratch,
    ) -> Result<u64, SimError> {
        let n_tensors = self.n_tensors;
        let n_tiles = self.n_tiles;
        scratch.ensure(n_tiles, n_tensors, FULL);

        for (k, &ti) in dlsa.order.iter().enumerate() {
            scratch.queue_pos[ti as usize] = k as u32;
        }
        // Store gates move with the DLSA: rebuild into the scratch.
        for (i, &end) in dlsa.end.iter().enumerate() {
            if !self.tensor_is_load[i] && (end as usize) < n_tiles {
                scratch.store_gates[end as usize].push(i as u32);
            }
        }

        let mut di = 0usize; // next queue position to serve
        let mut ci = 0usize; // next tile to run
        let mut prev_tensor_end = 0u64;
        let mut prev_tile_end = 0u64;

        while di < n_tensors || ci < n_tiles {
            let mut progressed = false;

            // Serve as many DRAM tensors as currently possible.
            while di < n_tensors {
                let ti = dlsa.order[di] as usize;
                let gate_tile: Option<usize> = if self.tensor_is_load[ti] {
                    let s = dlsa.start[ti] as usize;
                    if s == 0 {
                        None
                    } else {
                        Some(s - 1)
                    }
                } else {
                    Some(self.tensor_anchor[ti] as usize)
                };
                let gate_time = match gate_tile {
                    None => 0,
                    Some(g) if g < ci => scratch.tile_end[g],
                    Some(_) => break, // gating tile not yet executed
                };
                let start = prev_tensor_end.max(gate_time);
                if FULL {
                    scratch.tensor_start[ti] = start;
                }
                prev_tensor_end = start + self.tensor_dur[ti];
                scratch.tensor_end[ti] = prev_tensor_end;
                di += 1;
                progressed = true;
            }

            // Run as many tiles as currently possible.
            while ci < n_tiles {
                let mut ready = prev_tile_end;
                let mut blocked = false;
                let gates = &self.load_gate_idx
                    [self.load_gate_off[ci] as usize..self.load_gate_off[ci + 1] as usize];
                for &g in gates.iter().chain(&scratch.store_gates[ci]) {
                    if (scratch.queue_pos[g as usize] as usize) < di {
                        ready = ready.max(scratch.tensor_end[g as usize]);
                    } else {
                        blocked = true;
                        break;
                    }
                }
                if blocked {
                    break;
                }
                if FULL {
                    scratch.tile_start[ci] = ready;
                }
                prev_tile_end = ready + self.tile_cost[ci];
                scratch.tile_end[ci] = prev_tile_end;
                ci += 1;
                progressed = true;
            }

            if !progressed {
                return Err(SimError::Deadlock { dram_pos: di, tile: ci });
            }
        }

        Ok(prev_tile_end.max(prev_tensor_end))
    }

    /// The cost-only fast path: end-to-end latency of `dlsa`, zero heap
    /// allocation once `scratch` has warmed up. Energy is invariant
    /// ([`energy_total_pj`](Self::energy_total_pj)) and the buffer peak
    /// comes from an incrementally maintained
    /// [`OccupancyProfile`](soma_core::OccupancyProfile) (or
    /// [`lifetime::peak_buffer_into`] against the same scratch), so this
    /// is everything a `(cost, peak_buffer)` evaluation needs.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] exactly when [`crate::simulate`] deadlocks.
    pub fn simulate_cost(&self, dlsa: &Dlsa, scratch: &mut SimScratch) -> Result<u64, SimError> {
        self.run_queues::<false>(dlsa, scratch)
    }

    /// The full simulation into the scratch (start *and* end times).
    /// Combine with [`timeline`](Self::timeline) to materialise a
    /// [`Timeline`]; the split lets callers run many full simulations
    /// against one scratch and copy out only the winners.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] exactly when [`crate::simulate`] deadlocks.
    pub fn simulate_into(&self, dlsa: &Dlsa, scratch: &mut SimScratch) -> Result<u64, SimError> {
        self.run_queues::<true>(dlsa, scratch)
    }

    /// Copies the last [`simulate_into`](Self::simulate_into) result out
    /// of the scratch as an owned [`Timeline`], identical to what
    /// [`crate::simulate`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the scratch's last simulation was the cost-only
    /// [`simulate_cost`](Self::simulate_cost), which records no start
    /// times — the timeline would silently mix stale data otherwise.
    pub fn timeline(&self, latency: u64, scratch: &SimScratch) -> Timeline {
        assert!(
            scratch.full_times,
            "timeline() needs simulate_into(); the scratch's last run was cost-only"
        );
        Timeline {
            tensor_start: scratch.tensor_start[..self.n_tensors].to_vec(),
            tensor_end: scratch.tensor_end[..self.n_tensors].to_vec(),
            tile_start: scratch.tile_start[..self.n_tiles].to_vec(),
            tile_end: scratch.tile_end[..self.n_tiles].to_vec(),
            latency,
            dram_busy: self.dram_busy,
            compute_busy: self.compute_busy,
        }
    }

    /// Full evaluation through the compiled engine: bit-identical to
    /// [`evaluate_parts`](crate::evaluate_parts) on the same inputs (the
    /// cold path for initial/final schemes; annealers use
    /// [`simulate_cost`](Self::simulate_cost)).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for deadlocked DRAM tensor orders.
    pub fn report(
        &self,
        plan: &ComputePlan,
        dlsa: &Dlsa,
        scratch: &mut SimScratch,
    ) -> Result<EvalReport, SimError> {
        let latency = self.simulate_into(dlsa, scratch)?;
        let tl = self.timeline(latency, scratch);

        let peak = self.peak_ops_per_cycle as f64;
        let util = |cycles: u64| -> f64 {
            if cycles == 0 {
                0.0
            } else {
                self.net_ops as f64 / (peak * cycles as f64)
            }
        };
        let bound = tl.compute_busy.max(tl.dram_busy);

        let profile = lifetime::buffer_profile(plan, dlsa);
        let peak_buffer = profile.iter().copied().max().unwrap_or(0);
        let mut weighted = 0u128;
        let mut total_time = 0u128;
        for (i, &usage) in profile.iter().enumerate() {
            let dur = (tl.tile_end[i] - tl.tile_start[i]) as u128;
            weighted += usage as u128 * dur;
            total_time += dur;
        }
        let avg_buffer = weighted.checked_div(total_time).unwrap_or(0) as u64;

        Ok(EvalReport {
            latency_cycles: tl.latency,
            energy: EnergyBreakdown { core_pj: self.core_pj, dram_pj: self.dram_pj },
            compute_util: util(tl.latency),
            dram_util: if tl.latency == 0 { 0.0 } else { tl.dram_busy as f64 / tl.latency as f64 },
            theoretical_max_util: util(bound),
            peak_buffer,
            avg_buffer,
            dram_bytes: self.dram_read + self.dram_write,
            timeline: tl,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::evaluate_parts;
    use crate::timeline::simulate;
    use soma_core::{parse_lfa, Lfa};
    use soma_model::zoo;

    fn setup(tiling: u32, fused: bool) -> (soma_model::Network, ComputePlan, Dlsa) {
        let net = zoo::fig2(1);
        let lfa = if fused { Lfa::fully_fused(&net, tiling) } else { Lfa::unfused(&net, tiling) };
        let plan = parse_lfa(&net, &lfa).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        (net, plan, dlsa)
    }

    #[test]
    fn compiled_timeline_matches_naive_simulate() {
        for (tiling, fused) in [(1, false), (4, false), (4, true), (8, true)] {
            let (_, plan, dlsa) = setup(tiling, fused);
            let hw = HardwareConfig::edge();
            let mut m = CoreArrayModel::new(&hw);
            let naive = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
            let cp = CompiledPlan::compile(&zoo::fig2(1), &plan, &hw, &mut m);
            let mut scratch = SimScratch::new();
            let latency = cp.simulate_into(&dlsa, &mut scratch).unwrap();
            assert_eq!(cp.timeline(latency, &scratch), naive, "tiling {tiling} fused {fused}");
            assert_eq!(cp.simulate_cost(&dlsa, &mut scratch).unwrap(), naive.latency);
        }
    }

    #[test]
    fn compiled_report_matches_naive_report() {
        let (net, plan, dlsa) = setup(4, true);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let naive = evaluate_parts(&net, &plan, &dlsa, &hw, &mut m).unwrap();
        let cp = CompiledPlan::compile(&net, &plan, &hw, &mut m);
        let mut scratch = SimScratch::new();
        let compiled = cp.report(&plan, &dlsa, &mut scratch).unwrap();
        assert_eq!(compiled, naive);
        assert_eq!(compiled.energy.total_pj().to_bits(), naive.energy.total_pj().to_bits());
    }

    #[test]
    fn compiled_detects_the_same_deadlock() {
        let (net, plan, mut dlsa) = setup(2, false);
        let last_store = plan
            .dram_tensors
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !t.is_load)
            .map(|(i, _)| i as u32)
            .unwrap();
        let pos = dlsa.order.iter().position(|&o| o == last_store).unwrap();
        dlsa.order.remove(pos);
        dlsa.order.insert(0, last_store);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let naive = simulate(&plan, &dlsa, &hw, &mut m).unwrap_err();
        let cp = CompiledPlan::compile(&net, &plan, &hw, &mut m);
        let mut scratch = SimScratch::new();
        assert_eq!(cp.simulate_cost(&dlsa, &mut scratch).unwrap_err(), naive);
    }

    #[test]
    fn one_scratch_serves_plans_of_different_sizes() {
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let mut scratch = SimScratch::new();
        for tiling in [8, 2, 4, 1] {
            let (net, plan, dlsa) = setup(tiling, false);
            let naive = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
            let cp = CompiledPlan::compile(&net, &plan, &hw, &mut m);
            assert_eq!(cp.simulate_cost(&dlsa, &mut scratch).unwrap(), naive.latency);
        }
    }

    #[test]
    fn energy_is_dlsa_invariant() {
        let (net, plan, dlsa) = setup(4, false);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let naive = evaluate_parts(&net, &plan, &dlsa, &hw, &mut m).unwrap();
        let cp = CompiledPlan::compile(&net, &plan, &hw, &mut m);
        assert_eq!(cp.energy_total_pj().to_bits(), naive.energy.total_pj().to_bits());
        assert_eq!(cp.dram_bytes(), naive.dram_bytes);
        assert_eq!(cp.n_tiles(), plan.tiles.len());
        assert_eq!(cp.n_tensors(), plan.dram_tensors.len());
    }
}
