//! Intra-tile scheduling and evaluation: the Core Array Scheduler &
//! Evaluator of the paper's Sec. V-D.
//!
//! For one computing tile (ifmaps and weights already in the GBUF, ofmap
//! written back to the GBUF), the scheduler picks how the core group
//! blocks the tile through the per-core L0 buffers, choosing among
//! stationarity candidates to minimise GBUF traffic; the evaluator derives
//! cycles (compute vs GBUF-bandwidth bound) and energy.
//!
//! The paper adopts "a classic scheduler and evaluator" [Timeloop,
//! MAESTRO] here; this is an analytical equivalent exposing the same two
//! behaviours the experiments rely on: small tiles lose PE-array
//! utilisation to lane quantisation, and small tiles lose GBUF traffic to
//! re-fetching (less on-chip reuse). Results are memoised per
//! (layer, tile shape).

use std::collections::HashMap;

use soma_arch::HardwareConfig;
use soma_core::{Tile, TileShape};

/// Cost of one computing tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileCost {
    /// Cycles the tile occupies the core group.
    pub cycles: u64,
    /// Energy in picojoules (MACs/vector ops + L0 + GBUF).
    pub energy_pj: f64,
    /// GBUF bytes moved (for diagnostics).
    pub gbuf_bytes: u64,
}

/// Memoising intra-tile evaluator bound to one hardware configuration.
#[derive(Debug)]
pub struct CoreArrayModel<'hw> {
    hw: &'hw HardwareConfig,
    cache: HashMap<(u32, TileShape), TileCost>,
}

/// Lane-quantisation efficiency: how well `work` items fill `lanes`
/// parallel lanes (`work / (ceil(work/lanes) * lanes)`).
fn quantisation(work: u64, lanes: u64) -> f64 {
    if work == 0 || lanes == 0 {
        return 1.0;
    }
    let waves = work.div_ceil(lanes);
    work as f64 / (waves * lanes) as f64
}

impl<'hw> CoreArrayModel<'hw> {
    /// Creates a model for the given hardware.
    pub fn new(hw: &'hw HardwareConfig) -> Self {
        Self { hw, cache: HashMap::new() }
    }

    /// The hardware this model evaluates against.
    pub fn hardware(&self) -> &HardwareConfig {
        self.hw
    }

    /// Number of memoised entries (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Evaluates one tile, memoised on `(layer, shape)`.
    pub fn cost(&mut self, tile: &Tile) -> TileCost {
        let key = (tile.layer.0, tile.shape);
        if let Some(&c) = self.cache.get(&key) {
            return c;
        }
        let c = if tile.on_pe { self.pe_cost(tile) } else { self.vector_cost(tile) };
        self.cache.insert(key, c);
        c
    }

    /// GEMM/Conv tile on the PE array.
    fn pe_cost(&self, tile: &Tile) -> TileCost {
        let hw = self.hw;
        let macs = tile.ops / 2;
        // Spatial positions spread across cores; output channels across
        // each core's KC lanes.
        let spatial = u64::from(tile.shape.n) * u64::from(tile.shape.h) * u64::from(tile.shape.w);
        let eff_c = quantisation(u64::from(tile.shape.c), u64::from(hw.kc_parallel));
        let eff_s = quantisation(spatial, u64::from(hw.cores) * u64::from(hw.spatial_parallel));
        let eff = (eff_c * eff_s).max(1e-3);
        let compute_cycles = ((macs as f64) / (hw.macs_per_cycle as f64 * eff)).ceil() as u64;

        // GBUF traffic under the best stationarity candidate.
        let w = tile.weight_bytes;
        let i = tile.in_bytes;
        let o = tile.out_bytes;
        let w_passes = if w == 0 { 1 } else { w.div_ceil(hw.wl0_bytes).max(1) };
        let i_passes = i.div_ceil(hw.al0_bytes).max(1);
        // Weight-stationary: ifmaps re-streamed once per weight block.
        let ws = w + i * w_passes + o;
        // Input-stationary: weights re-streamed once per ifmap block.
        let is = i + w * i_passes + o;
        let traffic = ws.min(is);
        let gbuf_cycles = hw.gbuf_cycles(traffic);

        let cycles = compute_cycles.max(gbuf_cycles).max(1);
        // L0 energy: one ifmap byte and one weight byte per MAC (INT8),
        // partial sums accumulate in registers; ofmap drains once.
        let l0_bytes = 2 * macs + o;
        let energy_pj = macs as f64 * hw.energy.mac_pj
            + traffic as f64 * hw.energy.gbuf_pj_per_byte
            + l0_bytes as f64 * hw.energy.l0_pj_per_byte;
        TileCost { cycles, energy_pj, gbuf_bytes: traffic }
    }

    /// Pooling/element-wise/normalisation tile on the vector unit.
    fn vector_cost(&self, tile: &Tile) -> TileCost {
        let hw = self.hw;
        let compute_cycles = tile.ops.div_ceil(hw.vector_lanes);
        let traffic = tile.in_bytes + tile.out_bytes;
        let gbuf_cycles = hw.gbuf_cycles(traffic);
        let cycles = compute_cycles.max(gbuf_cycles).max(1);
        let energy_pj =
            tile.ops as f64 * hw.energy.vector_pj + traffic as f64 * hw.energy.gbuf_pj_per_byte;
        TileCost { cycles, energy_pj, gbuf_bytes: traffic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_core::{parse_lfa, Lfa};
    use soma_model::zoo;

    fn tiles(tiling: u32) -> Vec<Tile> {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::fully_fused(&net, tiling)).unwrap();
        plan.tiles
    }

    #[test]
    fn quantisation_properties() {
        assert_eq!(quantisation(128, 128), 1.0);
        assert_eq!(quantisation(64, 128), 0.5);
        assert!((quantisation(129, 128) - 129.0 / 256.0).abs() < 1e-12);
        assert_eq!(quantisation(0, 128), 1.0);
    }

    #[test]
    fn memoisation_hits() {
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let ts = tiles(4);
        for t in &ts {
            m.cost(t);
        }
        // 3 layers x 1 distinct shape each.
        assert_eq!(m.cache_len(), 3);
    }

    #[test]
    fn coarser_tiles_are_more_efficient() {
        // Total cycles for the same work must not increase with coarser
        // tiling (more reuse, better lane fill).
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let total = |tiling: u32, m: &mut CoreArrayModel| -> u64 {
            tiles(tiling).iter().map(|t| m.cost(t).cycles).sum()
        };
        let coarse = total(1, &mut m);
        let fine = total(64, &mut m);
        assert!(fine > coarse, "fine tiling {fine} should cost more cycles than coarse {coarse}");
    }

    #[test]
    fn vector_tiles_do_not_use_pe() {
        let net = zoo::fig4(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, 1)).unwrap();
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let pool_tile = plan.tiles.iter().find(|t| !t.on_pe).expect("fig4 has a pool");
        let c = m.cost(pool_tile);
        assert!(c.cycles >= 1);
        assert!(c.energy_pj > 0.0);
    }

    #[test]
    fn energy_scales_with_work() {
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let ts = tiles(4);
        let big = m.cost(&ts[2]); // layer C: 128 output channels
        let small = m.cost(&ts[0]); // layer A: 64 channels
        assert!(big.energy_pj > small.energy_pj * 0.5);
    }
}
