//! ASCII execution graphs in the style of the paper's DRAM-COMPUTE
//! diagrams (Fig. 4 right, Fig. 8).

use soma_core::{lifetime, ComputePlan, DramKind, ParsedSchedule};
use soma_model::Network;

use crate::timeline::Timeline;

fn tensor_label(net: &Network, kind: DramKind) -> String {
    match kind {
        DramKind::Weight(l) => format!("W{}", net.layer(l).name),
        DramKind::Ifmap { layer, tile, .. } => format!("I{}{}", net.layer(layer).name, tile + 1),
        DramKind::Ofmap { layer, tile } => format!("O{}{}", net.layer(layer).name, tile + 1),
    }
}

fn tile_label(net: &Network, plan: &ComputePlan, pos: usize) -> String {
    let t = &plan.tiles[pos];
    format!("{}{}", net.layer(t.layer).name, t.tile_idx + 1)
}

/// Renders a two-row (DRAM / COMPUTE) execution graph over `width`
/// character columns, each block labelled like the paper (`WA`, `IA1`,
/// `OC4`; tiles `A1`, `B2`, ...). Idle time shows as `.`.
pub fn render_gantt(net: &Network, sched: &ParsedSchedule, tl: &Timeline, width: usize) -> String {
    let width = width.max(20);
    let latency = tl.latency.max(1);
    let col =
        |cycle: u64| -> usize { ((cycle as u128 * width as u128) / latency as u128) as usize };

    let mut dram_row = vec!['.'; width + 1];
    let mut dram_text = String::new();
    for (k, &ti) in sched.dlsa.order.iter().enumerate() {
        let i = ti as usize;
        let (s, e) = (tl.tensor_start[i], tl.tensor_end[i]);
        let (a, b) = (col(s), col(e).max(col(s) + 1));
        let ch = if sched.plan.dram_tensors[i].is_load { '#' } else { '=' };
        for slot in dram_row.iter_mut().take(b.min(width)).skip(a) {
            *slot = ch;
        }
        if k > 0 {
            dram_text.push(' ');
        }
        dram_text.push_str(&tensor_label(net, sched.plan.dram_tensors[i].kind));
    }

    let mut comp_row = vec!['.'; width + 1];
    let mut comp_text = String::new();
    for pos in 0..sched.plan.tiles.len() {
        let (s, e) = (tl.tile_start[pos], tl.tile_end[pos]);
        let (a, b) = (col(s), col(e).max(col(s) + 1));
        for slot in comp_row.iter_mut().take(b.min(width)).skip(a) {
            *slot = '#';
        }
        if pos > 0 {
            comp_text.push(' ');
        }
        comp_text.push_str(&tile_label(net, &sched.plan, pos));
    }

    // BUFFER row: per-tile occupancy quantised to a 9-level sparkline,
    // painted over each tile's time span (the paper's Fig. 4 bottom row).
    let profile = lifetime::buffer_profile(&sched.plan, &sched.dlsa);
    let peak = profile.iter().copied().max().unwrap_or(0).max(1);
    let mut buf_row = vec![' '; width + 1];
    for (pos, &usage) in profile.iter().enumerate() {
        let (a, b) =
            (col(tl.tile_start[pos]), col(tl.tile_end[pos]).max(col(tl.tile_start[pos]) + 1));
        let level = ((usage as u128 * 8) / peak as u128) as usize;
        let ch = [' ', '1', '2', '3', '4', '5', '6', '7', '8'][level.min(8)];
        for slot in buf_row.iter_mut().take(b.min(width)).skip(a) {
            *slot = ch;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("latency: {} cycles\n", tl.latency));
    out.push_str("DRAM    |");
    out.extend(dram_row.into_iter().take(width));
    out.push_str("|\nCOMPUTE |");
    out.extend(comp_row.into_iter().take(width));
    out.push_str("|\nBUFFER  |");
    out.extend(buf_row.into_iter().take(width));
    out.push_str(&format!("| peak {peak} B\n"));
    out.push_str(&format!("dram order:   {dram_text}\n"));
    out.push_str(&format!("compute order: {comp_text}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_array::CoreArrayModel;
    use crate::timeline::simulate;
    use soma_arch::HardwareConfig;
    use soma_core::{Encoding, Lfa};
    use soma_model::zoo;

    #[test]
    fn renders_rows_and_labels() {
        let net = zoo::fig2(1);
        let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 2))).unwrap();
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let tl = simulate(&sched.plan, &sched.dlsa, &hw, &mut m).unwrap();
        let g = render_gantt(&net, &sched, &tl, 60);
        assert!(g.contains("DRAM"));
        assert!(g.contains("COMPUTE"));
        assert!(g.contains("BUFFER"));
        assert!(g.contains("peak"));
        assert!(g.contains("WA"));
        assert!(g.contains("A1"));
        assert!(g.lines().count() >= 6);
    }

    #[test]
    fn width_is_clamped() {
        let net = zoo::fig2(1);
        let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 1))).unwrap();
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let tl = simulate(&sched.plan, &sched.dlsa, &hw, &mut m).unwrap();
        let g = render_gantt(&net, &sched, &tl, 1);
        assert!(g.contains('|'));
    }
}
