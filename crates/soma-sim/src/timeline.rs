//! The DRAM/COMPUTE timeline simulation (paper Sec. V-D).
//!
//! Two serial resources advance together:
//!
//! * **DRAM queue** — tensors execute strictly in DRAM Tensor Order. A
//!   tensor starts when (1) its predecessor finished, (2) for loads, the
//!   tile before its living-duration `Start` has finished (`Start = 0`
//!   starts immediately), (3) for stores, its producing tile has finished.
//! * **Compute queue** — tiles execute strictly in computing order. A tile
//!   starts when (1) the previous tile finished, (2) every load it
//!   consumes has completed, (3) every store whose `End` equals this tile
//!   has completed.
//!
//! Mutual waiting that can never resolve (a load queued behind a store of
//! a much later tile it itself gates) is reported as [`SimError::Deadlock`]
//! — such DLSAs are invalid schemes.

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_core::{ComputePlan, Dlsa};

use crate::core_array::CoreArrayModel;

/// Simulation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The DRAM queue and compute queue wait on each other forever.
    Deadlock {
        /// Queue position (into the DLSA order) of the stuck DRAM tensor.
        dram_pos: usize,
        /// Global index of the stuck compute tile.
        tile: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { dram_pos, tile } => write!(
                f,
                "schedule deadlocks: DRAM queue position {dram_pos} and tile {tile} wait on each other"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Exact start/end times of every tensor and tile, in cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Start cycle of each DRAM tensor (canonical index).
    pub tensor_start: Vec<u64>,
    /// End cycle of each DRAM tensor (canonical index).
    pub tensor_end: Vec<u64>,
    /// Start cycle of each compute tile (global index).
    pub tile_start: Vec<u64>,
    /// End cycle of each compute tile (global index).
    pub tile_end: Vec<u64>,
    /// Total latency: when both queues have drained.
    pub latency: u64,
    /// Sum of DRAM transfer durations (busy cycles).
    pub dram_busy: u64,
    /// Sum of tile compute durations (busy cycles).
    pub compute_busy: u64,
}

impl Timeline {
    /// Cycles during which the compute queue sits idle between tiles.
    pub fn compute_stall(&self) -> u64 {
        self.latency.saturating_sub(self.compute_busy)
    }
}

/// Plays the two queues forward. `costs` gives each tile's duration.
///
/// # Errors
///
/// [`SimError::Deadlock`] if the scheme's DRAM Tensor Order makes the two
/// queues wait on each other.
pub fn simulate(
    plan: &ComputePlan,
    dlsa: &Dlsa,
    hw: &HardwareConfig,
    model: &mut CoreArrayModel<'_>,
) -> Result<Timeline, SimError> {
    let n_tensors = plan.dram_tensors.len();
    let n_tiles = plan.tiles.len();

    let tile_cost: Vec<u64> = plan.tiles.iter().map(|t| model.cost(t).cycles).collect();
    let tensor_dur: Vec<u64> =
        plan.dram_tensors.iter().map(|t| hw.dram_cycles(t.bytes).max(1)).collect();

    // Gating tensors per tile: its own loads + stores with End == tile.
    let mut gates: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
    for (i, t) in plan.dram_tensors.iter().enumerate() {
        if t.is_load {
            gates[t.anchor as usize].push(i as u32);
        } else {
            let end = dlsa.end[i] as usize;
            if end < n_tiles {
                gates[end].push(i as u32);
            }
        }
    }
    // Queue position of each tensor, to know whether a gate has been
    // simulated yet.
    let mut queue_pos = vec![usize::MAX; n_tensors];
    for (k, &ti) in dlsa.order.iter().enumerate() {
        queue_pos[ti as usize] = k;
    }

    let mut tensor_start = vec![0u64; n_tensors];
    let mut tensor_end = vec![0u64; n_tensors];
    let mut tile_start = vec![0u64; n_tiles];
    let mut tile_end = vec![0u64; n_tiles];

    let mut di = 0usize; // next queue position to serve
    let mut ci = 0usize; // next tile to run
    let mut prev_tensor_end = 0u64;
    let mut prev_tile_end = 0u64;

    while di < n_tensors || ci < n_tiles {
        let mut progressed = false;

        // Serve as many DRAM tensors as currently possible.
        while di < n_tensors {
            let ti = dlsa.order[di] as usize;
            let t = &plan.dram_tensors[ti];
            let gate_tile: Option<usize> = if t.is_load {
                let s = dlsa.start[ti] as usize;
                if s == 0 {
                    None
                } else {
                    Some(s - 1)
                }
            } else {
                Some(t.anchor as usize)
            };
            let gate_time = match gate_tile {
                None => 0,
                Some(g) if g < ci => tile_end[g],
                Some(_) => break, // gating tile not yet executed
            };
            let start = prev_tensor_end.max(gate_time);
            tensor_start[ti] = start;
            prev_tensor_end = start + tensor_dur[ti];
            tensor_end[ti] = prev_tensor_end;
            di += 1;
            progressed = true;
        }

        // Run as many tiles as currently possible.
        while ci < n_tiles {
            let mut ready = prev_tile_end;
            let mut blocked = false;
            for &g in &gates[ci] {
                if queue_pos[g as usize] < di {
                    ready = ready.max(tensor_end[g as usize]);
                } else {
                    blocked = true;
                    break;
                }
            }
            if blocked {
                break;
            }
            tile_start[ci] = ready;
            prev_tile_end = ready + tile_cost[ci];
            tile_end[ci] = prev_tile_end;
            ci += 1;
            progressed = true;
        }

        if !progressed {
            return Err(SimError::Deadlock { dram_pos: di, tile: ci });
        }
    }

    let latency = prev_tile_end.max(prev_tensor_end);
    Ok(Timeline {
        tensor_start,
        tensor_end,
        tile_start,
        tile_end,
        latency,
        dram_busy: tensor_dur.iter().sum(),
        compute_busy: tile_cost.iter().sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_core::{parse_lfa, Dlsa, Lfa};
    use soma_model::zoo;

    fn setup(tiling: u32) -> (soma_model::Network, ComputePlan, Dlsa) {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, tiling)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        (net, plan, dlsa)
    }

    #[test]
    fn simulation_completes_and_orders_hold() {
        let (_, plan, dlsa) = setup(4);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let tl = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        // Tiles strictly ordered.
        for w in tl.tile_end.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Queue order holds for tensors.
        let mut prev = 0;
        for &ti in &dlsa.order {
            assert!(tl.tensor_start[ti as usize] >= prev);
            prev = tl.tensor_end[ti as usize];
        }
        assert!(tl.latency >= tl.compute_busy);
        assert!(tl.latency >= tl.dram_busy);
    }

    #[test]
    fn loads_complete_before_their_tile() {
        let (_, plan, dlsa) = setup(4);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let tl = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                assert!(
                    tl.tensor_end[i] <= tl.tile_start[t.anchor as usize],
                    "load {i} finishes after its consumer starts"
                );
            } else {
                assert!(tl.tensor_start[i] >= tl.tile_end[t.anchor as usize]);
            }
        }
    }

    #[test]
    fn store_end_constraint_blocks_tile() {
        let (_, plan, mut dlsa) = setup(4);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let base = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        // Tighten every store to End = anchor + 1: the very next tile must
        // wait for the store; latency cannot improve.
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if !t.is_load {
                dlsa.end[i] = t.anchor + 1;
            }
        }
        let tight = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        assert!(tight.latency >= base.latency);
    }

    #[test]
    fn eager_prefetch_cannot_hurt_latency() {
        let (_, plan, mut dlsa) = setup(4);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let base = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                dlsa.start[i] = 0;
            }
        }
        let eager = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        assert!(eager.latency <= base.latency);
    }

    #[test]
    fn deadlock_is_detected() {
        let (_, plan, mut dlsa) = setup(2);
        // Put the last store first in the queue while forcing an early
        // tile to wait for it: loads for tile 0 now sit behind a store
        // that needs the final tile -> deadlock.
        let last_store = plan
            .dram_tensors
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| !t.is_load)
            .map(|(i, _)| i as u32)
            .unwrap();
        let pos = dlsa.order.iter().position(|&o| o == last_store).unwrap();
        dlsa.order.remove(pos);
        dlsa.order.insert(0, last_store);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        assert!(matches!(simulate(&plan, &dlsa, &hw, &mut m), Err(SimError::Deadlock { .. })));
    }
}
