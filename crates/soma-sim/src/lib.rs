//! The SoMa evaluator (paper Sec. V-D): an accurate, deterministic
//! simulator for schedules expressed in the tensor-centric notation.
//!
//! Evaluation is local-to-global:
//!
//! 1. [`core_array`] assesses each computing tile in isolation — how the
//!    core group divides it into sub-tiles, the GBUF/L0 traffic this
//!    causes, the resulting cycles and energy (a classic intra-tile
//!    mapper in the Timeloop/MAESTRO mould, memoised per layer/shape).
//! 2. [`timeline`] plays the serial DRAM-tensor queue against the serial
//!    compute-tile queue under the paper's start conditions, yielding
//!    exact start/end times, the total latency, and stall structure.
//! 3. [`report`] rolls everything up into an [`EvalReport`] with the
//!    quantities Fig. 6 plots (energy split, utilisations, buffer usage,
//!    theoretical maximum utilisation).
//!
//! For search loops that evaluate thousands of DLSAs against one frozen
//! plan, [`compiled`] hoists every plan-invariant quantity out of the
//! loop: [`CompiledPlan`] precomputes tile costs, tensor durations, the
//! load-gate CSR table and the energy split once, and
//! [`CompiledPlan::simulate_cost`] replays the queues with zero heap
//! allocation against a re-usable [`SimScratch`].
//!
//! ```
//! use soma_arch::HardwareConfig;
//! use soma_core::{Encoding, Lfa, ParsedSchedule};
//! use soma_model::zoo;
//! use soma_sim::evaluate;
//!
//! let net = zoo::fig2(1);
//! let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 4)))?;
//! let report = evaluate(&net, &sched, &HardwareConfig::edge())?;
//! assert!(report.latency_cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compiled;
pub mod core_array;
pub mod gantt;
pub mod report;
pub mod stall;
pub mod timeline;

pub use compiled::{CompiledPlan, SimScratch};
pub use core_array::{CoreArrayModel, TileCost};
pub use gantt::render_gantt;
pub use report::{evaluate, evaluate_parts, evaluate_with_model, EnergyBreakdown, EvalReport};
pub use stall::{attribute_stalls, summarize, Stall, StallCause, StallSummary};
pub use timeline::{simulate, SimError, Timeline};
