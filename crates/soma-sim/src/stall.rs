//! Compute-stall attribution: *why* is the core group waiting?
//!
//! The paper's Sec. VII-B2 analysis reasons about which DRAM tensors cause
//! which stalls ("precise surgical strikes on some key tensors"). This
//! module reconstructs that attribution from a simulated timeline: every
//! gap before a compute tile is charged to the DRAM tensor whose
//! completion released the tile (a load the tile consumes, or a store
//! whose `End` gates it).

use serde::{Deserialize, Serialize};
use soma_core::{ComputePlan, Dlsa, DramKind};

use crate::timeline::Timeline;

/// What a compute gap was waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallCause {
    /// Waiting for a load (weights or ifmap) the tile consumes.
    Load {
        /// Canonical DRAM-tensor index.
        tensor: u32,
        /// What the tensor is.
        kind: DramKind,
    },
    /// Waiting for a store whose living-duration `End` gates the tile.
    Store {
        /// Canonical DRAM-tensor index.
        tensor: u32,
        /// What the tensor is.
        kind: DramKind,
    },
}

/// One attributed compute stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stall {
    /// The tile whose start was delayed.
    pub tile: u32,
    /// Stalled cycles (gap between previous tile's end and this start).
    pub cycles: u64,
    /// The releasing tensor.
    pub cause: StallCause,
}

/// Aggregate stall statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StallSummary {
    /// Total stalled cycles attributed to weight loads.
    pub weight_cycles: u64,
    /// Total stalled cycles attributed to ifmap loads.
    pub ifmap_cycles: u64,
    /// Total stalled cycles attributed to ofmap stores.
    pub store_cycles: u64,
}

impl StallSummary {
    /// Total attributed stall cycles.
    pub fn total(&self) -> u64 {
        self.weight_cycles + self.ifmap_cycles + self.store_cycles
    }
}

/// Attributes every compute gap in `tl` to the gating DRAM tensor that
/// finished last before the tile started.
pub fn attribute_stalls(plan: &ComputePlan, dlsa: &Dlsa, tl: &Timeline) -> Vec<Stall> {
    let n_tiles = plan.tiles.len();
    // Gating tensors per tile, as in the simulator.
    let mut gates: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
    for (i, t) in plan.dram_tensors.iter().enumerate() {
        if t.is_load {
            gates[t.anchor as usize].push(i as u32);
        } else {
            let end = dlsa.end[i] as usize;
            if end < n_tiles {
                gates[end].push(i as u32);
            }
        }
    }

    let mut out = Vec::new();
    let mut prev_end = 0u64;
    for (tile, tile_gates) in gates.iter().enumerate() {
        let start = tl.tile_start[tile];
        let gap = start.saturating_sub(prev_end);
        prev_end = tl.tile_end[tile];
        if gap == 0 {
            continue;
        }
        // The releasing tensor: the gate finishing exactly at `start`
        // (or, failing an exact match, the latest-finishing gate).
        let releaser = tile_gates.iter().copied().max_by_key(|&g| tl.tensor_end[g as usize]);
        let Some(g) = releaser else { continue };
        let t = &plan.dram_tensors[g as usize];
        if tl.tensor_end[g as usize] < start {
            continue; // released by the previous tile, not by DRAM
        }
        let cause = if t.is_load {
            StallCause::Load { tensor: g, kind: t.kind }
        } else {
            StallCause::Store { tensor: g, kind: t.kind }
        };
        out.push(Stall { tile: tile as u32, cycles: gap, cause });
    }
    out
}

/// Rolls stalls up by cause class.
pub fn summarize(stalls: &[Stall]) -> StallSummary {
    let mut s = StallSummary::default();
    for st in stalls {
        match st.cause {
            StallCause::Load { kind: DramKind::Weight(_), .. } => s.weight_cycles += st.cycles,
            StallCause::Load { .. } => s.ifmap_cycles += st.cycles,
            StallCause::Store { .. } => s.store_cycles += st.cycles,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_array::CoreArrayModel;
    use crate::timeline::simulate;
    use soma_arch::HardwareConfig;
    use soma_core::{parse_lfa, Lfa};
    use soma_model::zoo;

    fn run(tiling: u32) -> (ComputePlan, Dlsa, Timeline) {
        let net = zoo::fig2(1);
        let plan = parse_lfa(&net, &Lfa::unfused(&net, tiling)).unwrap();
        let dlsa = Dlsa::double_buffer(&plan);
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let tl = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        (plan, dlsa, tl)
    }

    #[test]
    fn attributed_stalls_never_exceed_total_gap() {
        let (plan, dlsa, tl) = run(4);
        let stalls = attribute_stalls(&plan, &dlsa, &tl);
        let attributed: u64 = stalls.iter().map(|s| s.cycles).sum();
        assert!(attributed <= tl.compute_stall());
    }

    #[test]
    fn weight_loads_dominate_first_tile_stall() {
        // Unfused double-buffer on a DRAM-bound edge config: the first
        // tile of each layer waits on weights/ifmaps.
        let (plan, dlsa, tl) = run(4);
        let stalls = attribute_stalls(&plan, &dlsa, &tl);
        assert!(!stalls.is_empty());
        let summary = summarize(&stalls);
        assert!(summary.total() > 0);
        assert_eq!(summary.total(), stalls.iter().map(|s| s.cycles).sum::<u64>());
    }

    #[test]
    fn eager_prefetch_reduces_attributed_stall() {
        let (plan, mut dlsa, tl) = run(4);
        let before = summarize(&attribute_stalls(&plan, &dlsa, &tl)).total();
        for (i, t) in plan.dram_tensors.iter().enumerate() {
            if t.is_load {
                dlsa.start[i] = 0;
            }
        }
        let hw = HardwareConfig::edge();
        let mut m = CoreArrayModel::new(&hw);
        let tl2 = simulate(&plan, &dlsa, &hw, &mut m).unwrap();
        let after = summarize(&attribute_stalls(&plan, &dlsa, &tl2)).total();
        assert!(after <= before);
    }
}
