//! Roll-up of a simulated schedule into the metrics the paper reports.

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_core::{lifetime, ParsedSchedule};
use soma_model::Network;

use crate::core_array::CoreArrayModel;
use crate::timeline::{simulate, SimError, Timeline};

/// Energy decomposition in picojoules, matching Fig. 6's split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyBreakdown {
    /// Core-array energy: MACs/vector ops, L0 and GBUF accesses.
    pub core_pj: f64,
    /// DRAM access energy (reads + writes).
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.dram_pj
    }
}

/// Evaluation result for one schedule on one hardware configuration: the
/// quantities of the paper's Fig. 6 plus the raw timeline for execution-
/// graph rendering (Fig. 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// End-to-end latency in cycles.
    pub latency_cycles: u64,
    /// Energy decomposition.
    pub energy: EnergyBreakdown,
    /// Computing Resources Utilization: network ops / (peak * latency).
    pub compute_util: f64,
    /// DRAM utilisation: transfer busy cycles / latency.
    pub dram_util: f64,
    /// Theoretical Maximum Computing Resources Utilization (Fig. 6's blue
    /// diamonds): utilisation at the latency lower bound
    /// `max(sum of tile times, sum of DRAM tensor times)` — both serial
    /// resources perfectly packed, dependencies ignored.
    pub theoretical_max_util: f64,
    /// Peak GBUF occupancy in bytes.
    pub peak_buffer: u64,
    /// Time-weighted average GBUF occupancy in bytes
    /// (`sum(usage_t * tile_time_t) / sum(tile_time_t)`).
    pub avg_buffer: u64,
    /// Total DRAM bytes moved.
    pub dram_bytes: u64,
    /// The exact timeline (start/end of every tensor and tile).
    pub timeline: Timeline,
}

impl EvalReport {
    /// The paper's optimisation objective `Energy^n x Delay^m`
    /// (Sec. V-A). Energy in joules, delay in seconds at `hw`'s clock.
    pub fn cost(&self, hw: &HardwareConfig, n: f64, m: f64) -> f64 {
        let energy_j = self.energy.total_pj() * 1e-12;
        let delay_s = hw.cycles_to_seconds(self.latency_cycles);
        energy_j.powf(n) * delay_s.powf(m)
    }
}

/// Evaluates a plan + DLSA pair, reusing a caller-provided (memoised)
/// core-array model — the fast path for search loops, which mutate the
/// DLSA thousands of times against one plan.
///
/// # Errors
///
/// Propagates [`SimError`] for deadlocked DRAM tensor orders.
pub fn evaluate_parts(
    net: &Network,
    plan: &soma_core::ComputePlan,
    dlsa: &soma_core::Dlsa,
    hw: &HardwareConfig,
    model: &mut CoreArrayModel<'_>,
) -> Result<EvalReport, SimError> {
    let tl = simulate(plan, dlsa, hw, model)?;

    let mut core_pj = 0.0;
    for t in &plan.tiles {
        core_pj += model.cost(t).energy_pj;
    }
    let mut read = 0u64;
    let mut write = 0u64;
    for t in &plan.dram_tensors {
        if t.is_load {
            read += t.bytes;
        } else {
            write += t.bytes;
        }
    }
    let dram_pj = hw.energy.dram(read, write);

    let net_ops = net.total_ops();
    let peak = hw.peak_ops_per_cycle() as f64;
    let util = |cycles: u64| -> f64 {
        if cycles == 0 {
            0.0
        } else {
            net_ops as f64 / (peak * cycles as f64)
        }
    };
    let bound = tl.compute_busy.max(tl.dram_busy);

    let profile = lifetime::buffer_profile(plan, dlsa);
    let peak_buffer = profile.iter().copied().max().unwrap_or(0);
    let mut weighted = 0u128;
    let mut total_time = 0u128;
    for (i, &usage) in profile.iter().enumerate() {
        let dur = (tl.tile_end[i] - tl.tile_start[i]) as u128;
        weighted += usage as u128 * dur;
        total_time += dur;
    }
    let avg_buffer = weighted.checked_div(total_time).unwrap_or(0) as u64;

    Ok(EvalReport {
        latency_cycles: tl.latency,
        energy: EnergyBreakdown { core_pj, dram_pj },
        compute_util: util(tl.latency),
        dram_util: if tl.latency == 0 { 0.0 } else { tl.dram_busy as f64 / tl.latency as f64 },
        theoretical_max_util: util(bound),
        peak_buffer,
        avg_buffer,
        dram_bytes: read + write,
        timeline: tl,
    })
}

/// Evaluates a parsed schedule, reusing a caller-provided (memoised)
/// core-array model.
///
/// # Errors
///
/// Propagates [`SimError`] for deadlocked DRAM tensor orders.
pub fn evaluate_with_model(
    net: &Network,
    sched: &ParsedSchedule,
    hw: &HardwareConfig,
    model: &mut CoreArrayModel<'_>,
) -> Result<EvalReport, SimError> {
    evaluate_parts(net, &sched.plan, &sched.dlsa, hw, model)
}

/// Evaluates a parsed schedule with a fresh core-array model.
///
/// # Errors
///
/// Propagates [`SimError`] for deadlocked DRAM tensor orders.
pub fn evaluate(
    net: &Network,
    sched: &ParsedSchedule,
    hw: &HardwareConfig,
) -> Result<EvalReport, SimError> {
    let mut model = CoreArrayModel::new(hw);
    evaluate_with_model(net, sched, hw, &mut model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_core::{Encoding, Lfa};
    use soma_model::zoo;

    fn report(tiling: u32, fused: bool) -> (Network, EvalReport) {
        let net = zoo::fig2(1);
        let lfa = if fused { Lfa::fully_fused(&net, tiling) } else { Lfa::unfused(&net, tiling) };
        let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(lfa)).unwrap();
        let hw = HardwareConfig::edge();
        let r = evaluate(&net, &sched, &hw).unwrap();
        (net, r)
    }

    #[test]
    fn utilisations_are_fractions() {
        let (_, r) = report(4, false);
        assert!(r.compute_util > 0.0 && r.compute_util <= 1.0);
        assert!(r.dram_util > 0.0 && r.dram_util <= 1.0);
        assert!(r.theoretical_max_util >= r.compute_util);
    }

    #[test]
    fn fusion_reduces_dram_bytes_and_energy() {
        let (_, unfused) = report(4, false);
        let (_, fused) = report(4, true);
        assert!(fused.dram_bytes < unfused.dram_bytes);
        assert!(fused.energy.dram_pj < unfused.energy.dram_pj);
    }

    #[test]
    fn cost_is_monotone_in_exponents() {
        let (_, r) = report(4, false);
        let hw = HardwareConfig::edge();
        let ed = r.cost(&hw, 1.0, 1.0);
        assert!(ed > 0.0);
        // Pure-delay objective equals the delay.
        let d = r.cost(&hw, 0.0, 1.0);
        assert!((d - hw.cycles_to_seconds(r.latency_cycles)).abs() < 1e-12);
    }

    #[test]
    fn buffer_stats_are_consistent() {
        let (_, r) = report(4, true);
        assert!(r.peak_buffer >= r.avg_buffer);
        assert!(r.peak_buffer > 0);
    }

    #[test]
    fn latency_at_least_both_busy_sums() {
        let (_, r) = report(2, false);
        assert!(r.latency_cycles >= r.timeline.compute_busy);
        assert!(r.latency_cycles >= r.timeline.dram_busy);
    }
}
