//! Golden snapshot for the Gantt renderer: the full chart for a fixed
//! (network, encoding, hardware) triple is compared **byte-for-byte**
//! against `tests/golden/fig2_edge_unfused.gantt.txt`.
//!
//! The chart is the observability surface `watch`'s drill-down and the
//! `run --gantt` path both print; pinning its exact bytes catches both
//! renderer drift *and* simulator drift (the block positions are a
//! projection of the timeline).
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! SOMA_BLESS=1 cargo test -p soma-sim --test golden_gantt
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use soma_arch::HardwareConfig;
use soma_core::{Encoding, Lfa, ParsedSchedule};
use soma_model::zoo;
use soma_sim::{render_gantt, simulate, CoreArrayModel};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn bless() -> bool {
    std::env::var_os("SOMA_BLESS").is_some_and(|v| v != "0" && !v.is_empty())
}

fn assert_golden(got: &str, golden: &str) {
    let path = golden_path(golden);
    if bless() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, got).expect("bless golden");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with SOMA_BLESS=1 cargo test -p soma-sim \
             --test golden_gantt",
            path.display()
        )
    });
    assert!(
        got == want,
        "{golden} drifted from its committed snapshot.\n--- committed ---\n{want}\n--- got ---\n\
         {got}\nIf the change is intentional, rebless with SOMA_BLESS=1.",
    );
}

#[test]
fn gantt_snapshot_fig2_edge_unfused() {
    let net = zoo::fig2(1);
    let sched = ParsedSchedule::new(&net, &Encoding::from_lfa(Lfa::unfused(&net, 2)))
        .expect("unfused LFA always parses");
    let hw = HardwareConfig::edge();
    let mut model = CoreArrayModel::new(&hw);
    let tl = simulate(&sched.plan, &sched.dlsa, &hw, &mut model).expect("schedule simulates");
    let chart = render_gantt(&net, &sched, &tl, 60);
    assert_golden(&chart, "fig2_edge_unfused.gantt.txt");
}
