//! The machine-readable campaign summary: one JSON object describing a
//! campaign's outcome distributions, cache behaviour and ledger health.
//! The schema is specified in `specs/SUMMARY.md`; [`SUMMARY_VERSION`]
//! gates it.
//!
//! A summary is producible two ways that must agree:
//!
//! * **offline** — [`CampaignSummary::from_ledger`] over any run
//!   ledger. Deterministic and **byte-stable**: the same ledger bytes
//!   render the same summary bytes (pinned by a golden test), which is
//!   what lets CI diff summaries across commits and trend-gate on them.
//! * **live** — [`CampaignSummary::from_cells`] over the per-cell
//!   outcomes a `lab` run accumulated, plus an optional [`RunCounts`]
//!   block carrying run-only facts (hit rate, wall clock). Wall-clock
//!   never enters the offline sections, so live and offline summaries
//!   of the same campaign agree on everything except the `run` block.

use std::collections::BTreeMap;

use serde::json::{self, Value};
use soma_search::ENGINE_VERSION;
use soma_spec::ledger::{Ledger, LedgerRow, LEDGER_VERSION};
use soma_spec::LedgerHealth;

use crate::stats::Sample;

/// Campaign summary schema version; bump on any breaking field change.
pub const SUMMARY_VERSION: u64 = 1;

/// One finished cell's headline numbers — the input unit of a summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Scenario id of the cell.
    pub scenario: String,
    /// Best (envelope) cost of the cell's portfolio.
    pub cost: f64,
    /// Best latency in cycles.
    pub latency_cycles: u64,
    /// Completed schedule evaluations of the cell's portfolio.
    pub evals: u64,
}

impl CellOutcome {
    /// The headline numbers of one ledger row.
    #[must_use]
    pub fn from_row(row: &LedgerRow) -> Self {
        Self {
            scenario: row.cell.clone(),
            cost: row.best_cost,
            latency_cycles: row.latency_cycles,
            evals: row.evals,
        }
    }
}

/// A distribution digest: count, extremes, mean and the three
/// nearest-rank percentiles every consumer asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dist {
    /// Observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl Dist {
    /// Digests an exact sample.
    #[must_use]
    pub fn of(sample: &mut Sample) -> Self {
        let s = sample.stats();
        Self {
            count: sample.len(),
            min: s.min(),
            max: s.max(),
            mean: s.mean(),
            p50: sample.percentile(50.0),
            p90: sample.percentile(90.0),
            p99: sample.percentile(99.0),
        }
    }

    fn to_json(self) -> Value {
        let mut o = Value::obj();
        o.push("count", (self.count as u64).into());
        o.push("min", self.min.into());
        o.push("max", self.max.into());
        o.push("mean", self.mean.into());
        o.push("p50", self.p50.into());
        o.push("p90", self.p90.into());
        o.push("p99", self.p99.into());
        o
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing `{key}`"))
        };
        Ok(Self {
            count: v.get("count").and_then(Value::as_u64).ok_or("missing `count`")? as usize,
            min: num("min")?,
            max: num("max")?,
            mean: num("mean")?,
            p50: num("p50")?,
            p90: num("p90")?,
            p99: num("p99")?,
        })
    }
}

/// Per-scenario digest: one campaign scenario's cells, distributions
/// over their best costs, latencies and evaluation counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario id.
    pub scenario: String,
    /// Cells of this scenario.
    pub cells: usize,
    /// Distribution of per-cell best costs.
    pub best_cost: Dist,
    /// Distribution of per-cell best latencies (cycles).
    pub latency_cycles: Dist,
    /// Distribution of per-cell completed evaluations.
    pub evals: Dist,
    /// Total completed evaluations across the scenario's cells.
    pub total_evals: u64,
}

/// Run-only facts a live `lab` invocation knows but a ledger does not:
/// cache behaviour, failures and wall clock. Optional in the summary —
/// absent when the summary was derived offline from ledger bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCounts {
    /// Cells served from the ledger.
    pub hits: usize,
    /// Cells that ran a search this run.
    pub searched: usize,
    /// Cells whose search panicked (isolated; no ledger row).
    pub failed: usize,
    /// Whether a stop request cut the run short.
    pub stopped: bool,
    /// Wall-clock of the run in seconds, when measured.
    pub elapsed_s: Option<f64>,
}

impl RunCounts {
    /// Ledger hit rate of the run: hits over resolved cells, `0.0` when
    /// nothing resolved.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let resolved = self.hits + self.searched;
        if resolved == 0 {
            0.0
        } else {
            self.hits as f64 / resolved as f64
        }
    }
}

/// The machine-readable campaign summary (`specs/SUMMARY.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Campaign name.
    pub name: String,
    /// Engine version the summary describes
    /// ([`soma_search::ENGINE_VERSION`]).
    pub engine: String,
    /// Ledger format version the cells came from.
    pub ledger_version: u64,
    /// Total cells summarised.
    pub cells: usize,
    /// Per-scenario digests, sorted by scenario id.
    pub scenarios: Vec<ScenarioSummary>,
    /// Distribution of best cost across **all** cells.
    pub best_cost: Dist,
    /// Total completed evaluations across all cells.
    pub total_evals: u64,
    /// What loading the ledger found and repaired.
    pub health: LedgerHealth,
    /// Run-only block; `None` for summaries derived offline.
    pub run: Option<RunCounts>,
}

impl CampaignSummary {
    /// Builds a summary from per-cell outcomes (the live path; pass
    /// `run` for the run-only block) under the current engine and
    /// ledger versions.
    #[must_use]
    pub fn from_cells(
        name: &str,
        cells: &[CellOutcome],
        health: LedgerHealth,
        run: Option<RunCounts>,
    ) -> Self {
        let mut by_scenario: BTreeMap<&str, Vec<&CellOutcome>> = BTreeMap::new();
        for cell in cells {
            by_scenario.entry(cell.scenario.as_str()).or_default().push(cell);
        }
        let mut overall = Sample::new();
        let mut total_evals = 0u64;
        let scenarios = by_scenario
            .into_iter()
            .map(|(scenario, group)| {
                let (mut cost, mut latency, mut evals) =
                    (Sample::new(), Sample::new(), Sample::new());
                let mut scenario_evals = 0u64;
                for cell in &group {
                    cost.push(cell.cost);
                    latency.push(cell.latency_cycles as f64);
                    evals.push(cell.evals as f64);
                    overall.push(cell.cost);
                    scenario_evals += cell.evals;
                }
                total_evals += scenario_evals;
                ScenarioSummary {
                    scenario: scenario.to_string(),
                    cells: group.len(),
                    best_cost: Dist::of(&mut cost),
                    latency_cycles: Dist::of(&mut latency),
                    evals: Dist::of(&mut evals),
                    total_evals: scenario_evals,
                }
            })
            .collect();
        Self {
            name: name.to_string(),
            engine: ENGINE_VERSION.to_string(),
            ledger_version: LEDGER_VERSION,
            cells: cells.len(),
            scenarios,
            best_cost: Dist::of(&mut overall),
            total_evals,
            health,
            run,
        }
    }

    /// Builds a summary offline from a loaded ledger (the byte-stable
    /// path). Shadowed duplicate rows resolve last-write-wins, exactly
    /// like ledger lookups; health comes from the load.
    #[must_use]
    pub fn from_ledger(name: &str, ledger: &Ledger) -> Self {
        // Last-write-wins over duplicate hashes, keeping file order of
        // each hash's surviving (newest) row.
        let rows = ledger.rows();
        let mut last: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            last.insert(row.hash.as_str(), i);
        }
        let mut keep: Vec<usize> = last.into_values().collect();
        keep.sort_unstable();
        let cells: Vec<CellOutcome> =
            keep.into_iter().map(|i| CellOutcome::from_row(&rows[i])).collect();
        Self::from_cells(name, &cells, ledger.health(), None)
    }

    /// Renders the summary as its canonical single-line JSON object.
    /// Deterministic and byte-stable: equal summaries render equal
    /// bytes.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.push("v", SUMMARY_VERSION.into());
        o.push("name", self.name.as_str().into());
        o.push("engine", self.engine.as_str().into());
        o.push("ledger_version", self.ledger_version.into());
        o.push("cells", (self.cells as u64).into());
        let mut arr = Vec::new();
        for sc in &self.scenarios {
            let mut s = Value::obj();
            s.push("scenario", sc.scenario.as_str().into());
            s.push("cells", (sc.cells as u64).into());
            s.push("best_cost", sc.best_cost.to_json());
            s.push("latency_cycles", sc.latency_cycles.to_json());
            s.push("evals", sc.evals.to_json());
            s.push("total_evals", sc.total_evals.into());
            arr.push(s);
        }
        o.push("scenarios", Value::Arr(arr));
        o.push("best_cost", self.best_cost.to_json());
        o.push("total_evals", self.total_evals.into());
        let mut h = Value::obj();
        h.push("kept", (self.health.kept as u64).into());
        h.push("quarantined", (self.health.quarantined as u64).into());
        h.push("truncated", self.health.truncated.into());
        h.push("duplicates", (self.health.duplicates as u64).into());
        o.push("health", h);
        if let Some(run) = &self.run {
            let mut r = Value::obj();
            r.push("hits", (run.hits as u64).into());
            r.push("searched", (run.searched as u64).into());
            r.push("failed", (run.failed as u64).into());
            r.push("stopped", run.stopped.into());
            r.push("hit_rate", run.hit_rate().into());
            if let Some(elapsed) = run.elapsed_s {
                r.push("elapsed_s", elapsed.into());
                if elapsed > 0.0 {
                    r.push("evals_per_sec", (self.total_evals as f64 / elapsed).into());
                }
            }
            o.push("run", r);
        }
        o
    }

    /// [`to_json`](Self::to_json) rendered as its one-line string (no
    /// trailing newline).
    #[must_use]
    pub fn to_string_stable(&self) -> String {
        json::to_string(&self.to_json())
    }

    /// Parses a summary previously rendered by
    /// [`to_json`](Self::to_json) — the baseline side of a trend check.
    /// The `run` block and `evals_per_sec` are optional (additive
    /// fields follow the same evolution rule as the serve protocol:
    /// unknown fields are ignored, absent optional fields default).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first missing or mistyped
    /// field, or an unsupported schema version.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let version = v.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        if version != SUMMARY_VERSION {
            return Err(format!("unsupported summary version {version}"));
        }
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing `{key}`"))?
                .to_string())
        };
        let scenarios = match v.get("scenarios") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|s| {
                    Ok(ScenarioSummary {
                        scenario: s
                            .get("scenario")
                            .and_then(Value::as_str)
                            .ok_or("missing `scenario`")?
                            .to_string(),
                        cells: s.get("cells").and_then(Value::as_u64).ok_or("missing `cells`")?
                            as usize,
                        best_cost: Dist::from_json(
                            s.get("best_cost").ok_or("missing `best_cost`")?,
                        )?,
                        latency_cycles: Dist::from_json(
                            s.get("latency_cycles").ok_or("missing `latency_cycles`")?,
                        )?,
                        evals: Dist::from_json(s.get("evals").ok_or("missing `evals`")?)?,
                        total_evals: s
                            .get("total_evals")
                            .and_then(Value::as_u64)
                            .ok_or("missing `total_evals`")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing `scenarios` array".into()),
        };
        let h = v.get("health").ok_or("missing `health`")?;
        let health = LedgerHealth {
            kept: h.get("kept").and_then(Value::as_u64).ok_or("missing `kept`")? as usize,
            quarantined: h
                .get("quarantined")
                .and_then(Value::as_u64)
                .ok_or("missing `quarantined`")? as usize,
            truncated: h.get("truncated").and_then(Value::as_bool).ok_or("missing `truncated`")?,
            duplicates: h.get("duplicates").and_then(Value::as_u64).ok_or("missing `duplicates`")?
                as usize,
        };
        let run = match v.get("run") {
            Some(r) => Some(RunCounts {
                hits: r.get("hits").and_then(Value::as_u64).ok_or("missing `hits`")? as usize,
                searched: r.get("searched").and_then(Value::as_u64).ok_or("missing `searched`")?
                    as usize,
                failed: r.get("failed").and_then(Value::as_u64).ok_or("missing `failed`")? as usize,
                stopped: r.get("stopped").and_then(Value::as_bool).unwrap_or(false),
                elapsed_s: r.get("elapsed_s").and_then(Value::as_f64),
            }),
            None => None,
        };
        Ok(Self {
            name: text("name")?,
            engine: text("engine")?,
            ledger_version: v
                .get("ledger_version")
                .and_then(Value::as_u64)
                .ok_or("missing `ledger_version`")?,
            cells: v.get("cells").and_then(Value::as_u64).ok_or("missing `cells`")? as usize,
            scenarios,
            best_cost: Dist::from_json(v.get("best_cost").ok_or("missing `best_cost`")?)?,
            total_evals: v
                .get("total_evals")
                .and_then(Value::as_u64)
                .ok_or("missing `total_evals`")?,
            health,
            run,
        })
    }

    /// Trend-gates this summary against a baseline: every baseline
    /// scenario must still be present, and its best (minimum) cost must
    /// not regress by more than `tolerance` (relative: `0.05` = 5 %
    /// worse allowed). Returns one human-readable line per violation —
    /// empty means the gate passes. Improvements never fail the gate.
    #[must_use]
    pub fn check_against(&self, baseline: &Self, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for base in &baseline.scenarios {
            let Some(cur) = self.scenarios.iter().find(|s| s.scenario == base.scenario) else {
                violations.push(format!(
                    "scenario {} present in the baseline but missing from this summary",
                    base.scenario
                ));
                continue;
            };
            let allowed = base.best_cost.min * (1.0 + tolerance);
            if cur.best_cost.min > allowed {
                violations.push(format!(
                    "scenario {}: best cost {:.6e} exceeds baseline {:.6e} by more than {:.1}% \
                     (allowed {:.6e})",
                    base.scenario,
                    cur.best_cost.min,
                    base.best_cost.min,
                    tolerance * 100.0,
                    allowed
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<CellOutcome> {
        vec![
            CellOutcome { scenario: "b".into(), cost: 2.0, latency_cycles: 200, evals: 20 },
            CellOutcome { scenario: "a".into(), cost: 1.0, latency_cycles: 100, evals: 10 },
            CellOutcome { scenario: "b".into(), cost: 4.0, latency_cycles: 400, evals: 40 },
        ]
    }

    #[test]
    fn scenarios_sort_by_id_and_aggregate() {
        let s = CampaignSummary::from_cells("t", &cells(), LedgerHealth::default(), None);
        assert_eq!(s.cells, 3);
        assert_eq!(s.total_evals, 70);
        let ids: Vec<&str> = s.scenarios.iter().map(|x| x.scenario.as_str()).collect();
        assert_eq!(ids, ["a", "b"]);
        let b = &s.scenarios[1];
        assert_eq!((b.cells, b.total_evals), (2, 60));
        assert_eq!((b.best_cost.min, b.best_cost.max, b.best_cost.mean), (2.0, 4.0, 3.0));
        assert_eq!(s.best_cost.count, 3);
        assert_eq!(s.best_cost.p50, 2.0);
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let run = RunCounts { hits: 1, searched: 2, failed: 0, stopped: false, elapsed_s: None };
        let s = CampaignSummary::from_cells("t", &cells(), LedgerHealth::default(), Some(run));
        let line = s.to_string_stable();
        let parsed = CampaignSummary::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_string_stable(), line, "render is a fixed point");
        assert!(line.contains("\"hit_rate\":"), "{line}");
    }

    #[test]
    fn hit_rate_is_hits_over_resolved() {
        let r = RunCounts { hits: 1, searched: 3, failed: 1, stopped: false, elapsed_s: None };
        assert_eq!(r.hit_rate(), 0.25);
        let empty = RunCounts { hits: 0, searched: 0, failed: 0, stopped: true, elapsed_s: None };
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn trend_gate_flags_regressions_not_improvements() {
        let base = CampaignSummary::from_cells("t", &cells(), LedgerHealth::default(), None);
        let mut worse = cells();
        worse[1].cost = 1.2; // scenario "a": 1.0 -> 1.2, a 20% regression
        let cur = CampaignSummary::from_cells("t", &worse, LedgerHealth::default(), None);
        assert_eq!(cur.check_against(&base, 0.25), Vec::<String>::new());
        let violations = cur.check_against(&base, 0.05);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("scenario a"), "{}", violations[0]);

        let mut better = cells();
        better[1].cost = 0.5;
        let cur = CampaignSummary::from_cells("t", &better, LedgerHealth::default(), None);
        assert!(cur.check_against(&base, 0.0).is_empty(), "improvements pass");

        let missing =
            CampaignSummary::from_cells("t", &cells()[..1], LedgerHealth::default(), None);
        let violations = missing.check_against(&base, 0.5);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"), "{}", violations[0]);
    }

    #[test]
    fn version_gate_rejects_foreign_summaries() {
        let err = CampaignSummary::from_json(&json::parse("{\"v\":99}").unwrap()).unwrap_err();
        assert!(err.contains("unsupported summary version"), "{err}");
    }
}
