//! # soma-obs — campaign observability
//!
//! The observability layer of the SoMa reproduction: everything that
//! turns the engine's typed telemetry ([`SearchEvent`](soma_search::SearchEvent)
//! streams, [`LabEvent`] streams, run ledgers) into numbers a human or
//! a CI gate can act on. Three layers, bottom up:
//!
//! 1. **[`stats`]** — the streaming statistics engine: constant-space
//!    min/max/mean ([`StreamingStats`]), exact nearest-rank percentiles
//!    ([`Sample`]), the P² streaming quantile estimator
//!    ([`P2Quantile`]), fixed-range histograms ([`Histogram`]) and the
//!    per-stage breakdown keyed by [`StageSpec`](soma_search::StageSpec)
//!    names ([`StageBreakdown`]). Property-tested against a sort-based
//!    oracle; the *single* percentile implementation in the workspace
//!    (the serve load generator and perfbench both delegate here).
//! 2. **[`summary`]** — the machine-readable [`CampaignSummary`] JSON
//!    artifact (`specs/SUMMARY.md`): per-scenario best-cost / latency /
//!    evals distributions, cache hit rate, failure counts and
//!    [`LedgerHealth`](soma_spec::LedgerHealth), producible live from a
//!    [`LabEvent`] stream or offline — byte-stably — from any ledger.
//!    CI trend-gates on it via [`CampaignSummary::check_against`].
//! 3. **[`watch`]** — the render model behind `soma-bench --bin watch`:
//!    a deterministic fold of events or ledger rows into the live cell
//!    grid, hit-rate line and per-scenario sparklines, with
//!    [`drill::gantt_for_row`] re-rendering any finished cell's
//!    `soma-sim` Gantt chart on demand.
//!
//! The crate holds the shared campaign-progress vocabulary too:
//! [`LabEvent`] is defined here and re-exported by the orchestrator in
//! `soma-bench`, so observers never need to depend on the machinery
//! that produces the events.
//!
//! Zero third-party dependencies beyond the workspace's vendored
//! `serde`, like every other crate in the workspace.

pub mod drill;
pub mod event;
pub mod stats;
pub mod summary;
pub mod watch;

pub use drill::gantt_for_row;
pub use event::LabEvent;
pub use stats::{
    percentile_nearest_rank, sparkline, stage_name, Histogram, P2Quantile, Sample, StageAgg,
    StageBreakdown, StreamingStats,
};
pub use summary::{
    CampaignSummary, CellOutcome, Dist, RunCounts, ScenarioSummary, SUMMARY_VERSION,
};
pub use watch::{CellSlot, CellState, WatchModel};
