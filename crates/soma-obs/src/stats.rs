//! The streaming statistics engine: constant-space aggregators for the
//! metrics every observability consumer needs, plus one exact sample
//! type for when the data fits in memory.
//!
//! * [`StreamingStats`] — min/max/mean/sum in O(1) space, mergeable.
//! * [`Sample`] — an exact sample with nearest-rank percentiles (the
//!   single implementation behind `loadgen`'s p50/p90/p99 and the
//!   campaign summary distributions).
//! * [`P2Quantile`] — the P² (Jain & Chlamtac) streaming quantile
//!   estimator for samples too large to keep.
//! * [`Histogram`] — fixed-range linear-bucket counts with a sparkline
//!   rendering.
//! * [`StageBreakdown`] — per-stage cost/evals/wall-time aggregation
//!   keyed by [`StageSpec`] stage names, fed from a
//!   [`SearchEvent`] stream.
//!
//! Everything here is deterministic: the same observations in the same
//! order produce bit-identical results, which is what lets the campaign
//! summary be byte-stable.

use std::collections::BTreeMap;

use soma_search::{SearchEvent, StageSpec};

/// Nearest-rank percentile of an **ascending-sorted** slice, `p` in
/// `[0, 100]`. `0.0` on an empty slice. Rank is `ceil(p/100 · n)`
/// clamped into the sample — the convention the serve load generator
/// has always reported.
#[must_use]
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Constant-space running min/max/mean/sum. Two aggregators over
/// disjoint halves of a stream [`merge`](Self::merge) into exactly the
/// aggregator of the whole stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingStats {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
    }

    /// Folds another aggregator in (stream concatenation).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Observations folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation; `0.0` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; `0.0` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// An exact in-memory sample: every observation kept, percentiles by
/// nearest rank over the sorted data. The ground truth the streaming
/// estimators are property-tested against — and the right tool whenever
/// the sample is campaign-sized (thousands, not billions).
#[derive(Debug, Clone, Default)]
pub struct Sample {
    values: Vec<f64>,
    dirty: bool,
}

impl Sample {
    /// An empty sample.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.dirty = true;
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted observations (sorts lazily on first access).
    pub fn sorted(&mut self) -> &[f64] {
        if self.dirty {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("observations are finite"));
            self.dirty = false;
        }
        &self.values
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`; `0.0` when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        percentile_nearest_rank(self.sorted(), p)
    }

    /// Min/max/mean of the sample as a [`StreamingStats`].
    #[must_use]
    pub fn stats(&self) -> StreamingStats {
        let mut s = StreamingStats::new();
        for &x in &self.values {
            s.observe(x);
        }
        s
    }
}

/// The P² (Jain & Chlamtac 1985) streaming quantile estimator: five
/// markers track the target quantile in O(1) space per observation,
/// exact until the sixth observation arrives. For million-cell
/// campaigns where an exact [`Sample`] would not fit.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// Target quantile as a fraction in `[0, 1]`.
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// The first five observations, kept sorted (exact phase).
    init: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for quantile `p` (a fraction: `0.5` = median).
    ///
    /// # Panics
    ///
    /// If `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "quantile fraction out of range: {p}");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Observations folded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            let at = self.init.partition_point(|&v| v <= x);
            self.init.insert(at, x);
            if self.count == 5 {
                self.q.copy_from_slice(&self.init);
            }
            return;
        }

        // Locate the cell k with q[k] <= x < q[k+1], stretching the
        // extreme markers when x falls outside them.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4).rev().find(|&i| self.q[i] <= x).unwrap_or(0)
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Nudge the three interior markers toward their desired ranks,
        // parabolic (P²) when the adjusted height stays monotone,
        // linear otherwise.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let parabolic = self.q[i]
                    + s / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + s) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - s) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    let j = if s > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += s;
            }
        }
    }

    /// The current quantile estimate: exact (nearest rank over the
    /// buffered observations) through the fifth observation, the P²
    /// middle marker after; `0.0` when empty.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            return percentile_nearest_rank(&self.init, self.p * 100.0);
        }
        self.q[2]
    }
}

/// A fixed-range linear-bucket histogram. Observations outside the
/// range clamp into the edge buckets, so the total count is always the
/// number of observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// `buckets` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// If `buckets` is zero or the range is empty or inverted.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "a histogram needs at least one bucket");
        assert!(hi > lo, "empty histogram range [{lo}, {hi})");
        Self { lo, hi, counts: vec![0; buckets], total: 0 }
    }

    /// Folds one observation in (clamping into the edge buckets).
    pub fn observe(&mut self, x: f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let i = ((x - self.lo) / w).floor();
        let i = (i.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Per-bucket counts, low bucket first.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bucket counts as a one-line unicode sparkline.
    #[must_use]
    pub fn sparkline(&self) -> String {
        let values: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        sparkline(&values)
    }
}

/// Renders values as a unicode block-element sparkline, one glyph per
/// value, scaled to the value range (a flat series renders mid-height).
/// Empty input renders an empty string.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if span <= 0.0 {
                GLYPHS[3]
            } else {
                let t = ((v - lo) / span * 7.0).round() as usize;
                GLYPHS[t.min(7)]
            }
        })
        .collect()
}

/// The canonical display name of a pipeline stage — the same string
/// [`SearchEvent::StageFinished`] carries (pinned against
/// `StageSpec::instantiate().name()` by test).
#[must_use]
pub fn stage_name(spec: StageSpec) -> &'static str {
    match spec {
        StageSpec::Lfa => "lfa",
        StageSpec::Dlsa => "dlsa",
        StageSpec::CoccoLfa => "cocco",
    }
}

/// Per-stage aggregate of a [`SearchEvent`] stream.
#[derive(Debug, Clone, Default)]
pub struct StageAgg {
    /// `StageFinished` events observed for this stage.
    pub finishes: u64,
    /// Schedule evaluations attributed to this stage (deltas of the
    /// cumulative counter between consecutive stage finishes).
    pub evals: u64,
    /// Best (lowest) stage cost observed.
    pub best_cost: Option<f64>,
    /// Wall-clock per stage finish, when the caller supplies timestamps
    /// via [`StageBreakdown::observe_at`].
    pub wall_ms: StreamingStats,
}

/// Per-stage timing/effort breakdown of a search, fed one
/// [`SearchEvent`] at a time and keyed by [`StageSpec`] stage names.
/// Stages appear in name order when iterated, so renderings are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct StageBreakdown {
    stages: BTreeMap<String, StageAgg>,
    /// Buffer-allocator rounds observed.
    rounds: u64,
    /// Cumulative-evals watermark (resets when a seed finishes — the
    /// engine counts per session).
    last_evals: u64,
    /// Timestamp watermark for wall-clock attribution.
    last_ms: Option<u64>,
}

impl StageBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event in without timing (wall-clock stats stay empty).
    pub fn observe(&mut self, ev: &SearchEvent) {
        self.fold(ev, None);
    }

    /// Folds one event in with a caller-supplied monotonic timestamp in
    /// milliseconds; the delta since the previous observed timestamp is
    /// attributed to the finishing stage.
    pub fn observe_at(&mut self, ev: &SearchEvent, now_ms: u64) {
        self.fold(ev, Some(now_ms));
    }

    fn fold(&mut self, ev: &SearchEvent, now_ms: Option<u64>) {
        match ev {
            SearchEvent::RoundStarted { .. } => {
                self.rounds += 1;
                self.last_ms = now_ms;
            }
            SearchEvent::StageFinished { stage, cost, evals, .. } => {
                let agg = self.stages.entry(stage.clone()).or_default();
                agg.finishes += 1;
                agg.evals += evals.saturating_sub(self.last_evals);
                agg.best_cost =
                    Some(agg.best_cost.map_or(*cost, |b: f64| if *cost < b { *cost } else { b }));
                if let (Some(prev), Some(now)) = (self.last_ms, now_ms) {
                    agg.wall_ms.observe(now.saturating_sub(prev) as f64);
                }
                self.last_evals = *evals;
                self.last_ms = now_ms;
            }
            SearchEvent::SeedFinished { .. } => {
                // The cumulative counter is per session; the next
                // seed's stage events restart from zero.
                self.last_evals = 0;
                self.last_ms = now_ms;
            }
            _ => {}
        }
    }

    /// Rounds observed.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The aggregate of one stage, if it has been observed.
    #[must_use]
    pub fn stage(&self, spec: StageSpec) -> Option<&StageAgg> {
        self.stages.get(stage_name(spec))
    }

    /// All observed stages in name order.
    pub fn stages(&self) -> impl Iterator<Item = (&str, &StageAgg)> {
        self.stages.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_historical_convention() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_nearest_rank(&v, 50.0), 50.0);
        assert_eq!(percentile_nearest_rank(&v, 90.0), 90.0);
        assert_eq!(percentile_nearest_rank(&v, 99.0), 99.0);
        assert_eq!(percentile_nearest_rank(&v, 100.0), 100.0);
        assert_eq!(percentile_nearest_rank(&[], 50.0), 0.0);
        assert_eq!(percentile_nearest_rank(&[7.0], 99.0), 7.0);
        assert_eq!(percentile_nearest_rank(&[7.0], 0.0), 7.0);
    }

    #[test]
    fn streaming_stats_fold_and_merge() {
        let mut a = StreamingStats::new();
        assert_eq!((a.min(), a.max(), a.mean(), a.count()), (0.0, 0.0, 0.0, 0));
        for x in [3.0, 1.0, 2.0] {
            a.observe(x);
        }
        assert_eq!((a.min(), a.max(), a.sum(), a.mean()), (1.0, 3.0, 6.0, 2.0));

        let mut b = StreamingStats::new();
        b.observe(10.0);
        a.merge(&b);
        assert_eq!((a.min(), a.max(), a.count()), (1.0, 10.0, 4));
        // Merging an empty aggregator is the identity.
        a.merge(&StreamingStats::new());
        assert_eq!((a.min(), a.max(), a.count()), (1.0, 10.0, 4));
    }

    #[test]
    fn sample_percentiles_are_exact() {
        let mut s = Sample::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.stats().mean(), 3.0);
        // Pushing after a sort re-dirties the order.
        s.push(0.5);
        assert_eq!(s.percentile(0.0), 0.5);
    }

    #[test]
    fn p2_is_exact_through_five_observations() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), 0.0);
        for (i, x) in [9.0, 1.0, 7.0, 3.0, 5.0].iter().enumerate() {
            q.observe(*x);
            let mut sorted: Vec<f64> = [9.0, 1.0, 7.0, 3.0, 5.0][..=i].to_vec();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(q.estimate(), percentile_nearest_rank(&sorted, 50.0), "after {} obs", i + 1);
        }
    }

    #[test]
    fn p2_median_tracks_a_linear_ramp() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..1000 {
            q.observe(f64::from(i));
        }
        let est = q.estimate();
        assert!((est - 500.0).abs() < 25.0, "median estimate {est} too far from 500");
        assert_eq!(q.count(), 1000);
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 3.9, 5.0, 9.9, 42.0] {
            h.observe(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 2]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.sparkline().chars().count(), 5);
    }

    #[test]
    fn sparkline_scales_to_the_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄");
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn stage_names_match_the_engine() {
        for spec in [StageSpec::Lfa, StageSpec::Dlsa, StageSpec::CoccoLfa] {
            assert_eq!(stage_name(spec), spec.instantiate().name());
        }
    }

    #[test]
    fn stage_breakdown_attributes_eval_deltas_and_wall_time() {
        let mut b = StageBreakdown::new();
        b.observe_at(&SearchEvent::RoundStarted { round: 0, stage1_budget: 1024 }, 100);
        b.observe_at(
            &SearchEvent::StageFinished { round: 0, stage: "lfa".into(), cost: 5.0, evals: 10 },
            130,
        );
        b.observe_at(
            &SearchEvent::StageFinished { round: 0, stage: "dlsa".into(), cost: 4.0, evals: 25 },
            170,
        );
        b.observe_at(
            &SearchEvent::SeedFinished { seed: 7, cost: 4.0, evals: 25, rejected: 0 },
            170,
        );
        // Second seed: the cumulative counter restarts.
        b.observe_at(&SearchEvent::RoundStarted { round: 0, stage1_budget: 1024 }, 200);
        b.observe_at(
            &SearchEvent::StageFinished { round: 0, stage: "lfa".into(), cost: 6.0, evals: 8 },
            210,
        );

        assert_eq!(b.rounds(), 2);
        let lfa = b.stage(StageSpec::Lfa).unwrap();
        assert_eq!((lfa.finishes, lfa.evals), (2, 18));
        assert_eq!(lfa.best_cost, Some(5.0));
        assert_eq!((lfa.wall_ms.min(), lfa.wall_ms.max()), (10.0, 30.0));
        let dlsa = b.stage(StageSpec::Dlsa).unwrap();
        assert_eq!((dlsa.finishes, dlsa.evals), (1, 15));
        assert!(b.stage(StageSpec::CoccoLfa).is_none());
        let names: Vec<&str> = b.stages().map(|(n, _)| n).collect();
        assert_eq!(names, ["dlsa", "lfa"], "name order, deterministic");
    }
}
