//! The `watch` TUI's render model: a pure, deterministic fold of
//! campaign progress into a text frame. The binary owns the terminal
//! (ANSI repaints, stdin commands); this module owns **what** is on
//! screen, so the same observations render the same frame whether they
//! arrived live ([`WatchModel::observe`] on a [`LabEvent`] stream) or
//! from replaying a finished ledger ([`WatchModel::observe_row`]) —
//! the equivalence the acceptance tests pin.

use std::collections::HashMap;

use soma_spec::ledger::LedgerRow;
use soma_spec::LedgerHealth;

use crate::event::LabEvent;
use crate::stats::sparkline;
use crate::summary::{CampaignSummary, CellOutcome, RunCounts};

/// Lifecycle state of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Queued, not yet resolved.
    Queued,
    /// Search in flight.
    Running,
    /// Served from the ledger without search work.
    Cached,
    /// Searched and written to the ledger.
    Finished,
    /// Search panicked; isolated, no ledger row.
    Failed,
}

impl CellState {
    /// The cell's one-character grid glyph.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            CellState::Queued => '.',
            CellState::Running => '>',
            CellState::Cached => '=',
            CellState::Finished => '#',
            CellState::Failed => 'X',
        }
    }
}

/// One cell's slot in the model.
#[derive(Debug, Clone)]
pub struct CellSlot {
    /// Scenario id.
    pub id: String,
    /// Ledger key (16 hex digits); empty until known.
    pub hash: String,
    /// Lifecycle state.
    pub state: CellState,
    /// Best cost, once resolved with a result.
    pub cost: Option<f64>,
    /// Best latency in cycles, once resolved with a result.
    pub latency_cycles: Option<u64>,
    /// Completed evaluations, once resolved with a result.
    pub evals: Option<u64>,
}

/// The deterministic render model behind `soma-bench --bin watch`.
#[derive(Debug, Clone, Default)]
pub struct WatchModel {
    slots: Vec<CellSlot>,
    by_hash: HashMap<String, usize>,
}

impl WatchModel {
    /// An empty model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All cell slots, in arrival (cell) order.
    #[must_use]
    pub fn slots(&self) -> &[CellSlot] {
        &self.slots
    }

    fn slot_by_hash(&mut self, cell: &str, hash: &str) -> &mut CellSlot {
        if let Some(&i) = self.by_hash.get(hash) {
            return &mut self.slots[i];
        }
        self.by_hash.insert(hash.to_string(), self.slots.len());
        self.slots.push(CellSlot {
            id: cell.to_string(),
            hash: hash.to_string(),
            state: CellState::Queued,
            cost: None,
            latency_cycles: None,
            evals: None,
        });
        self.slots.last_mut().expect("just pushed")
    }

    /// Folds one live orchestrator event in.
    pub fn observe(&mut self, ev: &LabEvent) {
        match ev {
            LabEvent::Queued { cell, hash } => {
                // A repeated hash is a duplicate cell in the spec; it
                // shares the first occurrence's slot (the orchestrator
                // searches it once), so the grid shows real work units.
                let _ = self.slot_by_hash(cell, hash);
            }
            LabEvent::Cached { cell, hash } => {
                let slot = self.slot_by_hash(cell, hash);
                if slot.state == CellState::Queued {
                    slot.state = CellState::Cached;
                }
            }
            LabEvent::Started { cell } => {
                if let Some(slot) =
                    self.slots.iter_mut().find(|s| s.id == *cell && s.state == CellState::Queued)
                {
                    slot.state = CellState::Running;
                }
            }
            LabEvent::Finished { cell, hash, cost, latency_cycles, evals } => {
                let slot = self.slot_by_hash(cell, hash);
                slot.state = CellState::Finished;
                slot.cost = Some(*cost);
                slot.latency_cycles = Some(*latency_cycles);
                slot.evals = Some(*evals);
            }
            LabEvent::Failed { cell, hash, .. } => {
                let slot = self.slot_by_hash(cell, hash);
                slot.state = CellState::Failed;
            }
        }
    }

    /// Folds one ledger row in (the offline replay path). Replayed rows
    /// are searched results by definition — a ledger does not record
    /// which later runs hit them — so the slot lands in
    /// [`CellState::Finished`], exactly the state a cold live run ends
    /// in.
    pub fn observe_row(&mut self, row: &LedgerRow) {
        let slot = self.slot_by_hash(&row.cell, &row.hash);
        slot.state = CellState::Finished;
        slot.cost = Some(row.best_cost);
        slot.latency_cycles = Some(row.latency_cycles);
        slot.evals = Some(row.evals);
    }

    /// State counts: `(queued, running, cached, finished, failed)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for slot in &self.slots {
            match slot.state {
                CellState::Queued => c.0 += 1,
                CellState::Running => c.1 += 1,
                CellState::Cached => c.2 += 1,
                CellState::Finished => c.3 += 1,
                CellState::Failed => c.4 += 1,
            }
        }
        c
    }

    /// Ledger hit rate over resolved cells (cached + finished), `0.0`
    /// when nothing has resolved.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let (_, _, cached, finished, _) = self.counts();
        let resolved = cached + finished;
        if resolved == 0 {
            0.0
        } else {
            cached as f64 / resolved as f64
        }
    }

    /// The resolved cells as summary inputs (cached and finished alike;
    /// cells without a known outcome are skipped).
    #[must_use]
    pub fn cell_outcomes(&self) -> Vec<CellOutcome> {
        self.slots
            .iter()
            .filter_map(|s| {
                Some(CellOutcome {
                    scenario: s.id.clone(),
                    cost: s.cost?,
                    latency_cycles: s.latency_cycles?,
                    evals: s.evals?,
                })
            })
            .collect()
    }

    /// Builds the campaign summary of the model's current state. Pass
    /// `run` when the model watched a live run; replay summaries pass
    /// `None` and are byte-identical to
    /// [`CampaignSummary::from_ledger`] over the same ledger.
    #[must_use]
    pub fn summary(
        &self,
        name: &str,
        health: LedgerHealth,
        run: Option<RunCounts>,
    ) -> CampaignSummary {
        CampaignSummary::from_cells(name, &self.cell_outcomes(), health, run)
    }

    /// Renders the cell grid, wrapped to at most `width` glyphs per
    /// line.
    #[must_use]
    pub fn grid(&self, width: usize) -> String {
        let width = width.max(8);
        let mut out = String::new();
        for chunk in self.slots.chunks(width) {
            out.extend(chunk.iter().map(|s| s.state.glyph()));
            out.push('\n');
        }
        out
    }

    /// Renders the full headless frame: header, grid, per-scenario
    /// best-cost table with sparklines. Deterministic for a given model
    /// state; `width` bounds the grid and the sparkline column.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let (queued, running, cached, finished, failed) = self.counts();
        let mut out = format!(
            "cells {total}: {queued} queued, {running} running, {cached} cached, \
             {finished} finished, {failed} failed | hit rate {rate:.1}%\n",
            total = self.slots.len(),
            rate = self.hit_rate() * 100.0,
        );
        out.push_str(&self.grid(width));

        // Per-scenario rows: first-appearance order (cell order), one
        // row per distinct scenario id, best cost = min over its cells,
        // sparkline over its cells' costs in cell order.
        let mut order: Vec<&str> = Vec::new();
        let mut costs: HashMap<&str, Vec<f64>> = HashMap::new();
        for slot in &self.slots {
            if !costs.contains_key(slot.id.as_str()) {
                order.push(&slot.id);
            }
            let entry = costs.entry(slot.id.as_str()).or_default();
            if let Some(cost) = slot.cost {
                entry.push(cost);
            }
        }
        if !order.is_empty() {
            let id_w = order.iter().map(|id| id.chars().count()).max().unwrap_or(0).max(8);
            out.push_str(&format!(
                "{:<id_w$}  {:>12}  {:>6}  trend\n",
                "scenario", "best cost", "cells"
            ));
            for id in order {
                let cell_costs = &costs[id];
                let best = cell_costs.iter().copied().fold(f64::INFINITY, f64::min);
                let best =
                    if cell_costs.is_empty() { "-".to_string() } else { format!("{best:.4e}") };
                let spark_budget = width.saturating_sub(id_w + 24).max(4);
                let tail: Vec<f64> = cell_costs
                    .iter()
                    .copied()
                    .skip(cell_costs.len().saturating_sub(spark_budget))
                    .collect();
                out.push_str(&format!(
                    "{id:<id_w$}  {best:>12}  {cells:>6}  {spark}\n",
                    cells = cell_costs.len(),
                    spark = sparkline(&tail),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(cell: &str, hash: &str, cost: f64) -> LabEvent {
        LabEvent::Finished {
            cell: cell.into(),
            hash: hash.into(),
            cost,
            latency_cycles: 100,
            evals: 10,
        }
    }

    #[test]
    fn events_fold_into_grid_states() {
        let mut m = WatchModel::new();
        for (cell, hash) in [("a", "h1"), ("b", "h2"), ("c", "h3"), ("d", "h4")] {
            m.observe(&LabEvent::Queued { cell: cell.into(), hash: hash.into() });
        }
        m.observe(&LabEvent::Cached { cell: "a".into(), hash: "h1".into() });
        m.observe(&LabEvent::Started { cell: "b".into() });
        m.observe(&finished("b", "h2", 2.0));
        m.observe(&LabEvent::Failed { cell: "c".into(), hash: "h3".into(), error: "boom".into() });

        assert_eq!(m.counts(), (1, 0, 1, 1, 1));
        assert_eq!(m.grid(80), "=#X.\n");
        assert_eq!(m.hit_rate(), 0.5);
    }

    #[test]
    fn duplicate_hashes_share_one_slot() {
        let mut m = WatchModel::new();
        m.observe(&LabEvent::Queued { cell: "a".into(), hash: "h1".into() });
        m.observe(&LabEvent::Queued { cell: "a".into(), hash: "h1".into() });
        assert_eq!(m.slots().len(), 1);
    }

    #[test]
    fn replay_matches_a_cold_live_run() {
        // A cold live run: queued, started, finished. The replay path
        // only sees the ledger row. Both must render identically.
        let mut live = WatchModel::new();
        live.observe(&LabEvent::Queued { cell: "a".into(), hash: "h1".into() });
        live.observe(&LabEvent::Started { cell: "a".into() });
        live.observe(&finished("a", "h1", 3.0));

        // observe_row needs a real LedgerRow; the equivalence against a
        // genuine ledger is pinned end-to-end in the soma-bench tests.
        // Here: the state a Finished event leaves is the state replay
        // targets.
        assert_eq!(live.counts(), (0, 0, 0, 1, 0));
        assert_eq!(live.slots()[0].cost, Some(3.0));
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut m = WatchModel::new();
        m.observe(&LabEvent::Queued { cell: "fig2@edge/b1".into(), hash: "h1".into() });
        m.observe(&LabEvent::Queued { cell: "fig4@edge/b1".into(), hash: "h2".into() });
        m.observe(&finished("fig2@edge/b1", "h1", 0.5));
        let frame = m.render(80);
        assert_eq!(frame, m.render(80));
        assert!(frame.contains("hit rate 0.0%"), "{frame}");
        assert!(frame.contains("#.\n"), "{frame}");
        assert!(frame.contains("fig2@edge/b1"), "{frame}");
        assert!(frame.contains("5.0000e-1"), "{frame}");
        assert!(frame.contains("fig4@edge/b1"), "{frame}");
    }

    #[test]
    fn grid_wraps_at_width() {
        let mut m = WatchModel::new();
        for i in 0..20 {
            m.observe(&LabEvent::Queued { cell: format!("c{i}"), hash: format!("h{i}") });
        }
        let grid = m.grid(8);
        assert_eq!(grid.lines().count(), 3);
        assert!(grid.lines().all(|l| l.len() <= 8));
    }
}
