//! The typed campaign progress event, [`LabEvent`] — the shared
//! vocabulary between the `lab` orchestrator (its producer, which
//! re-exports it) and every observability consumer in this crate
//! ([`WatchModel`](crate::WatchModel), the campaign summary builder).
//!
//! The type lives here rather than in `soma-bench` so observers do not
//! have to depend on the orchestrator: `soma-obs` defines the
//! vocabulary, `soma-bench` speaks it.

use serde::{Deserialize, Serialize};

/// A typed progress event of the experiment orchestrator, mirroring the
/// per-search [`SearchEvent`](soma_search::SearchEvent) one level up:
/// events carry plain strings and numbers, serialise cheaply, and arrive
/// **live**: `Queued` then `Cached` in cell order up front, `Started` as
/// each search begins (execution order — nondeterministic under a
/// parallel parallelism policy, cell order under sequential), and
/// `Finished` in cell order, each emitted the moment the cell's row
/// lands in the ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LabEvent {
    /// A cell entered the work queue.
    Queued {
        /// The cell's scenario id.
        cell: String,
        /// The cell's ledger key (16 hex digits).
        hash: String,
    },
    /// A cell was served from the run ledger — no search work.
    Cached {
        /// The cell's scenario id.
        cell: String,
        /// The ledger key that hit.
        hash: String,
    },
    /// A cell's search started (ledger miss).
    Started {
        /// The cell's scenario id.
        cell: String,
    },
    /// A cell's search finished and its row was appended to the ledger.
    Finished {
        /// The cell's scenario id.
        cell: String,
        /// The ledger key the row was stored under.
        hash: String,
        /// Best (envelope) cost of the cell's portfolio.
        cost: f64,
        /// Best latency in cycles.
        latency_cycles: u64,
        /// Completed schedule evaluations of the cell's portfolio.
        evals: u64,
    },
    /// A cell's search panicked. The panic is isolated: the campaign
    /// keeps running, the cell gets no ledger row (a rerun retries it),
    /// and the run exits with a partial-failure code.
    Failed {
        /// The cell's scenario id.
        cell: String,
        /// The cell's ledger key (never written by this run).
        hash: String,
        /// The panic message, best-effort.
        error: String,
    },
}
