//! Gantt drill-down: re-render the `soma-sim` timeline chart for any
//! finished ledger row, on demand.
//!
//! A ledger row persists the cell's winning [`Encoding`] and its full
//! simulated [`Timeline`](soma_sim::Timeline), and the scenario
//! registry can rebuild the network the schedule was parsed against —
//! everything `soma_sim::render_gantt` needs. Rendering is therefore a
//! pure function of the row: no re-search, no re-simulation.

use soma_core::ParsedSchedule;
use soma_spec::ledger::LedgerRow;
use soma_spec::registry;

/// Renders the Gantt chart of a finished ledger row at the given
/// terminal width.
///
/// # Errors
///
/// A human-readable message when the row's scenario id is not in the
/// registry (an inline-hardware cell cannot be rebuilt from its id
/// alone) or its persisted encoding no longer parses against the
/// registry network (an engine-version skew the ledger key normally
/// prevents).
pub fn gantt_for_row(row: &LedgerRow, width: usize) -> Result<String, String> {
    let scenario = registry::lookup(&row.cell).ok_or_else(|| {
        format!(
            "scenario `{}` is not in the registry; only registry cells can be re-rendered",
            row.cell
        )
    })?;
    let net = scenario.network();
    // Binary ledger rows decode their outcome lazily — the drill-down
    // is the first (and only) consumer that needs the full timeline.
    let outcome = row
        .outcome()
        .ok_or_else(|| format!("row `{}` has a corrupt outcome payload on disk", row.cell))?;
    let sched = ParsedSchedule::new(&net, &outcome.best.encoding)
        .map_err(|e| format!("persisted encoding no longer parses: {e}"))?;
    Ok(soma_sim::render_gantt(&net, &sched, &outcome.best.report.timeline, width))
}
