//! Property tests pinning the streaming stats engine to a sort-based
//! oracle: whatever the constant-space aggregators report must match
//! (exactly, or within the P² paper's expectations) what a full sort of
//! the same sample says.
//!
//! Samples are seed-driven through the vendored proptest + StdRng, so
//! failures reproduce deterministically.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use soma_obs::{percentile_nearest_rank, P2Quantile, Sample, StreamingStats};

/// The oracle: sort a copy, take nearest-rank directly.
fn oracle_percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn sample_values(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            // Uniform in [-1e6, 1e6): 53 random mantissa bits scaled.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit - 0.5) * 2.0e6
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// StreamingStats min/max/mean/sum agree with a fold over the raw
    /// sample.
    #[test]
    fn streaming_stats_match_the_oracle(seed in 0u64..1_000_000, len in 1usize..300) {
        let values = sample_values(seed, len);
        let mut s = StreamingStats::new();
        for &x in &values {
            s.observe(x);
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = values.iter().sum();
        prop_assert_eq!(s.count(), len as u64);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        prop_assert!((s.mean() - sum / len as f64).abs() <= 1e-9 * sum.abs().max(1.0));
    }

    /// Splitting a stream at any point and merging the two aggregators
    /// reproduces the whole-stream aggregator exactly.
    #[test]
    fn merge_is_stream_concatenation(seed in 0u64..1_000_000, len in 2usize..300, cut_pm in 0u32..1000) {
        let values = sample_values(seed, len);
        let cut = (len * cut_pm as usize) / 1000;
        let (mut whole, mut left, mut right) =
            (StreamingStats::new(), StreamingStats::new(), StreamingStats::new());
        for &x in &values {
            whole.observe(x);
        }
        for &x in &values[..cut] {
            left.observe(x);
        }
        for &x in &values[cut..] {
            right.observe(x);
        }
        left.merge(&right);
        // min/max/count are exact; the sum may differ by float
        // re-association (merge adds the two partial sums).
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
        prop_assert!((left.sum() - whole.sum()).abs() <= 1e-9 * whole.sum().abs().max(1.0));
    }

    /// Exact-sample percentiles equal the sort-based oracle for every
    /// requested percentile, including the edges.
    #[test]
    fn sample_percentiles_match_the_oracle(seed in 0u64..1_000_000, len in 1usize..300) {
        let values = sample_values(seed, len);
        let mut sample = Sample::new();
        for &x in &values {
            sample.push(x);
        }
        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(sample.percentile(p), oracle_percentile(&values, p));
        }
    }

    /// The free function agrees with Sample on pre-sorted data (it is
    /// the same implementation loadgen's already-sorted latency vector
    /// goes through).
    #[test]
    fn free_function_matches_sample(seed in 0u64..1_000_000, len in 1usize..200) {
        let mut values = sample_values(seed, len);
        values.sort_by(f64::total_cmp);
        let mut sample = Sample::new();
        for &x in &values {
            sample.push(x);
        }
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(percentile_nearest_rank(&values, p), sample.percentile(p));
        }
    }

    /// The P² estimate stays inside the observed range and lands within
    /// a modest fraction of the range of the exact quantile on
    /// uniform-ish samples — the accuracy regime the estimator is
    /// specified for.
    #[test]
    fn p2_tracks_the_exact_quantile(seed in 0u64..1_000_000, len in 50usize..500, q_pm in 1u32..10) {
        let q = f64::from(q_pm) / 10.0; // 0.1 ..= 0.9
        let values = sample_values(seed, len);
        let mut est = P2Quantile::new(q);
        for &x in &values {
            est.observe(x);
        }
        let exact = oracle_percentile(&values, q * 100.0);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        let e = est.estimate();
        prop_assert!(e >= min && e <= max, "estimate {} outside [{}, {}]", e, min, max);
        prop_assert!(
            (e - exact).abs() <= 0.15 * range,
            "estimate {} too far from exact {} (range {})",
            e,
            exact,
            range
        );
    }

    /// P² is exact (equals the oracle) through its first five
    /// observations, for any sample.
    #[test]
    fn p2_is_exact_until_six(seed in 0u64..1_000_000, len in 1usize..6) {
        let values = sample_values(seed, len);
        let mut est = P2Quantile::new(0.5);
        for &x in &values {
            est.observe(x);
        }
        prop_assert_eq!(est.estimate(), oracle_percentile(&values, 50.0));
    }
}
