//! The `soma-experiment v1` format: workloads × hardware × search
//! configuration × seed portfolio, the complete description of one
//! harness run.
//!
//! ```text
//! soma-experiment v1
//! name fig2-edge
//! scenario fig2@edge/b1          # registry ids...
//! workload resnet50              # ...or a workload × hardware × batch grid
//! hardware cloud buffer_mib=16
//! batch 1 4
//! seeds 2025
//! effort 0.01
//! end
//! ```
//!
//! `scenario` lines name registry points directly; `workload` ×
//! `hardware` × `batch` lines span a grid that is appended after the
//! explicit scenarios (batch defaults to 1 if no `batch` line is given).
//! `hardware` takes a preset id plus optional inline `field=value`
//! overrides with [`HardwareSpec`](crate::HardwareSpec) semantics. The
//! remaining lines override [`SearchConfig`] knobs (defaults apply when
//! absent): `effort`, `t0`, `alpha`, `allocator_step`,
//! `max_allocator_iters`, `stage1_cap`, `stage2_cap`, `link_cuts` (0|1),
//! `time_budget` (seconds), and `weights <energy_exp> <delay_exp>`.
//! `seeds` lists the seed portfolio (default: the `SearchConfig` default
//! seed); the first seed also becomes `config.seed`, so a single-seed
//! experiment equals a plain `Scheduler::new(..).config(cfg).run()`.
//! `threads <auto|seq|N>` sets the [`Parallelism`] policy of the run
//! (default `auto`); it changes wall-clock only — results and ledger
//! bytes are bit-identical across policies, and the thread count is
//! deliberately **not** an input to [`cell_hash`](crate::cell_hash).

use std::fmt::Write as _;

use soma_arch::HardwareConfig;
use soma_model::{zoo, Network};
use soma_search::{Parallelism, SearchConfig};

use crate::error::{body_lines, SpecError};
use crate::hardware::{HardwareSpec, HwField, Preset};
use crate::registry::{lookup, scenario_id, Scenario};

/// A parsed experiment description. Obtain one with [`read_experiment`],
/// expand it with [`cells`](Self::cells), and run each cell with
/// `Scheduler::new(&cell.net, &cell.hw).config(spec.config.clone())
/// .seeds(spec.seeds.clone()).run()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (keys output files and logs).
    pub name: String,
    /// Explicit registry scenarios, in file order.
    pub scenarios: Vec<Scenario>,
    /// Grid axis: canonical zoo workload names.
    pub workloads: Vec<String>,
    /// Grid axis: hardware descriptions (preset + inline overrides).
    pub hardware: Vec<HardwareSpec>,
    /// Grid axis: batch sizes (defaults to `[1]` when the grid is used).
    pub batches: Vec<u32>,
    /// Seed portfolio (first seed is also `config.seed`).
    pub seeds: Vec<u64>,
    /// Search configuration after overrides.
    pub config: SearchConfig,
    /// Thread policy of the run (`threads` directive, default `auto`).
    /// Affects wall-clock only; never an input to
    /// [`cell_hash`](crate::cell_hash).
    pub parallelism: Parallelism,
}

/// One resolved (workload, platform, batch) point of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Scenario id: the registry id when the platform is a bare preset,
    /// otherwise `<workload>@<hardware-name>/b<batch>`.
    pub id: String,
    /// Canonical workload name.
    pub workload: String,
    /// Resolved platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// The workload network at this batch size.
    pub net: Network,
    /// The resolved platform configuration.
    pub hw: HardwareConfig,
}

impl ExperimentSpec {
    /// Expands the experiment into its cells: explicit scenarios first,
    /// then the workload × hardware × batch grid in file order.
    pub fn cells(&self) -> Vec<ExperimentCell> {
        let mut out = Vec::new();
        for sc in &self.scenarios {
            let hw = sc.hardware();
            out.push(ExperimentCell {
                id: sc.id(),
                workload: sc.workload.clone(),
                platform: hw.name.clone(),
                batch: sc.batch,
                net: sc.network(),
                hw,
            });
        }
        let batches: &[u32] = if self.batches.is_empty() { &[1] } else { &self.batches };
        for workload in &self.workloads {
            for spec in &self.hardware {
                let hw = spec.resolve();
                for &batch in batches {
                    let id = if spec.is_bare_preset() {
                        scenario_id(workload, spec.preset, batch)
                    } else {
                        format!("{workload}@{}/b{batch}", hw.name)
                    };
                    let net = zoo::by_name_at(workload, batch)
                        .expect("workload names are validated at parse time");
                    out.push(ExperimentCell {
                        id,
                        workload: workload.clone(),
                        platform: hw.name.clone(),
                        batch,
                        net,
                        hw: hw.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Writes an experiment to the `soma-experiment v1` text format
/// (canonical form: every configuration knob written explicitly).
pub fn write_experiment(spec: &ExperimentSpec) -> String {
    let mut out = String::new();
    out.push_str("soma-experiment v1\n");
    let _ = writeln!(out, "name {}", spec.name);
    for sc in &spec.scenarios {
        let _ = writeln!(out, "scenario {sc}");
    }
    for w in &spec.workloads {
        let _ = writeln!(out, "workload {w}");
    }
    for h in &spec.hardware {
        let _ = write!(out, "hardware {}", h.preset);
        for f in &h.overrides {
            let _ = write!(out, " {}={}", f.key(), f.value_text());
        }
        out.push('\n');
    }
    if !spec.batches.is_empty() {
        let _ = writeln!(
            out,
            "batch {}",
            spec.batches.iter().map(u32::to_string).collect::<Vec<_>>().join(" ")
        );
    }
    let _ = writeln!(
        out,
        "seeds {}",
        spec.seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
    );
    let c = &spec.config;
    let _ = writeln!(out, "effort {}", c.effort);
    let _ = writeln!(out, "weights {} {}", c.weights.energy_exp, c.weights.delay_exp);
    let _ = writeln!(out, "t0 {}", c.t0);
    let _ = writeln!(out, "alpha {}", c.alpha);
    let _ = writeln!(out, "allocator_step {}", c.allocator_step);
    let _ = writeln!(out, "max_allocator_iters {}", c.max_allocator_iters);
    let _ = writeln!(out, "stage1_cap {}", c.stage1_cap);
    let _ = writeln!(out, "stage2_cap {}", c.stage2_cap);
    let _ = writeln!(out, "link_cuts {}", u8::from(c.link_cuts));
    let _ = writeln!(out, "time_budget {}", c.stage_time_budget_secs);
    let _ = writeln!(out, "threads {}", spec.parallelism);
    out.push_str("end\n");
    out
}

/// Reads an experiment from the `soma-experiment v1` text format.
///
/// # Errors
///
/// Returns a located [`SpecError`] on grammar violations, unknown
/// scenario ids / workload names / presets / config keys, duplicate
/// scalar lines, a grid with no `hardware` line, or an experiment that
/// selects no cells.
pub fn read_experiment(text: &str) -> Result<ExperimentSpec, SpecError> {
    let lines = body_lines(text, "soma-experiment v1")?;

    let mut name: Option<String> = None;
    let mut scenarios = Vec::new();
    let mut workloads: Vec<String> = Vec::new();
    let mut hardware: Vec<HardwareSpec> = Vec::new();
    let mut batches: Vec<u32> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut config = SearchConfig::default();
    let mut parallelism = Parallelism::Auto;
    let mut seen_cfg: Vec<&'static str> = Vec::new();
    let mut first_workload: Option<(usize, usize)> = None;
    let mut last_line = 1usize;
    let mut ended = false;

    let mut seen = |key: &'static str, line: usize, col: usize| -> Result<(), SpecError> {
        if seen_cfg.contains(&key) {
            return Err(SpecError::new(line, col, format!("duplicate `{key}` line")));
        }
        seen_cfg.push(key);
        Ok(())
    };

    for toks in &lines {
        let head = toks[0];
        last_line = head.line;
        if ended {
            return Err(head.err("content after `end`"));
        }
        match head.text {
            "end" => ended = true,
            "name" => {
                let [_, value] = toks[..] else {
                    return Err(head.err("expected `name <experiment-name>`"));
                };
                if name.replace(value.text.to_string()).is_some() {
                    return Err(value.err("duplicate `name` line"));
                }
            }
            "scenario" => {
                let [_, value] = toks[..] else {
                    return Err(head.err("expected `scenario <workload>@<preset>/b<batch>`"));
                };
                let sc = lookup(value.text).ok_or_else(|| {
                    value.err(format!(
                        "unknown scenario id `{}` (format `<workload>@<preset>/b<batch>`)",
                        value.text
                    ))
                })?;
                scenarios.push(sc);
            }
            "workload" => {
                let [_, rest @ ..] = &toks[..] else { unreachable!("head is toks[0]") };
                if rest.is_empty() {
                    return Err(head.err("expected `workload <zoo-name>...`"));
                }
                first_workload.get_or_insert((head.line, head.col));
                for w in rest {
                    if zoo::by_name(w.text).is_none() {
                        return Err(w.err(format!("unknown zoo workload `{}`", w.text)));
                    }
                    workloads.push(w.text.to_string());
                }
            }
            "hardware" => {
                let [_, preset, overrides @ ..] = &toks[..] else {
                    return Err(head.err("expected `hardware <preset> [field=value ...]`"));
                };
                let p = Preset::parse(preset.text).ok_or_else(|| {
                    preset.err(format!(
                        "unknown preset `{}` (expected edge|cloud|custom)",
                        preset.text
                    ))
                })?;
                let mut fields = Vec::new();
                for o in overrides {
                    let Some((key, value)) = o.text.split_once('=') else {
                        return Err(
                            o.err(format!("expected `field=value` override, got `{}`", o.text))
                        );
                    };
                    match HwField::parse_pair(key, value, |msg| o.err(msg))? {
                        Some(f) => fields.push(f),
                        None => return Err(o.err(format!("unknown hardware field `{key}`"))),
                    }
                }
                hardware.push(HardwareSpec { preset: p, overrides: fields });
            }
            "batch" => {
                let [_, rest @ ..] = &toks[..] else { unreachable!("head is toks[0]") };
                if rest.is_empty() {
                    return Err(head.err("expected `batch <n>...`"));
                }
                for b in rest {
                    let v: u32 = b.parse("a positive integer batch size")?;
                    if v == 0 {
                        return Err(b.err("batch must be positive"));
                    }
                    batches.push(v);
                }
            }
            "seeds" => {
                let [_, rest @ ..] = &toks[..] else { unreachable!("head is toks[0]") };
                if rest.is_empty() {
                    return Err(head.err("expected `seeds <n>...`"));
                }
                seen("seeds", head.line, head.col)?;
                for s in rest {
                    seeds.push(s.parse("an unsigned integer seed")?);
                }
            }
            "threads" => {
                let [_, value] = toks[..] else {
                    return Err(head.err("expected `threads <auto|seq|N>`"));
                };
                seen("threads", head.line, head.col)?;
                parallelism = value.parse("`auto`, `seq`, or a thread count >= 1")?;
            }
            "weights" => {
                let [_, energy, delay] = toks[..] else {
                    return Err(head.err("expected `weights <energy_exp> <delay_exp>`"));
                };
                seen("weights", head.line, head.col)?;
                config.weights.energy_exp = energy.parse("a number")?;
                config.weights.delay_exp = delay.parse("a number")?;
                if !config.weights.energy_exp.is_finite() {
                    return Err(energy.err("`weights` must be finite"));
                }
                if !config.weights.delay_exp.is_finite() {
                    return Err(delay.err("`weights` must be finite"));
                }
            }
            key @ ("effort"
            | "t0"
            | "alpha"
            | "allocator_step"
            | "max_allocator_iters"
            | "stage1_cap"
            | "stage2_cap"
            | "link_cuts"
            | "time_budget") => {
                let [_, value] = toks[..] else {
                    return Err(head.err(format!("expected `{key} <value>`")));
                };
                match key {
                    "effort" => {
                        seen("effort", head.line, head.col)?;
                        config.effort = value.parse("a positive number")?;
                        if !(config.effort.is_finite() && config.effort > 0.0) {
                            return Err(value.err("effort must be positive and finite"));
                        }
                    }
                    "t0" => {
                        seen("t0", head.line, head.col)?;
                        config.t0 = value.parse("a number")?;
                        if !config.t0.is_finite() {
                            return Err(value.err("`t0` must be finite"));
                        }
                    }
                    "alpha" => {
                        seen("alpha", head.line, head.col)?;
                        config.alpha = value.parse("a number")?;
                        if !config.alpha.is_finite() {
                            return Err(value.err("`alpha` must be finite"));
                        }
                    }
                    "allocator_step" => {
                        seen("allocator_step", head.line, head.col)?;
                        config.allocator_step = value.parse("a number")?;
                        if !config.allocator_step.is_finite() || config.allocator_step < 0.0 {
                            return Err(value.err("`allocator_step` must be finite and >= 0"));
                        }
                    }
                    "max_allocator_iters" => {
                        seen("max_allocator_iters", head.line, head.col)?;
                        config.max_allocator_iters = value.parse("an iteration count")?;
                    }
                    "stage1_cap" => {
                        seen("stage1_cap", head.line, head.col)?;
                        config.stage1_cap = value.parse("an iteration count")?;
                    }
                    "stage2_cap" => {
                        seen("stage2_cap", head.line, head.col)?;
                        config.stage2_cap = value.parse("an iteration count")?;
                    }
                    "link_cuts" => {
                        seen("link_cuts", head.line, head.col)?;
                        let v: u8 = value.parse("0 or 1")?;
                        if v > 1 {
                            return Err(value.err("`link_cuts` expects 0 or 1"));
                        }
                        config.link_cuts = v == 1;
                    }
                    "time_budget" => {
                        seen("time_budget", head.line, head.col)?;
                        config.stage_time_budget_secs = value.parse("seconds")?;
                        if !config.stage_time_budget_secs.is_finite()
                            || config.stage_time_budget_secs < 0.0
                        {
                            return Err(value.err("`time_budget` must be finite and >= 0"));
                        }
                    }
                    _ => unreachable!("guarded by the outer match arm"),
                }
            }
            other => return Err(head.err(format!("unknown directive `{other}`"))),
        }
    }

    if !ended {
        return Err(SpecError::new(last_line + 1, 1, "missing `end` line"));
    }
    let name = name.ok_or_else(|| SpecError::new(last_line, 1, "missing `name` line"))?;
    if !workloads.is_empty() && hardware.is_empty() {
        let (line, col) = first_workload.expect("workloads non-empty");
        return Err(SpecError::new(line, col, "`workload` lines need a `hardware` line"));
    }
    if scenarios.is_empty() && workloads.is_empty() {
        return Err(SpecError::new(last_line, 1, "experiment selects no scenarios"));
    }
    if seeds.is_empty() {
        seeds.push(config.seed);
    }
    config.seed = seeds[0];
    Ok(ExperimentSpec { name, scenarios, workloads, hardware, batches, seeds, config, parallelism })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = "soma-experiment v1\n\
                        name fig2-edge\n\
                        scenario fig2@edge/b1\n\
                        seeds 2025\n\
                        effort 0.01\n\
                        end\n";

    #[test]
    fn minimal_experiment_parses() {
        let spec = read_experiment(FIG2).unwrap();
        assert_eq!(spec.name, "fig2-edge");
        assert_eq!(spec.seeds, [2025]);
        assert_eq!(spec.config.seed, 2025);
        assert_eq!(spec.config.effort, 0.01);
        // Everything else keeps SearchConfig defaults.
        assert_eq!(spec.config.stage2_cap, SearchConfig::default().stage2_cap);
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].id, "fig2@edge/b1");
        assert_eq!(cells[0].net.name(), "fig2");
        assert_eq!(cells[0].hw, HardwareConfig::edge());
    }

    #[test]
    fn grid_expands_workload_x_hardware_x_batch() {
        let text = "soma-experiment v1\nname grid\nworkload fig2 fig4\n\
                    hardware edge\nhardware cloud buffer_mib=16\nbatch 1 4\nend\n";
        let spec = read_experiment(text).unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].id, "fig2@edge/b1");
        assert_eq!(cells[1].id, "fig2@edge/b4");
        // Overridden hardware is keyed by its resolved name, not the
        // registry preset.
        assert_eq!(cells[2].id, "fig2@cloud-128tops/b1");
        assert_eq!(cells[2].hw.buffer_bytes, 16 << 20);
        assert_eq!(cells[7].workload, "fig4");
        assert_eq!(cells[7].batch, 4);
    }

    #[test]
    fn round_trips_through_text() {
        let spec = read_experiment(FIG2).unwrap();
        let text = write_experiment(&spec);
        assert_eq!(read_experiment(&text).unwrap(), spec);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = read_experiment("soma-experiment v1\nname x\nscenario fig2@warp/b1\nend\n")
            .unwrap_err();
        assert_eq!((e.line, e.col), (3, 10));
        let e =
            read_experiment("soma-experiment v1\nname x\nworkload resnet9000\nend\n").unwrap_err();
        assert_eq!((e.line, e.col), (3, 10));
        let e = read_experiment(
            "soma-experiment v1\nname x\nscenario fig2@edge/b1\neffort 0.1\neffort 0.2\nend\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.to_string().contains("duplicate `effort`"), "{e}");
        let e = read_experiment("soma-experiment v1\nname x\nworkload fig2\nend\n").unwrap_err();
        assert!(e.to_string().contains("need a `hardware` line"), "{e}");
        let e = read_experiment("soma-experiment v1\nname x\nend\n").unwrap_err();
        assert!(e.to_string().contains("selects no scenarios"), "{e}");
    }

    #[test]
    fn threads_directive_sets_parallelism() {
        let base = "soma-experiment v1\nname x\nscenario fig2@edge/b1\n";
        let spec = read_experiment(&format!("{base}threads 4\nend\n")).unwrap();
        assert_eq!(spec.parallelism, Parallelism::Fixed(4));
        let spec = read_experiment(&format!("{base}threads seq\nend\n")).unwrap();
        assert_eq!(spec.parallelism, Parallelism::Sequential);
        let spec = read_experiment(&format!("{base}threads auto\nend\n")).unwrap();
        assert_eq!(spec.parallelism, Parallelism::Auto);
        // Default when the directive is absent.
        let spec = read_experiment(&format!("{base}end\n")).unwrap();
        assert_eq!(spec.parallelism, Parallelism::Auto);
        // Round-trips through the canonical writer.
        let spec = read_experiment(&format!("{base}threads 8\nend\n")).unwrap();
        assert_eq!(read_experiment(&write_experiment(&spec)).unwrap(), spec);
    }

    #[test]
    fn threads_directive_rejects_bad_values() {
        let base = "soma-experiment v1\nname x\nscenario fig2@edge/b1\n";
        let e = read_experiment(&format!("{base}threads 0\nend\n")).unwrap_err();
        assert!(e.to_string().contains("thread count"), "{e}");
        let e = read_experiment(&format!("{base}threads fast\nend\n")).unwrap_err();
        assert_eq!((e.line, e.col), (4, 9));
        let e = read_experiment(&format!("{base}threads 2\nthreads 4\nend\n")).unwrap_err();
        assert!(e.to_string().contains("duplicate `threads`"), "{e}");
        let e = read_experiment(&format!("{base}threads\nend\n")).unwrap_err();
        assert!(e.to_string().contains("expected `threads"), "{e}");
    }

    #[test]
    fn default_seeds_follow_search_config() {
        let spec =
            read_experiment("soma-experiment v1\nname x\nscenario fig2@edge/b1\nend\n").unwrap();
        assert_eq!(spec.seeds, [SearchConfig::default().seed]);
    }
}
