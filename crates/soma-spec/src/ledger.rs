//! The on-disk **run ledger**: an append-only JSONL file mapping cell
//! content hashes to losslessly persisted [`SearchOutcome`]s.
//!
//! The ledger is the workspace's content-addressed result cache. One
//! JSON line per completed cell, keyed by [`cell_hash`](crate::cell_hash)
//! over everything that determines the outcome (scenario id, resolved
//! hardware, full `SearchConfig`, seed portfolio, engine version); a
//! partially written trailing line — the signature of a process killed
//! mid-append — is detected, dropped and truncated away on load, so an
//! interrupted producer always leaves a valid prefix.
//!
//! Two producers share this type: the `lab` experiment orchestrator
//! (`soma-bench`), which writes rows in cell order for its
//! byte-identical-resume guarantee, and the `soma-serve` daemon, which
//! appends rows as requests complete and serves repeat requests straight
//! from the index — the cache grows across restarts because every append
//! is flushed before the result is reported.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use serde::json::{self, Value};
use soma_search::record::{outcome_from_json, outcome_to_json, ENGINE_VERSION};
use soma_search::{SearchConfig, SearchOutcome};

use crate::hash::cell_hash_hex;
use crate::ExperimentCell;

/// Ledger line format version; bumping it invalidates old ledgers.
pub const LEDGER_VERSION: u64 = 1;

/// One persisted ledger row: the cell's identity plus its complete
/// [`SearchOutcome`].
#[derive(Debug, Clone)]
pub struct LedgerRow {
    /// The content hash this row is keyed by (16 hex digits).
    pub hash: String,
    /// Scenario id of the cell.
    pub cell: String,
    /// Canonical workload name.
    pub workload: String,
    /// Resolved platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// The cell's search outcome, losslessly persisted.
    pub outcome: SearchOutcome,
}

impl LedgerRow {
    /// Builds a row for one experiment cell.
    pub fn new(cell: &ExperimentCell, hash: &str, outcome: SearchOutcome) -> Self {
        Self {
            hash: hash.to_string(),
            cell: cell.id.clone(),
            workload: cell.workload.clone(),
            platform: cell.platform.clone(),
            batch: cell.batch,
            outcome,
        }
    }

    /// Renders the row as its single-line JSON ledger entry (no trailing
    /// newline). Deterministic: equal rows render byte-identically.
    pub fn to_line(&self) -> String {
        let mut o = Value::obj();
        o.push("v", LEDGER_VERSION.into());
        o.push("hash", self.hash.as_str().into());
        o.push("cell", self.cell.as_str().into());
        o.push("workload", self.workload.as_str().into());
        o.push("platform", self.platform.as_str().into());
        o.push("batch", self.batch.into());
        o.push("outcome", outcome_to_json(&self.outcome));
        json::to_string(&o)
    }

    /// Parses one ledger line back into a row.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first schema violation
    /// (unsupported version, missing field, malformed outcome).
    pub fn from_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let version = v.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        if version != LEDGER_VERSION {
            return Err(format!("unsupported ledger version {version}"));
        }
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing `{key}`"))?
                .to_string())
        };
        let batch = v.get("batch").and_then(Value::as_u64).ok_or("missing `batch`")?;
        let outcome = outcome_from_json(v.get("outcome").ok_or("missing `outcome`")?)
            .map_err(|e| e.to_string())?;
        Ok(Self {
            hash: text("hash")?,
            cell: text("cell")?,
            workload: text("workload")?,
            platform: text("platform")?,
            batch: u32::try_from(batch).map_err(|_| "batch exceeds u32".to_string())?,
            outcome,
        })
    }
}

/// The on-disk run ledger: an append-only JSONL file mapping cell
/// content hashes to persisted [`SearchOutcome`]s.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    rows: Vec<LedgerRow>,
    index: HashMap<String, usize>,
}

impl Ledger {
    /// Loads (or creates the notion of) the ledger at `path`. A missing
    /// file is an empty ledger. A partially written trailing line — the
    /// signature of a run killed mid-append — is dropped and truncated
    /// away so subsequent appends continue from the last complete row.
    ///
    /// # Errors
    ///
    /// I/O errors, or a corrupt line *before* the last (which indicates
    /// real damage rather than an interrupted append).
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut ledger = Self { path: path.to_path_buf(), rows: Vec::new(), index: HashMap::new() };
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ledger),
            Err(e) => return Err(e),
        };

        let mut keep_bytes = 0usize;
        let mut offset = 0usize;
        let lines: Vec<&str> = text.split('\n').collect();
        for (i, line) in lines.iter().enumerate() {
            let is_last = i + 1 == lines.len();
            if line.is_empty() {
                offset += 1;
                continue;
            }
            match LedgerRow::from_line(line) {
                Ok(row) => {
                    let complete = !is_last; // `split` leaves no trailing '\n' on the last piece
                    if !complete {
                        break; // no newline after it: treat as torn write
                    }
                    ledger.index.insert(row.hash.clone(), ledger.rows.len());
                    ledger.rows.push(row);
                    offset += line.len() + 1;
                    keep_bytes = offset;
                }
                Err(msg) if is_last => {
                    // Torn trailing line: drop it.
                    let _ = msg;
                    break;
                }
                Err(msg) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: corrupt ledger line {}: {msg}", path.display(), i + 1),
                    ));
                }
            }
        }
        if keep_bytes < text.len() {
            // Truncate the torn tail so appends produce a clean file.
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(keep_bytes as u64)?;
        }
        Ok(ledger)
    }

    /// The ledger's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All rows, in file order.
    pub fn rows(&self) -> &[LedgerRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the ledger holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by its cell content hash.
    pub fn lookup(&self, hash: &str) -> Option<&LedgerRow> {
        self.index.get(hash).map(|&i| &self.rows[i])
    }

    /// Appends one row, creating parent directories and the file on
    /// first use, and flushes before returning — once `append` returns,
    /// the row survives a kill.
    ///
    /// # Errors
    ///
    /// I/O errors creating directories or writing the line.
    pub fn append(&mut self, row: LedgerRow) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        writeln!(f, "{}", row.to_line())?;
        f.flush()?;
        self.index.insert(row.hash.clone(), self.rows.len());
        self.rows.push(row);
        Ok(())
    }
}

/// The ledger key of one experiment cell under a spec's configuration.
pub fn cell_key(cell: &ExperimentCell, config: &SearchConfig, seeds: &[u64]) -> String {
    cell_hash_hex(&cell.id, &cell.hw, config, seeds, ENGINE_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let dir = std::env::temp_dir().join("soma-ledger-unit");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{}-corrupt.jsonl", std::process::id()));
        fs::write(&path, "garbage\n{\"v\":1}\n").unwrap();
        let err = Ledger::load(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_ledger() {
        let path = std::env::temp_dir().join("soma-ledger-unit-definitely-missing.jsonl");
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(ledger.len(), 0);
        assert!(ledger.lookup("0000000000000000").is_none());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let err = LedgerRow::from_line("{\"v\":99}").unwrap_err();
        assert!(err.contains("unsupported ledger version 99"), "{err}");
    }
}
