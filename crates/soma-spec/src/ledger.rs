//! The on-disk **run ledger**: an append-only JSONL file mapping cell
//! content hashes to losslessly persisted [`SearchOutcome`]s.
//!
//! The ledger is the workspace's content-addressed result cache. One
//! JSON line per completed cell, keyed by [`cell_hash`](crate::cell_hash)
//! over everything that determines the outcome (scenario id, resolved
//! hardware, full `SearchConfig`, seed portfolio, engine version).
//! The on-disk format, recovery semantics and versioning rules are
//! specified in `specs/LEDGER.md`.
//!
//! **Crash safety and self-validation** (format v2):
//!
//! * Every row carries a `crc` field — FNV-1a 64 over the canonical
//!   rendering of the rest of the line — so silent corruption (a
//!   flipped bit that still parses as JSON) is caught, not replayed.
//! * A partially written trailing line — the signature of a process
//!   killed mid-append — is dropped and truncated away on load.
//! * A corrupt row **anywhere else** in the file (torn by a crashed
//!   concurrent writer, bit-rotted, or plain garbage) no longer aborts
//!   the load: the row is moved to a `<name>.quarantine.jsonl` sidecar,
//!   the main file is compacted crash-safely (write temp + rename),
//!   and every valid row survives. [`Ledger::health`] reports exactly
//!   what happened.
//! * Duplicate-hash rows are **last-write-wins**: all copies stay in
//!   the file (append-only history), lookups resolve to the newest,
//!   and [`LedgerHealth::duplicates`] counts the shadowed ones.
//!
//! Two producers share this type: the `lab` experiment orchestrator
//! (`soma-bench`), which writes rows in cell order for its
//! byte-identical-resume guarantee, and the `soma-serve` daemon, which
//! appends rows as requests complete and serves repeat requests straight
//! from the index — the cache grows across restarts because every append
//! is flushed before the result is reported.
//!
//! For chaos testing, a deterministic [`FaultPlan`](crate::fault) can be
//! attached with [`Ledger::inject_faults`]: appends then suffer seeded
//! torn writes, silent bit-flips and fsync failures, which is how the
//! recovery paths above are exercised end-to-end.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::json::{self, Value};
use soma_search::record::{outcome_from_json, outcome_to_json, ENGINE_VERSION};
use soma_search::{SearchConfig, SearchOutcome};

use crate::fault::{self, Fault, FaultPlan};
use crate::hash::cell_hash_hex;
use crate::ExperimentCell;

/// Ledger line format version; bumping it invalidates old ledgers
/// (rows from other versions are quarantined on load, not replayed).
/// v2 added the per-row `crc` checksum.
pub const LEDGER_VERSION: u64 = 2;

/// FNV-1a 64 over a byte stream — the row checksum.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One persisted ledger row: the cell's identity plus its complete
/// [`SearchOutcome`].
#[derive(Debug, Clone)]
pub struct LedgerRow {
    /// The content hash this row is keyed by (16 hex digits).
    pub hash: String,
    /// Scenario id of the cell.
    pub cell: String,
    /// Canonical workload name.
    pub workload: String,
    /// Resolved platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// The cell's search outcome, losslessly persisted.
    pub outcome: SearchOutcome,
}

impl LedgerRow {
    /// Builds a row for one experiment cell.
    pub fn new(cell: &ExperimentCell, hash: &str, outcome: SearchOutcome) -> Self {
        Self {
            hash: hash.to_string(),
            cell: cell.id.clone(),
            workload: cell.workload.clone(),
            platform: cell.platform.clone(),
            batch: cell.batch,
            outcome,
        }
    }

    /// The row's payload object — every field except the checksum, in
    /// canonical order. The checksum covers this object's canonical
    /// rendering.
    fn payload(&self) -> Value {
        let mut o = Value::obj();
        o.push("v", LEDGER_VERSION.into());
        o.push("hash", self.hash.as_str().into());
        o.push("cell", self.cell.as_str().into());
        o.push("workload", self.workload.as_str().into());
        o.push("platform", self.platform.as_str().into());
        o.push("batch", self.batch.into());
        o.push("outcome", outcome_to_json(&self.outcome));
        o
    }

    /// Renders the row as its single-line JSON ledger entry (no trailing
    /// newline), `crc` first. Deterministic: equal rows render
    /// byte-identically.
    pub fn to_line(&self) -> String {
        let payload = self.payload();
        let crc = format!("{:016x}", fnv1a(json::to_string(&payload).bytes()));
        let mut o = Value::obj();
        o.push("crc", crc.into());
        let Value::Obj(fields) = payload else { unreachable!("payload is an object") };
        for (k, v) in fields {
            o.push(k, v);
        }
        json::to_string(&o)
    }

    /// Parses and **verifies** one ledger line: the embedded `crc` must
    /// match FNV-1a over the canonical rendering of the remaining
    /// fields, or the row is corrupt.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation (bad JSON,
    /// missing/mismatched checksum, unsupported version, missing field,
    /// malformed outcome).
    pub fn from_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let Value::Obj(fields) = v else { return Err("row is not a JSON object".into()) };
        let mut crc = None;
        let mut payload = Value::obj();
        for (k, val) in fields {
            if k == "crc" {
                crc = Some(val);
            } else {
                payload.push(k, val);
            }
        }
        let crc = crc.and_then(|c| c.as_str().map(str::to_string)).ok_or("missing `crc`")?;
        let computed = format!("{:016x}", fnv1a(json::to_string(&payload).bytes()));
        if crc != computed {
            return Err(format!("checksum mismatch: row says {crc}, content is {computed}"));
        }
        let v = payload;
        let version = v.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        if version != LEDGER_VERSION {
            return Err(format!("unsupported ledger version {version}"));
        }
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing `{key}`"))?
                .to_string())
        };
        let batch = v.get("batch").and_then(Value::as_u64).ok_or("missing `batch`")?;
        let outcome = outcome_from_json(v.get("outcome").ok_or("missing `outcome`")?)
            .map_err(|e| e.to_string())?;
        Ok(Self {
            hash: text("hash")?,
            cell: text("cell")?,
            workload: text("workload")?,
            platform: text("platform")?,
            batch: u32::try_from(batch).map_err(|_| "batch exceeds u32".to_string())?,
            outcome,
        })
    }
}

/// What [`Ledger::load`] found and repaired — the ledger's self-report.
/// A healthy load is `kept == rows, everything else zero/false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerHealth {
    /// Valid rows kept (including shadowed duplicates).
    pub kept: usize,
    /// Corrupt non-trailing rows moved to the quarantine sidecar.
    pub quarantined: usize,
    /// Whether a partially written trailing line was dropped.
    pub truncated: bool,
    /// Valid rows whose hash repeats an earlier row's (last-write-wins;
    /// this counts the shadowed earlier copies).
    pub duplicates: usize,
}

impl LedgerHealth {
    /// Whether the load found any damage at all.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && !self.truncated
    }
}

/// The on-disk run ledger: an append-only JSONL file mapping cell
/// content hashes to persisted [`SearchOutcome`]s.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    rows: Vec<LedgerRow>,
    index: HashMap<String, usize>,
    health: LedgerHealth,
    faults: Option<Arc<FaultPlan>>,
}

/// The quarantine sidecar path of a ledger: `runs/x.jsonl` →
/// `runs/x.quarantine.jsonl`.
pub fn quarantine_path(ledger: &Path) -> PathBuf {
    let stem = ledger.file_stem().and_then(|s| s.to_str()).unwrap_or("ledger");
    ledger.with_file_name(format!("{stem}.quarantine.jsonl"))
}

impl Ledger {
    /// Loads (or creates the notion of) the ledger at `path`. A missing
    /// file is an empty ledger.
    ///
    /// Recovery is automatic and crash-safe:
    ///
    /// * a partially written trailing line (a kill mid-append) is
    ///   dropped and truncated away;
    /// * corrupt rows anywhere else (checksum mismatch, bad JSON,
    ///   foreign version) are appended to the `<name>.quarantine.jsonl`
    ///   sidecar and the main file is compacted via temp-file + rename,
    ///   so a crash mid-repair leaves either the old or the new file —
    ///   never a mix;
    /// * duplicate-hash rows all stay; lookups resolve to the newest
    ///   (last-write-wins).
    ///
    /// [`health`](Self::health) reports what was kept, quarantined,
    /// truncated and shadowed. Loading never loses a valid row.
    ///
    /// # Errors
    ///
    /// Real I/O errors only — corruption is repaired, not fatal.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut ledger = Self {
            path: path.to_path_buf(),
            rows: Vec::new(),
            index: HashMap::new(),
            health: LedgerHealth::default(),
            faults: None,
        };
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ledger),
            Err(e) => return Err(e),
        };
        // Bit-rot can break UTF-8 itself; decode lossily so the damaged
        // row quarantines like any other instead of failing the load.
        // After a lossy decode, byte offsets into the original file are
        // meaningless, so in-place tail truncation is off the table and
        // the repair must go through the full compaction path.
        let (text, lossy) = match String::from_utf8(bytes) {
            Ok(text) => (text, false),
            Err(e) => (String::from_utf8_lossy(e.as_bytes()).into_owned(), true),
        };

        let mut kept_lines: Vec<&str> = Vec::new();
        let mut quarantined: Vec<&str> = Vec::new();
        let lines: Vec<&str> = text.split('\n').collect();
        for (i, line) in lines.iter().enumerate() {
            // `split` leaves no trailing '\n' on the last piece, so a
            // non-empty last piece is a torn trailing write.
            let is_torn_tail = i + 1 == lines.len();
            if line.is_empty() {
                continue;
            }
            if is_torn_tail {
                ledger.health.truncated = true;
                break;
            }
            match LedgerRow::from_line(line) {
                Ok(row) => {
                    if let Some(prev) = ledger.index.insert(row.hash.clone(), ledger.rows.len()) {
                        let _ = prev;
                        ledger.health.duplicates += 1;
                    }
                    ledger.rows.push(row);
                    kept_lines.push(line);
                }
                Err(_) => quarantined.push(line),
            }
        }
        ledger.health.kept = ledger.rows.len();
        ledger.health.quarantined = quarantined.len();

        if !quarantined.is_empty() || lossy {
            // Quarantine first, then compact: a crash between the two
            // leaves the corrupt rows present in both places, and the
            // next load simply quarantines them again.
            if !quarantined.is_empty() {
                let qpath = quarantine_path(path);
                let mut q = fs::OpenOptions::new().create(true).append(true).open(&qpath)?;
                for line in &quarantined {
                    writeln!(q, "{line}")?;
                }
                q.flush()?;
            }
            Self::rewrite(path, &kept_lines)?;
        } else if ledger.health.truncated {
            // Only a torn tail: truncate in place (the prefix is intact).
            let keep: usize = kept_lines.iter().map(|l| l.len() + 1).sum();
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(keep as u64)?;
        }
        Ok(ledger)
    }

    /// Crash-safely replaces the ledger file with exactly `lines`:
    /// write a temp file in the same directory, flush, rename over.
    fn rewrite(path: &Path, lines: &[&str]) -> io::Result<()> {
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            for line in lines {
                writeln!(f, "{line}")?;
            }
            f.flush()?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Attaches a deterministic fault plan: subsequent appends consult
    /// it (site [`fault::site::LEDGER_APPEND`]) and may tear, corrupt
    /// or fail. Chaos-test plumbing — never set in production paths.
    pub fn inject_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// The ledger's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What [`load`](Self::load) found and repaired.
    pub fn health(&self) -> LedgerHealth {
        self.health
    }

    /// All rows, in file order (shadowed duplicates included).
    pub fn rows(&self) -> &[LedgerRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the ledger holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by its cell content hash. With duplicate-hash
    /// rows, resolves to the newest (last-write-wins — pinned by test).
    pub fn lookup(&self, hash: &str) -> Option<&LedgerRow> {
        self.index.get(hash).map(|&i| &self.rows[i])
    }

    /// Appends one row, creating parent directories and the file on
    /// first use, and flushes before returning — once `append` returns,
    /// the row survives a kill. A repeated hash is allowed (the file is
    /// append-only history) and shadows the earlier row in lookups.
    ///
    /// # Errors
    ///
    /// I/O errors creating directories or writing the line — including
    /// injected ones when a [`FaultPlan`] is attached. After an error
    /// the in-memory index is unchanged; the on-disk tail may be torn,
    /// which the next [`load`](Self::load) repairs.
    pub fn append(&mut self, row: LedgerRow) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let line = row.to_line();
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&self.path)?;

        match self.faults.as_ref().and_then(|p| p.next(fault::site::LEDGER_APPEND)) {
            Some(Fault::TornWrite { keep_per_mille }) => {
                // Persist only a prefix, then "crash" the append.
                let keep = line.len() * usize::from(keep_per_mille) / 1000;
                f.write_all(&line.as_bytes()[..keep])?;
                f.flush()?;
                return Err(io::Error::other("injected fault: torn write"));
            }
            Some(Fault::BitFlip { salt }) => {
                // The write "succeeds" but the medium lies: one bit of
                // the persisted line is flipped. The row is indexed in
                // memory (the writer believes it) and only the next
                // load's checksum pass discovers the damage.
                let mut bytes = line.clone().into_bytes();
                fault::flip_bit(&mut bytes, salt);
                f.write_all(&bytes)?;
                f.write_all(b"\n")?;
                f.flush()?;
            }
            Some(Fault::FsyncError) => {
                return Err(io::Error::other("injected fault: fsync failed"));
            }
            _ => {
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
                f.flush()?;
            }
        }
        if let Some(prev) = self.index.insert(row.hash.clone(), self.rows.len()) {
            let _ = prev;
            self.health.duplicates += 1;
        }
        self.rows.push(row);
        Ok(())
    }
}

/// The ledger key of one experiment cell under a spec's configuration.
pub fn cell_key(cell: &ExperimentCell, config: &SearchConfig, seeds: &[u64]) -> String {
    cell_hash_hex(&cell.id, &cell.hw, config, seeds, ENGINE_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("soma-ledger-unit");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn corrupt_interior_line_is_quarantined_not_fatal() {
        let path = tmp("corrupt.jsonl");
        let qpath = quarantine_path(&path);
        let _ = fs::remove_file(&qpath);
        fs::write(&path, "garbage\n").unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(
            ledger.health(),
            LedgerHealth { kept: 0, quarantined: 1, truncated: false, duplicates: 0 }
        );
        assert!(!ledger.health().is_clean());
        // The corrupt line moved to the sidecar and the main file is
        // compacted clean: a reload reports full health.
        assert_eq!(fs::read_to_string(&qpath).unwrap(), "garbage\n");
        assert_eq!(fs::read(&path).unwrap().len(), 0);
        assert!(Ledger::load(&path).unwrap().health().is_clean());
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
    }

    #[test]
    fn missing_file_is_an_empty_ledger() {
        let path = std::env::temp_dir().join("soma-ledger-unit-definitely-missing.jsonl");
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(ledger.len(), 0);
        assert!(ledger.lookup("0000000000000000").is_none());
        assert!(ledger.health().is_clean());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        // A v1 row (no crc) fails the checksum gate first; a crc'd row
        // of a foreign version fails the version gate.
        let err = LedgerRow::from_line("{\"v\":1,\"hash\":\"x\"}").unwrap_err();
        assert!(err.contains("missing `crc`"), "{err}");
        let payload = "{\"v\":99}";
        let crc = format!("{:016x}", fnv1a(payload.bytes()));
        let line = format!("{{\"crc\":\"{crc}\",\"v\":99}}");
        let err = LedgerRow::from_line(&line).unwrap_err();
        assert!(err.contains("unsupported ledger version 99"), "{err}");
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let payload = "{\"v\":2,\"hash\":\"abc\"}";
        let line =
            format!("{{\"crc\":\"{:016x}\",\"v\":2,\"hash\":\"abd\"}}", fnv1a(payload.bytes()));
        let err = LedgerRow::from_line(&line).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn quarantine_path_replaces_the_extension() {
        assert_eq!(
            quarantine_path(Path::new("runs/serve.jsonl")),
            PathBuf::from("runs/serve.quarantine.jsonl")
        );
    }
}
