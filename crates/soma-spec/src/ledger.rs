//! The on-disk **run ledger**: a content-addressed result cache mapping
//! cell hashes to losslessly persisted [`SearchOutcome`]s.
//!
//! Two on-disk formats share one API (format generation
//! [`LEDGER_VERSION`] = 3, specified in `specs/LEDGER.md`):
//!
//! * **Binary, sharded** (the default for new ledgers): the ledger is a
//!   *directory* of 16 shard files (`shard-0.bin` … `shard-f.bin`,
//!   keyed by the first hex digit of the cell hash so concurrent
//!   writers never contend on one file), each holding length-prefixed,
//!   checksummed frames, plus a disposable `index.bin` sidecar carrying
//!   every row's metadata and frame location. A load that finds the
//!   index in sync with the shard files builds the whole lookup table
//!   **without reading a single frame** — outcomes decode lazily on
//!   first access — which is what makes resume and cache lookup
//!   O(cells-missing) instead of O(cells-done).
//! * **JSONL** (format v2 rows, the human-readable debug surface —
//!   `lab --ledger-format json`): one JSON line per row, `crc`-first.
//!   v1 rows (no `crc`) are migrated on read. Paths ending in `.jsonl`
//!   load as JSONL; directories load as binary.
//!
//! **Crash safety and self-validation** (both formats):
//!
//! * Every row carries an FNV-1a 64 checksum, so silent corruption (a
//!   flipped bit that still parses) is caught, not replayed.
//! * A partially written trailing row — the signature of a process
//!   killed mid-append — is dropped and truncated away **in place**
//!   (`set_len` + fsync); a torn tail on a gigabyte ledger no longer
//!   costs a whole-file rewrite.
//! * A corrupt row anywhere else quarantines: the damaged bytes move to
//!   a sidecar (`<name>.quarantine.jsonl` next to a JSONL ledger,
//!   `quarantine.jsonl` inside a binary ledger directory) and the
//!   damaged file is compacted crash-safely (write temp + rename).
//!   Every valid row survives; [`Ledger::health`] reports exactly what
//!   happened. Loading a quarantine sidecar *as* a ledger is refused —
//!   it would re-quarantine its own contents.
//! * Duplicate-hash rows are **last-write-wins**: all copies stay (the
//!   ledger is append-only history), lookups resolve to the newest, and
//!   [`LedgerHealth::duplicates`] counts the shadowed ones.
//!
//! Observers (`watch`, summary builders, replay probes) must use
//! [`Ledger::load_readonly`], which tolerates torn tails and corrupt
//! rows **without writing anything** — a repairing load under a live
//! writer would truncate the writer's in-progress tail out from under
//! it.
//!
//! For chaos testing, a deterministic [`FaultPlan`](crate::fault) can be
//! attached with [`Ledger::inject_faults`] (or at load time with
//! [`Ledger::load_with_faults`]): appends then suffer seeded torn
//! writes, silent bit-flips and fsync failures, and every compaction
//! rewrite ticks the [`fault::site::LEDGER_COMPACT`] counter so tests
//! can assert which repair path ran.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use serde::json::{self, Value};
use soma_search::record::{
    outcome_from_bytes, outcome_from_json, outcome_to_bytes, outcome_to_json, ENGINE_VERSION,
};
use soma_search::wire::{self, Reader};
use soma_search::{SearchConfig, SearchOutcome};

use crate::fault::{self, Fault, FaultPlan};
use crate::hash::cell_hash_hex;
use crate::ExperimentCell;

/// Ledger **format generation**. v3 is the binary sharded format; the
/// JSONL debug surface stays at row version [`JSONL_VERSION`].
pub const LEDGER_VERSION: u64 = 3;

/// Row version of the JSONL (debug) surface. v2 added the per-row
/// `crc` checksum; v1 rows (no `crc`) are migrated on read.
pub const JSONL_VERSION: u64 = 2;

/// Number of shard files in a binary ledger directory (one per first
/// hex digit of the cell hash).
pub const SHARDS: usize = 16;

/// 8-byte header of every shard file.
const SHARD_MAGIC: &[u8; 8] = b"SOMALED3";
/// 4-byte prefix of every frame — the resync anchor after damage.
const FRAME_MAGIC: &[u8; 4] = b"FRM3";
/// 8-byte header of the index sidecar.
const INDEX_MAGIC: &[u8; 8] = b"SOMAIDX3";
/// The index sidecar inside a binary ledger directory.
const INDEX_FILE: &str = "index.bin";
/// Human-readable marker dropped into a binary ledger directory.
const MARKER_FILE: &str = "LEDGER";
/// Quarantine sidecar inside a binary ledger directory.
const QUARANTINE_FILE: &str = "quarantine.jsonl";

/// FNV-1a 64 over a byte stream — the row/frame/index checksum.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Which shard a cell hash lives in: its first hex digit (cell hashes
/// are 16 lowercase hex digits; anything else falls back to a hash).
fn shard_of(hash: &str) -> u8 {
    match hash.as_bytes().first().copied() {
        Some(b @ b'0'..=b'9') => b - b'0',
        Some(b @ b'a'..=b'f') => b - b'a' + 10,
        Some(b @ b'A'..=b'F') => b - b'A' + 10,
        _ => (fnv1a(hash.bytes()) % SHARDS as u64) as u8,
    }
}

/// Path of shard `s` inside a binary ledger directory.
fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s:x}.bin"))
}

/// The two on-disk ledger formats behind the one [`Ledger`] API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerFormat {
    /// One JSON line per row — the debug/quarantine surface.
    Jsonl,
    /// A directory of checksummed binary shard files plus an index
    /// sidecar — the default for new ledgers.
    Binary,
}

impl LedgerFormat {
    /// Detects the format of the ledger at `path`: an existing
    /// directory is binary, an existing file is JSONL, and a missing
    /// path goes by its extension (`.jsonl` → JSONL, anything else →
    /// binary).
    pub fn detect(path: &Path) -> Self {
        if path.is_dir() {
            LedgerFormat::Binary
        } else if path.is_file() || path.extension().is_some_and(|e| e == "jsonl") {
            LedgerFormat::Jsonl
        } else {
            LedgerFormat::Binary
        }
    }
}

impl std::fmt::Display for LedgerFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LedgerFormat::Jsonl => "jsonl",
            LedgerFormat::Binary => "binary",
        })
    }
}

/// Where a row's frame sits on disk (binary format only).
#[derive(Debug, Clone, Copy)]
struct FrameLoc {
    shard: u8,
    offset: u64,
    len: u32,
}

/// Where a lazily decoded outcome's bytes come from.
#[derive(Debug)]
enum LazySource {
    /// The frame's outcome payload, already in memory.
    Payload(Vec<u8>),
    /// A whole frame on disk (magic + length + body), read on demand.
    Disk { shard: PathBuf, offset: u64, len: u32 },
}

/// A memoised lazy outcome: decoded at most once, shared by clones.
#[derive(Debug)]
struct LazyOutcome {
    source: LazySource,
    slot: OnceLock<Option<Arc<SearchOutcome>>>,
    /// The owning ledger's decode counter — how scale tests prove a
    /// resume is O(missing) (zero decodes on a pure index load).
    decodes: Arc<AtomicU64>,
}

impl LazyOutcome {
    fn decode(&self) -> Option<SearchOutcome> {
        match &self.source {
            LazySource::Payload(bytes) => outcome_from_bytes(bytes).ok(),
            LazySource::Disk { shard, offset, len } => {
                let frame = read_exact_at(shard, *offset, *len).ok()?;
                let meta = decode_frame_body(frame.get(8..)?).ok()?;
                outcome_from_bytes(&meta.payload).ok()
            }
        }
    }
}

/// A row's outcome: resident (JSONL loads, freshly appended rows) or
/// lazy (binary loads — decoded on first access).
#[derive(Debug, Clone)]
enum Payload {
    Resident(Arc<SearchOutcome>),
    Lazy(Arc<LazyOutcome>),
}

/// Reads exactly `len` bytes at `offset` from `path`.
fn read_exact_at(path: &Path, offset: u64, len: u32) -> io::Result<Vec<u8>> {
    let mut f = fs::File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len as usize];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

/// One persisted ledger row: the cell's identity, the summary metadata
/// every observer needs (cost, latency, evals — readable without
/// decoding the outcome), and the complete [`SearchOutcome`].
#[derive(Debug, Clone)]
pub struct LedgerRow {
    /// The content hash this row is keyed by (16 hex digits).
    pub hash: String,
    /// Scenario id of the cell.
    pub cell: String,
    /// Canonical workload name.
    pub workload: String,
    /// Resolved platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// Engine version that produced the row. Empty for rows recorded
    /// before v3 (the JSONL surface does not store it); compaction
    /// drops rows from a different, non-empty engine.
    pub engine: String,
    /// Best cost of the outcome (mirrors `outcome.best.cost`).
    pub best_cost: f64,
    /// Best latency in cycles (mirrors `outcome.best.report`).
    pub latency_cycles: u64,
    /// Total evaluations (mirrors `outcome.evals`).
    pub evals: u64,
    /// Global append order — what keeps merged shard rows in the same
    /// order the campaign wrote them.
    seq: u64,
    /// Frame location on disk, when the row came from (or went to) a
    /// binary shard.
    loc: Option<FrameLoc>,
    payload: Payload,
}

impl LedgerRow {
    /// Builds a row for one experiment cell, produced by the current
    /// engine.
    pub fn new(cell: &ExperimentCell, hash: &str, outcome: SearchOutcome) -> Self {
        Self::from_parts(hash, &cell.id, &cell.workload, &cell.platform, cell.batch, outcome)
    }

    /// Builds a row from its raw parts — the constructor scale tests
    /// and benchmarks use to synthesise campaigns without running
    /// searches. The row is stamped with the current [`ENGINE_VERSION`].
    pub fn from_parts(
        hash: &str,
        cell: &str,
        workload: &str,
        platform: &str,
        batch: u32,
        outcome: SearchOutcome,
    ) -> Self {
        Self {
            hash: hash.to_string(),
            cell: cell.to_string(),
            workload: workload.to_string(),
            platform: platform.to_string(),
            batch,
            engine: ENGINE_VERSION.to_string(),
            best_cost: outcome.best.cost,
            latency_cycles: outcome.best.report.latency_cycles,
            evals: outcome.evals,
            seq: 0,
            loc: None,
            payload: Payload::Resident(Arc::new(outcome)),
        }
    }

    /// The row's full outcome. Resident rows return it directly; lazy
    /// rows (binary loads) decode their frame payload on first access
    /// and memoise. `None` means the payload on disk is corrupt —
    /// damage is an absent outcome, never a panic.
    pub fn outcome(&self) -> Option<&SearchOutcome> {
        match &self.payload {
            Payload::Resident(o) => Some(o),
            Payload::Lazy(l) => {
                let slot = l.slot.get_or_init(|| {
                    l.decodes.fetch_add(1, Ordering::Relaxed);
                    l.decode().map(Arc::new)
                });
                slot.as_deref()
            }
        }
    }

    /// The row's outcome payload in the binary codec, without
    /// re-decoding when the encoded bytes are already at hand.
    fn payload_bytes(&self) -> io::Result<Vec<u8>> {
        match &self.payload {
            Payload::Resident(o) => Ok(outcome_to_bytes(o)),
            Payload::Lazy(l) => match &l.source {
                LazySource::Payload(bytes) => Ok(bytes.clone()),
                LazySource::Disk { shard, offset, len } => {
                    let frame = read_exact_at(shard, *offset, *len)?;
                    let body = frame.get(8..).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "frame shorter than its header")
                    })?;
                    let meta = decode_frame_body(body)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    Ok(meta.payload)
                }
            },
        }
    }

    /// The row's payload object — every field except the checksum, in
    /// canonical order. The checksum covers this object's canonical
    /// rendering.
    fn jsonl_payload(&self, outcome: &SearchOutcome) -> Value {
        let mut o = Value::obj();
        o.push("v", JSONL_VERSION.into());
        o.push("hash", self.hash.as_str().into());
        o.push("cell", self.cell.as_str().into());
        o.push("workload", self.workload.as_str().into());
        o.push("platform", self.platform.as_str().into());
        o.push("batch", self.batch.into());
        o.push("outcome", outcome_to_json(outcome));
        o
    }

    /// Renders the row as its single-line JSONL entry (no trailing
    /// newline), `crc` first. Deterministic: equal rows render
    /// byte-identically.
    ///
    /// # Panics
    ///
    /// If the row's lazily loaded outcome payload is corrupt on disk —
    /// render paths only see rows whose outcomes exist.
    pub fn to_line(&self) -> String {
        let outcome = self.outcome().expect("rendering a row with a corrupt outcome payload");
        let payload = self.jsonl_payload(outcome);
        let crc = format!("{:016x}", fnv1a(json::to_string(&payload).bytes()));
        let mut o = Value::obj();
        o.push("crc", crc.into());
        let Value::Obj(fields) = payload else { unreachable!("payload is an object") };
        for (k, v) in fields {
            o.push(k, v);
        }
        json::to_string(&o)
    }

    /// Parses and **verifies** one JSONL ledger line: the embedded
    /// `crc` must match FNV-1a over the canonical rendering of the
    /// remaining fields, or the row is corrupt.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation (bad JSON,
    /// missing/mismatched checksum, unsupported version, missing field,
    /// malformed outcome).
    pub fn from_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let Value::Obj(fields) = v else { return Err("row is not a JSON object".into()) };
        let mut crc = None;
        let mut payload = Value::obj();
        for (k, val) in fields {
            if k == "crc" {
                crc = Some(val);
            } else {
                payload.push(k, val);
            }
        }
        let crc = crc.and_then(|c| c.as_str().map(str::to_string)).ok_or("missing `crc`")?;
        let computed = format!("{:016x}", fnv1a(json::to_string(&payload).bytes()));
        if crc != computed {
            return Err(format!("checksum mismatch: row says {crc}, content is {computed}"));
        }
        let version = payload.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        if version != JSONL_VERSION {
            return Err(format!("unsupported ledger version {version}"));
        }
        Self::from_json_fields(&payload, "")
    }

    /// Parses a **v1** JSONL row (the pre-checksum format) — the
    /// migration-on-read path. Only complete rows migrate; anything
    /// short of the full field set stays an error (and quarantines).
    fn from_line_v1(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let version = v.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        if version != 1 {
            return Err(format!("not a v1 row (version {version})"));
        }
        Self::from_json_fields(&v, "")
    }

    /// Shared field extraction for JSONL rows (v1 and v2 carry the
    /// same payload fields).
    fn from_json_fields(v: &Value, engine: &str) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing `{key}`"))?
                .to_string())
        };
        let batch = v.get("batch").and_then(Value::as_u64).ok_or("missing `batch`")?;
        let outcome = outcome_from_json(v.get("outcome").ok_or("missing `outcome`")?)
            .map_err(|e| e.to_string())?;
        Ok(Self {
            hash: text("hash")?,
            cell: text("cell")?,
            workload: text("workload")?,
            platform: text("platform")?,
            batch: u32::try_from(batch).map_err(|_| "batch exceeds u32".to_string())?,
            engine: engine.to_string(),
            best_cost: outcome.best.cost,
            latency_cycles: outcome.best.report.latency_cycles,
            evals: outcome.evals,
            seq: 0,
            loc: None,
            payload: Payload::Resident(Arc::new(outcome)),
        })
    }
}

/// A frame's decoded metadata — everything but the outcome, which
/// stays encoded in `payload` until someone asks for it.
struct FrameMeta {
    seq: u64,
    hash: String,
    cell: String,
    workload: String,
    platform: String,
    batch: u32,
    engine: String,
    best_cost: f64,
    latency_cycles: u64,
    evals: u64,
    payload: Vec<u8>,
}

/// Encodes one row as a complete frame: `FRM3` magic, `u32` LE body
/// length, then the body (`u64` LE checksum over the rest, followed by
/// the versioned fields and the outcome payload). Deterministic.
fn encode_frame(row: &LedgerRow, payload: &[u8]) -> Vec<u8> {
    let mut rest = Vec::with_capacity(payload.len() + 128);
    wire::put_varint(&mut rest, LEDGER_VERSION);
    wire::put_varint(&mut rest, row.seq);
    wire::put_str(&mut rest, &row.hash);
    wire::put_str(&mut rest, &row.cell);
    wire::put_str(&mut rest, &row.workload);
    wire::put_str(&mut rest, &row.platform);
    wire::put_varint(&mut rest, u64::from(row.batch));
    wire::put_str(&mut rest, &row.engine);
    wire::put_f64(&mut rest, row.best_cost);
    wire::put_varint(&mut rest, row.latency_cycles);
    wire::put_varint(&mut rest, row.evals);
    wire::put_bytes(&mut rest, payload);
    let crc = fnv1a(rest.iter().copied());
    let body_len = u32::try_from(rest.len() + 8).expect("frame body fits in u32");
    let mut frame = Vec::with_capacity(rest.len() + 16);
    frame.extend_from_slice(FRAME_MAGIC);
    frame.extend_from_slice(&body_len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&rest);
    frame
}

/// Decodes and **verifies** one frame body (the bytes after magic +
/// length): checksum first, then version, then fields.
fn decode_frame_body(body: &[u8]) -> Result<FrameMeta, String> {
    if body.len() < 8 {
        return Err("frame body shorter than its checksum".into());
    }
    let crc = u64::from_le_bytes(body[..8].try_into().expect("8-byte slice"));
    let rest = &body[8..];
    let computed = fnv1a(rest.iter().copied());
    if crc != computed {
        return Err(format!(
            "frame checksum mismatch: frame says {crc:016x}, content is {computed:016x}"
        ));
    }
    let mut r = Reader::new(rest);
    let parse = |r: &mut Reader<'_>| -> Result<FrameMeta, wire::WireError> {
        let version = r.varint()?;
        if version != LEDGER_VERSION {
            return Err(wire::WireError::new(format!("unsupported ledger version {version}")));
        }
        Ok(FrameMeta {
            seq: r.varint()?,
            hash: r.str()?.to_string(),
            cell: r.str()?.to_string(),
            workload: r.str()?.to_string(),
            platform: r.str()?.to_string(),
            batch: u32::try_from(r.varint()?)
                .map_err(|_| wire::WireError::new("batch exceeds u32"))?,
            engine: r.str()?.to_string(),
            best_cost: r.f64()?,
            latency_cycles: r.varint()?,
            evals: r.varint()?,
            payload: r.bytes()?.to_vec(),
        })
    };
    let meta = parse(&mut r).map_err(|e| e.msg)?;
    r.finish().map_err(|e| e.msg)?;
    Ok(meta)
}

/// What a load found and repaired — the ledger's self-report. A
/// healthy load is `kept == rows, everything else zero/false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerHealth {
    /// Valid rows kept (including shadowed duplicates).
    pub kept: usize,
    /// Corrupt rows/regions moved to the quarantine sidecar (or merely
    /// tolerated, on a read-only load).
    pub quarantined: usize,
    /// Whether a partially written trailing row was found (and, on a
    /// repairing load, truncated away).
    pub truncated: bool,
    /// Valid rows whose hash repeats an earlier row's (last-write-wins;
    /// this counts the shadowed earlier copies).
    pub duplicates: usize,
}

impl LedgerHealth {
    /// Whether the load found any damage at all.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && !self.truncated
    }
}

/// The quarantine sidecar path of a ledger: `runs/x.jsonl` →
/// `runs/x.quarantine.jsonl` for a JSONL file, `<dir>/quarantine.jsonl`
/// for a binary ledger directory.
pub fn quarantine_path(ledger: &Path) -> PathBuf {
    if LedgerFormat::detect(ledger) == LedgerFormat::Binary {
        return ledger.join(QUARANTINE_FILE);
    }
    let stem = ledger.file_stem().and_then(|s| s.to_str()).unwrap_or("ledger");
    ledger.with_file_name(format!("{stem}.quarantine.jsonl"))
}

/// Whether `path` names a quarantine sidecar — which must never be
/// loaded *as* a ledger (its own quarantine path maps back onto
/// itself, so a load would re-quarantine its contents in place).
fn is_quarantine_sidecar(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n == QUARANTINE_FILE || n.ends_with(".quarantine.jsonl"))
}

/// One index sidecar entry: a row's metadata plus its frame location.
struct IndexEntry {
    seq: u64,
    shard: u8,
    offset: u64,
    len: u32,
    hash: String,
    cell: String,
    workload: String,
    platform: String,
    batch: u32,
    engine: String,
    best_cost: f64,
    latency_cycles: u64,
    evals: u64,
}

/// A parsed index sidecar: the next append sequence number, how many
/// bytes of each shard the entries cover, and the entries grouped by
/// shard.
struct IndexData {
    next_seq: u64,
    covered: [u64; SHARDS],
    by_shard: Vec<Vec<IndexEntry>>,
}

/// Reads and verifies the index sidecar. The index is a disposable
/// cache: any damage (bad magic, checksum mismatch, truncation) reads
/// as "no index" and the shards get scanned instead.
fn read_index(path: &Path) -> Option<IndexData> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < 16 || &bytes[..8] != INDEX_MAGIC {
        return None;
    }
    let crc = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let rest = &bytes[16..];
    if crc != fnv1a(rest.iter().copied()) {
        return None;
    }
    let parse = || -> Result<IndexData, wire::WireError> {
        let mut r = Reader::new(rest);
        let next_seq = r.varint()?;
        let mut covered = [0u64; SHARDS];
        for c in &mut covered {
            *c = r.varint()?;
        }
        let n = usize::try_from(r.varint()?)
            .map_err(|_| wire::WireError::new("entry count overflow"))?;
        let mut by_shard: Vec<Vec<IndexEntry>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for _ in 0..n {
            let e = IndexEntry {
                seq: r.varint()?,
                shard: r.u8()?,
                offset: r.varint()?,
                len: u32::try_from(r.varint()?)
                    .map_err(|_| wire::WireError::new("frame length exceeds u32"))?,
                hash: r.str()?.to_string(),
                cell: r.str()?.to_string(),
                workload: r.str()?.to_string(),
                platform: r.str()?.to_string(),
                batch: u32::try_from(r.varint()?)
                    .map_err(|_| wire::WireError::new("batch exceeds u32"))?,
                engine: r.str()?.to_string(),
                best_cost: r.f64()?,
                latency_cycles: r.varint()?,
                evals: r.varint()?,
            };
            if usize::from(e.shard) >= SHARDS {
                return Err(wire::WireError::new("shard id out of range"));
            }
            by_shard[usize::from(e.shard)].push(e);
        }
        r.finish()?;
        Ok(IndexData { next_seq, covered, by_shard })
    };
    parse().ok()
}

/// Builds a lazily loaded row from one index entry — zero frame I/O.
fn row_from_entry(e: IndexEntry, dir: &Path, decodes: &Arc<AtomicU64>) -> LedgerRow {
    LedgerRow {
        hash: e.hash,
        cell: e.cell,
        workload: e.workload,
        platform: e.platform,
        batch: e.batch,
        engine: e.engine,
        best_cost: e.best_cost,
        latency_cycles: e.latency_cycles,
        evals: e.evals,
        seq: e.seq,
        loc: Some(FrameLoc { shard: e.shard, offset: e.offset, len: e.len }),
        payload: Payload::Lazy(Arc::new(LazyOutcome {
            source: LazySource::Disk {
                shard: shard_path(dir, usize::from(e.shard)),
                offset: e.offset,
                len: e.len,
            },
            slot: OnceLock::new(),
            decodes: Arc::clone(decodes),
        })),
    }
}

/// What one shard scan found.
struct ShardScan {
    /// Valid rows, in frame order, with in-memory (already read)
    /// payloads.
    rows: Vec<LedgerRow>,
    /// Byte ranges of the valid frames (for a quarantine rewrite).
    kept_ranges: Vec<(usize, usize)>,
    /// Damaged byte regions `(offset, len)` — corrupt frames, garbage
    /// between frames, a broken shard header.
    damage: Vec<(u64, u64)>,
    /// Offset where a clean torn tail begins (an incomplete final
    /// frame with no later frame magic — a kill mid-append).
    torn_tail: Option<u64>,
}

/// Finds the next `FRAME_MAGIC` occurrence at or after `from`.
fn find_magic(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < FRAME_MAGIC.len() {
        return None;
    }
    (from..=buf.len() - FRAME_MAGIC.len()).find(|&i| &buf[i..i + FRAME_MAGIC.len()] == FRAME_MAGIC)
}

/// Scans one shard buffer from `start`, resynchronising on frame magic
/// after damage — corruption costs the damaged region, never a valid
/// later frame.
fn scan_shard(buf: &[u8], start: usize, shard: u8, decodes: &Arc<AtomicU64>) -> ShardScan {
    let mut scan = ShardScan {
        rows: Vec::new(),
        kept_ranges: Vec::new(),
        damage: Vec::new(),
        torn_tail: None,
    };
    let mut pos = start;
    while pos < buf.len() {
        let frame_here = buf[pos..].starts_with(FRAME_MAGIC);
        if frame_here {
            let header_end = pos + FRAME_MAGIC.len() + 4;
            if header_end <= buf.len() {
                let body_len =
                    u32::from_le_bytes(buf[pos + 4..header_end].try_into().expect("4-byte slice"))
                        as usize;
                let frame_end = header_end + body_len;
                if frame_end <= buf.len() {
                    match decode_frame_body(&buf[header_end..frame_end]) {
                        Ok(meta) => {
                            scan.rows.push(LedgerRow {
                                hash: meta.hash,
                                cell: meta.cell,
                                workload: meta.workload,
                                platform: meta.platform,
                                batch: meta.batch,
                                engine: meta.engine,
                                best_cost: meta.best_cost,
                                latency_cycles: meta.latency_cycles,
                                evals: meta.evals,
                                seq: meta.seq,
                                loc: Some(FrameLoc {
                                    shard,
                                    offset: pos as u64,
                                    len: (frame_end - pos) as u32,
                                }),
                                payload: Payload::Lazy(Arc::new(LazyOutcome {
                                    source: LazySource::Payload(meta.payload),
                                    slot: OnceLock::new(),
                                    decodes: Arc::clone(decodes),
                                })),
                            });
                            scan.kept_ranges.push((pos, frame_end));
                            pos = frame_end;
                            continue;
                        }
                        Err(_) => {
                            // Fall through to damage handling below.
                        }
                    }
                } else {
                    // The frame claims to extend past EOF. If no later
                    // magic exists, this is a torn trailing append;
                    // otherwise the length itself is damaged.
                    if find_magic(buf, pos + 1).is_none() {
                        scan.torn_tail = Some(pos as u64);
                        return scan;
                    }
                }
            } else {
                // Not even a complete header at EOF.
                if find_magic(buf, pos + 1).is_none() {
                    scan.torn_tail = Some(pos as u64);
                    return scan;
                }
            }
        }
        // Damage at `pos`: skip to the next frame magic (or EOF).
        let next = find_magic(buf, pos + 1).unwrap_or(buf.len());
        scan.damage.push((pos as u64, (next - pos) as u64));
        pos = next;
    }
    scan
}

/// What [`Ledger::compact`] dropped and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Rows surviving compaction.
    pub kept: usize,
    /// Shadowed duplicate-hash rows dropped.
    pub dropped_duplicates: usize,
    /// Rows from a different (non-empty) engine version dropped.
    pub dropped_stale_engine: usize,
}

/// What [`Ledger::migrate`] moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateStats {
    /// Rows migrated.
    pub rows: usize,
    /// Source format.
    pub from: LedgerFormat,
    /// Destination format.
    pub to: LedgerFormat,
}

/// The on-disk run ledger: an append-only store mapping cell content
/// hashes to persisted [`SearchOutcome`]s, in either format of
/// [`LedgerFormat`].
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    format: LedgerFormat,
    rows: Vec<LedgerRow>,
    index: HashMap<String, usize>,
    health: LedgerHealth,
    /// Per-shard health (binary format only; empty for JSONL).
    shard_health: Vec<LedgerHealth>,
    faults: Option<Arc<FaultPlan>>,
    /// Outcome decodes performed by this ledger's lazy rows — the
    /// O(cells-missing) resume proof counts this, not wall clock.
    decodes: Arc<AtomicU64>,
    next_seq: u64,
    readonly: bool,
}

impl Ledger {
    /// Loads (or creates the notion of) the ledger at `path`, repairing
    /// damage. A missing path is an empty ledger of the format
    /// [`LedgerFormat::detect`] picks.
    ///
    /// Recovery is automatic and crash-safe:
    ///
    /// * a partially written trailing row (a kill mid-append) is
    ///   dropped and truncated away in place (`set_len` + fsync — no
    ///   rewrite);
    /// * corrupt rows anywhere else (checksum mismatch, bad framing,
    ///   foreign version) move to the quarantine sidecar and the
    ///   damaged file is compacted via temp-file + rename, so a crash
    ///   mid-repair leaves either the old or the new file — never a
    ///   mix;
    /// * duplicate-hash rows all stay; lookups resolve to the newest
    ///   (last-write-wins).
    ///
    /// [`health`](Self::health) reports what was kept, quarantined,
    /// truncated and shadowed. Loading never loses a valid row.
    ///
    /// Writers only — observers must use
    /// [`load_readonly`](Self::load_readonly).
    ///
    /// # Errors
    ///
    /// Real I/O errors, or refusing to load a quarantine sidecar as a
    /// ledger — corruption is repaired, not fatal.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::load_impl(path, None, false)
    }

    /// Loads the ledger **without writing anything**: torn tails and
    /// corrupt rows are tolerated (skipped and reported in
    /// [`health`](Self::health)) but never truncated, quarantined or
    /// compacted. This is the only safe load under a live writer — a
    /// repairing load would treat the writer's in-progress tail as
    /// damage and truncate it out from under the writer. Every
    /// observer path (`watch`, summaries, replay probes) uses this.
    ///
    /// [`append`](Self::append), [`compact`](Self::compact) and
    /// [`sync_index`](Self::sync_index) on a read-only ledger fail
    /// with [`io::ErrorKind::PermissionDenied`].
    ///
    /// # Errors
    ///
    /// Real I/O errors, or a quarantine-sidecar path.
    pub fn load_readonly(path: &Path) -> io::Result<Self> {
        Self::load_impl(path, None, true)
    }

    /// [`load`](Self::load) with a [`FaultPlan`] attached from the
    /// start, so the load's own repair actions tick the plan's
    /// counters (site [`fault::site::LEDGER_COMPACT`] on every
    /// compaction rewrite — a torn-tail-only repair ticks nothing,
    /// which is how tests pin the in-place truncation path).
    ///
    /// # Errors
    ///
    /// As [`load`](Self::load).
    pub fn load_with_faults(path: &Path, plan: Arc<FaultPlan>) -> io::Result<Self> {
        Self::load_impl(path, Some(plan), false)
    }

    fn load_impl(path: &Path, faults: Option<Arc<FaultPlan>>, readonly: bool) -> io::Result<Self> {
        if is_quarantine_sidecar(path) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "refusing to load quarantine sidecar {} as a ledger \
                     (it would re-quarantine its own contents)",
                    path.display()
                ),
            ));
        }
        let format = LedgerFormat::detect(path);
        let mut ledger = Self {
            path: path.to_path_buf(),
            format,
            rows: Vec::new(),
            index: HashMap::new(),
            health: LedgerHealth::default(),
            shard_health: Vec::new(),
            faults,
            decodes: Arc::new(AtomicU64::new(0)),
            next_seq: 0,
            readonly,
        };
        match format {
            LedgerFormat::Jsonl => ledger.load_jsonl()?,
            LedgerFormat::Binary => ledger.load_binary()?,
        }
        Ok(ledger)
    }

    /// Inserts a row into the in-memory lookup state (last-write-wins).
    fn index_row(&mut self, row: LedgerRow) {
        if self.index.insert(row.hash.clone(), self.rows.len()).is_some() {
            self.health.duplicates += 1;
        }
        self.rows.push(row);
    }

    fn load_jsonl(&mut self) -> io::Result<()> {
        let bytes = match fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        // Byte-wise line split: bit-rot can break UTF-8 itself, and a
        // non-UTF-8 line must quarantine like any other corrupt row
        // without poisoning its neighbours' byte offsets.
        // Kept line ranges; `true` marks a v1 row migrated on read
        // (rendered as v2 if a repair rewrite happens).
        let mut kept_ranges: Vec<(usize, usize, bool)> = Vec::new();
        let mut quarantined_ranges: Vec<(usize, usize)> = Vec::new();
        let mut torn_start: Option<usize> = None;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(off) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                // Trailing bytes without a newline: a torn trailing
                // write (the file is always appended line-at-a-time).
                self.health.truncated = true;
                torn_start = Some(pos);
                break;
            };
            let range = (pos, pos + off);
            pos += off + 1;
            if range.0 == range.1 {
                continue;
            }
            let line = &bytes[range.0..range.1];
            // v2 first; a failed parse retries as v1 — the
            // migration-on-read path for pre-checksum ledgers.
            let parsed = std::str::from_utf8(line).map_err(|e| e.to_string()).and_then(|text| {
                LedgerRow::from_line(text).map(|row| (row, false)).or_else(|e2| {
                    LedgerRow::from_line_v1(text).map(|row| (row, true)).map_err(|_| e2)
                })
            });
            match parsed {
                Ok((mut row, migrated)) => {
                    row.seq = self.next_seq;
                    self.next_seq += 1;
                    self.index_row(row);
                    kept_ranges.push((range.0, range.1, migrated));
                }
                Err(_) => quarantined_ranges.push(range),
            }
        }
        self.health.kept = self.rows.len();
        self.health.quarantined = quarantined_ranges.len();

        if self.readonly {
            return Ok(());
        }
        if !quarantined_ranges.is_empty() {
            // Quarantine first, then compact: a crash between the two
            // leaves the corrupt rows present in both places, and the
            // next load simply quarantines them again.
            let qpath = quarantine_path(&self.path);
            let mut q = fs::OpenOptions::new().create(true).append(true).open(&qpath)?;
            for &(a, b) in &quarantined_ranges {
                q.write_all(&bytes[a..b])?;
                q.write_all(b"\n")?;
            }
            q.flush()?;
            let tmp = self.path.with_extension("jsonl.tmp");
            {
                let mut f = fs::File::create(&tmp)?;
                for (k, &(a, b, migrated)) in kept_ranges.iter().enumerate() {
                    if migrated {
                        // Upgrade migrated v1 rows to v2 as we rewrite;
                        // v2 rows keep their exact on-disk bytes.
                        f.write_all(self.rows[k].to_line().as_bytes())?;
                    } else {
                        f.write_all(&bytes[a..b])?;
                    }
                    f.write_all(b"\n")?;
                }
                f.flush()?;
                f.sync_all()?;
            }
            fs::rename(&tmp, &self.path)?;
            if let Some(plan) = &self.faults {
                plan.observe(fault::site::LEDGER_COMPACT);
            }
        } else if let Some(ts) = torn_start {
            // Only a torn tail: the prefix is intact, so truncate in
            // place — no temp file, no rewrite, O(1) in ledger size.
            let f = fs::OpenOptions::new().write(true).open(&self.path)?;
            f.set_len(ts as u64)?;
            f.sync_all()?;
        }
        Ok(())
    }

    fn load_binary(&mut self) -> io::Result<()> {
        self.shard_health = vec![LedgerHealth::default(); SHARDS];
        if !self.path.exists() {
            return Ok(());
        }
        let dir = self.path.clone();
        let mut idx = read_index(&dir.join(INDEX_FILE));
        let next_seq_floor = idx.as_ref().map_or(0, |i| i.next_seq);
        let mut index_stale = idx.is_none();
        let mut all_rows: Vec<LedgerRow> = Vec::new();

        for s in 0..SHARDS {
            let spath = shard_path(&dir, s);
            let size = fs::metadata(&spath).map(|m| m.len()).unwrap_or(0);
            let (covered, entries) = match idx.as_mut() {
                Some(i) => (i.covered[s], std::mem::take(&mut i.by_shard[s])),
                None => (0, Vec::new()),
            };
            if size == 0 {
                if covered > 0 || !entries.is_empty() {
                    index_stale = true;
                }
                continue;
            }
            if idx.is_some() && covered == size {
                // The index covers the whole shard: trust it and build
                // every row without reading a single frame.
                self.shard_health[s].kept = entries.len();
                all_rows
                    .extend(entries.into_iter().map(|e| row_from_entry(e, &dir, &self.decodes)));
                continue;
            }
            index_stale = true;
            let buf = fs::read(&spath)?;
            let full_start = if buf.starts_with(SHARD_MAGIC) { SHARD_MAGIC.len() } else { 0 };
            let mut trusted: Vec<LedgerRow> = Vec::new();
            let mut scan;
            if idx.is_some() && covered >= SHARD_MAGIC.len() as u64 && covered < size {
                // Stale-but-consistent index: trust the covered prefix,
                // scan only the appended tail.
                trusted =
                    entries.into_iter().map(|e| row_from_entry(e, &dir, &self.decodes)).collect();
                scan = scan_shard(&buf, covered as usize, s as u8, &self.decodes);
                if !scan.damage.is_empty() {
                    // Damage in the tail: distrust the index for this
                    // shard and rescan everything, so the repair
                    // rewrite sees every valid frame.
                    trusted.clear();
                    scan = scan_shard(&buf, full_start, s as u8, &self.decodes);
                }
            } else {
                scan = scan_shard(&buf, full_start, s as u8, &self.decodes);
            }

            let sh = &mut self.shard_health[s];
            sh.kept = trusted.len() + scan.rows.len();
            sh.quarantined = scan.damage.len();
            sh.truncated = scan.torn_tail.is_some();

            if !self.readonly {
                if !scan.damage.is_empty() {
                    // Quarantine the damaged regions, then rewrite the
                    // shard from its valid frames (temp + rename).
                    let qpath = dir.join(QUARANTINE_FILE);
                    let mut q = fs::OpenOptions::new().create(true).append(true).open(&qpath)?;
                    for &(off, len) in &scan.damage {
                        let end = (off + len).min(buf.len() as u64) as usize;
                        let sample = &buf[off as usize..end.min(off as usize + 64)];
                        let hex: String = sample.iter().map(|b| format!("{b:02x}")).collect();
                        let mut o = Value::obj();
                        o.push("shard", (s as u64).into());
                        o.push("offset", off.into());
                        o.push("len", len.into());
                        o.push("hex", hex.as_str().into());
                        q.write_all(json::to_string(&o).as_bytes())?;
                        q.write_all(b"\n")?;
                    }
                    q.flush()?;
                    let tmp = spath.with_extension("bin.tmp");
                    {
                        let mut f = fs::File::create(&tmp)?;
                        f.write_all(SHARD_MAGIC)?;
                        let mut off = SHARD_MAGIC.len() as u64;
                        for (&(a, b), row) in scan.kept_ranges.iter().zip(scan.rows.iter_mut()) {
                            f.write_all(&buf[a..b])?;
                            row.loc =
                                Some(FrameLoc { shard: s as u8, offset: off, len: (b - a) as u32 });
                            off += (b - a) as u64;
                        }
                        f.flush()?;
                        f.sync_all()?;
                    }
                    fs::rename(&tmp, &spath)?;
                    if let Some(plan) = &self.faults {
                        plan.observe(fault::site::LEDGER_COMPACT);
                    }
                } else if let Some(ts) = scan.torn_tail {
                    // Only a torn tail: truncate the shard in place.
                    let f = fs::OpenOptions::new().write(true).open(&spath)?;
                    f.set_len(ts)?;
                    f.sync_all()?;
                }
            }
            all_rows.extend(trusted);
            all_rows.extend(scan.rows);
        }

        // Merge shards back into global append order: `seq` is the
        // campaign's write order, so observers see the same row order
        // the JSONL surface would give them (summary byte-stability).
        all_rows.sort_by_key(|r| r.seq);
        for row in all_rows {
            self.index_row(row);
        }
        self.health.kept = self.rows.len();
        self.health.quarantined = self.shard_health.iter().map(|h| h.quarantined).sum();
        self.health.truncated = self.shard_health.iter().any(|h| h.truncated);
        self.next_seq = self.rows.iter().map(|r| r.seq + 1).max().unwrap_or(0).max(next_seq_floor);
        if index_stale && !self.readonly {
            self.write_index()?;
        }
        Ok(())
    }
}

impl Ledger {
    fn readonly_err() -> io::Error {
        io::Error::new(io::ErrorKind::PermissionDenied, "ledger was loaded read-only")
    }

    /// Attaches a deterministic fault plan: subsequent appends consult
    /// it (site [`fault::site::LEDGER_APPEND`]) and may tear, corrupt
    /// or fail. Chaos-test plumbing — never set in production paths.
    pub fn inject_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// The ledger's path (a file for JSONL, a directory for binary).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Which on-disk format this ledger uses.
    pub fn format(&self) -> LedgerFormat {
        self.format
    }

    /// Whether this ledger was loaded read-only (observer mode).
    pub fn readonly(&self) -> bool {
        self.readonly
    }

    /// What the load found (and, unless read-only, repaired).
    pub fn health(&self) -> LedgerHealth {
        self.health
    }

    /// Per-shard health (binary format; empty for JSONL ledgers).
    pub fn shard_healths(&self) -> &[LedgerHealth] {
        &self.shard_health
    }

    /// How many outcome payloads this ledger has decoded so far — the
    /// observable cost of a load + lookups. An index-backed resume
    /// that only checks membership decodes nothing.
    pub fn outcome_decodes(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// All rows, in append (campaign) order — shadowed duplicates
    /// included.
    pub fn rows(&self) -> &[LedgerRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the ledger holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by its cell content hash. With duplicate-hash
    /// rows, resolves to the newest (last-write-wins — pinned by test).
    /// Pure index access: never touches the disk or decodes a payload.
    pub fn lookup(&self, hash: &str) -> Option<&LedgerRow> {
        self.index.get(hash).map(|&i| &self.rows[i])
    }

    /// Creates the binary ledger directory and its human-readable
    /// marker on first use.
    fn ensure_binary_dir(&self) -> io::Result<()> {
        if !self.path.exists() {
            fs::create_dir_all(&self.path)?;
        }
        let marker = self.path.join(MARKER_FILE);
        if !marker.exists() {
            fs::write(&marker, "soma ledger v3: binary sharded format. See specs/LEDGER.md.\n")?;
        }
        Ok(())
    }

    /// Appends one row, creating parent directories and files on first
    /// use, and flushes before returning — once `append` returns, the
    /// row survives a kill. A repeated hash is allowed (the ledger is
    /// append-only history) and shadows the earlier row in lookups.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::PermissionDenied`] on a read-only ledger; I/O
    /// errors creating directories or writing — including injected
    /// ones when a [`FaultPlan`] is attached. After an error the
    /// in-memory index is unchanged; the on-disk tail may be torn,
    /// which the next repairing load fixes.
    pub fn append(&mut self, row: LedgerRow) -> io::Result<()> {
        if self.readonly {
            return Err(Self::readonly_err());
        }
        match self.format {
            LedgerFormat::Jsonl => self.append_jsonl(row),
            LedgerFormat::Binary => self.append_binary(row),
        }
    }

    fn append_jsonl(&mut self, mut row: LedgerRow) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        row.seq = self.next_seq;
        let line = row.to_line();
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&self.path)?;

        match self.faults.as_ref().and_then(|p| p.next(fault::site::LEDGER_APPEND)) {
            Some(Fault::TornWrite { keep_per_mille }) => {
                // Persist only a prefix, then "crash" the append.
                let keep = line.len() * usize::from(keep_per_mille) / 1000;
                f.write_all(&line.as_bytes()[..keep])?;
                f.flush()?;
                return Err(io::Error::other("injected fault: torn write"));
            }
            Some(Fault::BitFlip { salt }) => {
                // The write "succeeds" but the medium lies: one bit of
                // the persisted line is flipped. The row is indexed in
                // memory (the writer believes it) and only the next
                // load's checksum pass discovers the damage.
                let mut bytes = line.clone().into_bytes();
                fault::flip_bit(&mut bytes, salt);
                f.write_all(&bytes)?;
                f.write_all(b"\n")?;
                f.flush()?;
            }
            Some(Fault::FsyncError) => {
                return Err(io::Error::other("injected fault: fsync failed"));
            }
            _ => {
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
                f.flush()?;
            }
        }
        self.next_seq += 1;
        self.index_row(row);
        self.health.kept = self.rows.len();
        Ok(())
    }

    fn append_binary(&mut self, mut row: LedgerRow) -> io::Result<()> {
        self.ensure_binary_dir()?;
        let payload = row.payload_bytes()?;
        row.seq = self.next_seq;
        let frame = encode_frame(&row, &payload);
        let shard = shard_of(&row.hash);
        let spath = shard_path(&self.path, usize::from(shard));
        let fresh = !spath.exists();
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&spath)?;
        if fresh {
            f.write_all(SHARD_MAGIC)?;
        }
        // The frame's offset is wherever the file currently ends —
        // robust to dead bytes left by an earlier torn append.
        let offset = f.metadata()?.len();

        match self.faults.as_ref().and_then(|p| p.next(fault::site::LEDGER_APPEND)) {
            Some(Fault::TornWrite { keep_per_mille }) => {
                let keep = frame.len() * usize::from(keep_per_mille) / 1000;
                f.write_all(&frame[..keep])?;
                f.flush()?;
                return Err(io::Error::other("injected fault: torn write"));
            }
            Some(Fault::BitFlip { salt }) => {
                let mut bytes = frame.clone();
                fault::flip_bit(&mut bytes, salt);
                f.write_all(&bytes)?;
                f.flush()?;
            }
            Some(Fault::FsyncError) => {
                return Err(io::Error::other("injected fault: fsync failed"));
            }
            _ => {
                f.write_all(&frame)?;
                f.flush()?;
            }
        }
        self.next_seq += 1;
        row.loc = Some(FrameLoc { shard, offset, len: frame.len() as u32 });
        self.index_row(row);
        self.health.kept = self.rows.len();
        Ok(())
    }

    /// Bulk append: every row in order, with each shard file opened
    /// once — the fast path for migration and synthetic campaigns.
    /// Not fault-instrumented (chaos tests exercise [`append`](Self::append)).
    ///
    /// # Errors
    ///
    /// As [`append`](Self::append).
    pub fn append_all(&mut self, batch: Vec<LedgerRow>) -> io::Result<()> {
        if self.readonly {
            return Err(Self::readonly_err());
        }
        match self.format {
            LedgerFormat::Jsonl => {
                if let Some(dir) = self.path.parent() {
                    if !dir.as_os_str().is_empty() {
                        fs::create_dir_all(dir)?;
                    }
                }
                let mut f = fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
                for mut row in batch {
                    row.seq = self.next_seq;
                    self.next_seq += 1;
                    f.write_all(row.to_line().as_bytes())?;
                    f.write_all(b"\n")?;
                    self.index_row(row);
                }
                f.flush()?;
                f.sync_all()?;
            }
            LedgerFormat::Binary => {
                self.ensure_binary_dir()?;
                let mut files: HashMap<u8, (fs::File, u64)> = HashMap::new();
                for mut row in batch {
                    let payload = row.payload_bytes()?;
                    row.seq = self.next_seq;
                    self.next_seq += 1;
                    let frame = encode_frame(&row, &payload);
                    let shard = shard_of(&row.hash);
                    if let std::collections::hash_map::Entry::Vacant(e) = files.entry(shard) {
                        let spath = shard_path(&self.path, usize::from(shard));
                        let fresh = !spath.exists();
                        let mut f =
                            fs::OpenOptions::new().create(true).append(true).open(&spath)?;
                        if fresh {
                            f.write_all(SHARD_MAGIC)?;
                        }
                        let len = f.metadata()?.len();
                        e.insert((f, len));
                    }
                    let (f, off) = files.get_mut(&shard).expect("just inserted");
                    f.write_all(&frame)?;
                    row.loc = Some(FrameLoc { shard, offset: *off, len: frame.len() as u32 });
                    *off += frame.len() as u64;
                    self.index_row(row);
                }
                for (f, _) in files.values_mut() {
                    f.flush()?;
                    f.sync_all()?;
                }
            }
        }
        self.health.kept = self.rows.len();
        Ok(())
    }

    /// Rewrites the index sidecar to cover the shards as they stand
    /// (binary format; a no-op for JSONL). Writers call this at the
    /// end of a campaign so the next load is O(1) in rows-done. The
    /// index is a disposable cache — losing it costs a scan, never a
    /// row.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::PermissionDenied`] on a read-only ledger; real
    /// I/O errors.
    pub fn sync_index(&self) -> io::Result<()> {
        if self.readonly {
            return Err(Self::readonly_err());
        }
        if self.format == LedgerFormat::Jsonl {
            return Ok(());
        }
        self.write_index()
    }

    fn write_index(&self) -> io::Result<()> {
        if !self.path.exists() {
            return Ok(());
        }
        let mut rest = Vec::new();
        wire::put_varint(&mut rest, self.next_seq);
        for s in 0..SHARDS {
            let len = fs::metadata(shard_path(&self.path, s)).map(|m| m.len()).unwrap_or(0);
            wire::put_varint(&mut rest, len);
        }
        let indexed: Vec<&LedgerRow> = self.rows.iter().filter(|r| r.loc.is_some()).collect();
        wire::put_varint(&mut rest, indexed.len() as u64);
        for row in indexed {
            let loc = row.loc.expect("filtered on loc");
            wire::put_varint(&mut rest, row.seq);
            rest.push(loc.shard);
            wire::put_varint(&mut rest, loc.offset);
            wire::put_varint(&mut rest, u64::from(loc.len));
            wire::put_str(&mut rest, &row.hash);
            wire::put_str(&mut rest, &row.cell);
            wire::put_str(&mut rest, &row.workload);
            wire::put_str(&mut rest, &row.platform);
            wire::put_varint(&mut rest, u64::from(row.batch));
            wire::put_str(&mut rest, &row.engine);
            wire::put_f64(&mut rest, row.best_cost);
            wire::put_varint(&mut rest, row.latency_cycles);
            wire::put_varint(&mut rest, row.evals);
        }
        let crc = fnv1a(rest.iter().copied());
        let tmp = self.path.join("index.bin.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(INDEX_MAGIC)?;
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&rest)?;
            f.flush()?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path.join(INDEX_FILE))
    }

    /// Compacts the ledger: drops shadowed duplicate-hash rows and
    /// rows produced by a different (non-empty, superseded) engine
    /// version, rewriting every file crash-safely and refreshing the
    /// index. Surviving rows keep their append order.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::PermissionDenied`] on a read-only ledger; real
    /// I/O errors.
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        if self.readonly {
            return Err(Self::readonly_err());
        }
        let mut last: HashMap<&str, usize> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            last.insert(row.hash.as_str(), i);
        }
        let mut stats = CompactStats { kept: 0, dropped_duplicates: 0, dropped_stale_engine: 0 };
        let mut keep: Vec<LedgerRow> = Vec::new();
        for (i, row) in self.rows.iter().enumerate() {
            if last[row.hash.as_str()] != i {
                stats.dropped_duplicates += 1;
                continue;
            }
            if !row.engine.is_empty() && row.engine != ENGINE_VERSION {
                stats.dropped_stale_engine += 1;
                continue;
            }
            keep.push(row.clone());
        }
        stats.kept = keep.len();

        match self.format {
            LedgerFormat::Jsonl => {
                let tmp = self.path.with_extension("jsonl.tmp");
                {
                    let mut f = fs::File::create(&tmp)?;
                    for row in &keep {
                        f.write_all(row.to_line().as_bytes())?;
                        f.write_all(b"\n")?;
                    }
                    f.flush()?;
                    f.sync_all()?;
                }
                fs::rename(&tmp, &self.path)?;
                if let Some(plan) = &self.faults {
                    plan.observe(fault::site::LEDGER_COMPACT);
                }
            }
            LedgerFormat::Binary => {
                self.ensure_binary_dir()?;
                // Materialise payloads before any rewrite: disk-lazy
                // rows still point at the files we are replacing.
                let payloads: Vec<Vec<u8>> =
                    keep.iter().map(|r| r.payload_bytes()).collect::<io::Result<_>>()?;
                for s in 0..SHARDS {
                    let spath = shard_path(&self.path, s);
                    let mine: Vec<usize> = (0..keep.len())
                        .filter(|&i| usize::from(shard_of(&keep[i].hash)) == s)
                        .collect();
                    if mine.is_empty() && !spath.exists() {
                        continue;
                    }
                    let tmp = spath.with_extension("bin.tmp");
                    {
                        let mut f = fs::File::create(&tmp)?;
                        f.write_all(SHARD_MAGIC)?;
                        let mut off = SHARD_MAGIC.len() as u64;
                        for &i in &mine {
                            let frame = encode_frame(&keep[i], &payloads[i]);
                            f.write_all(&frame)?;
                            keep[i].loc = Some(FrameLoc {
                                shard: s as u8,
                                offset: off,
                                len: frame.len() as u32,
                            });
                            off += frame.len() as u64;
                        }
                        f.flush()?;
                        f.sync_all()?;
                    }
                    fs::rename(&tmp, &spath)?;
                    if let Some(plan) = &self.faults {
                        plan.observe(fault::site::LEDGER_COMPACT);
                    }
                }
            }
        }

        self.rows = keep;
        self.index = self.rows.iter().enumerate().map(|(i, r)| (r.hash.clone(), i)).collect();
        self.health.kept = self.rows.len();
        self.health.duplicates = 0;
        if self.format == LedgerFormat::Binary {
            self.write_index()?;
        }
        Ok(stats)
    }

    /// Migrates the ledger at `src` into a fresh ledger at `dst`,
    /// format-converting as the paths dictate (the canonical use:
    /// v2 JSONL file → v3 binary directory). The source is opened
    /// read-only and never touched; row order and duplicate history
    /// are preserved, so summaries over the two ledgers are
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// If `dst` already exists, plus real I/O errors.
    pub fn migrate(src: &Path, dst: &Path) -> io::Result<MigrateStats> {
        let source = Self::load_readonly(src)?;
        if dst.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("migration target {} already exists", dst.display()),
            ));
        }
        let mut target = Self::load(dst)?;
        target.append_all(source.rows.clone())?;
        target.sync_index()?;
        Ok(MigrateStats { rows: target.len(), from: source.format, to: target.format })
    }
}

/// The ledger key of one experiment cell under a spec's configuration.
pub fn cell_key(cell: &ExperimentCell, config: &SearchConfig, seeds: &[u64]) -> String {
    cell_hash_hex(&cell.id, &cell.hw, config, seeds, ENGINE_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use soma_search::record::synthetic_outcome;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("soma-ledger-unit");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn wipe(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_dir_all(path);
    }

    fn synth_row(i: u64) -> LedgerRow {
        LedgerRow::from_parts(
            &format!("{i:016x}"),
            &format!("cell-{i}"),
            "wl",
            "edge",
            1,
            synthetic_outcome(i, 4),
        )
    }

    #[test]
    fn corrupt_interior_line_is_quarantined_not_fatal() {
        let path = tmp("corrupt.jsonl");
        let qpath = quarantine_path(&path);
        let _ = fs::remove_file(&qpath);
        fs::write(&path, "garbage\n").unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(
            ledger.health(),
            LedgerHealth { kept: 0, quarantined: 1, truncated: false, duplicates: 0 }
        );
        assert!(!ledger.health().is_clean());
        // The corrupt line moved to the sidecar and the main file is
        // compacted clean: a reload reports full health.
        assert_eq!(fs::read_to_string(&qpath).unwrap(), "garbage\n");
        assert_eq!(fs::read(&path).unwrap().len(), 0);
        assert!(Ledger::load(&path).unwrap().health().is_clean());
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
    }

    #[test]
    fn missing_file_is_an_empty_ledger() {
        let path = std::env::temp_dir().join("soma-ledger-unit-definitely-missing.jsonl");
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(ledger.len(), 0);
        assert!(ledger.lookup("0000000000000000").is_none());
        assert!(ledger.health().is_clean());
        assert_eq!(ledger.format(), LedgerFormat::Jsonl);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        // A v1 row (no crc) fails the checksum gate first; a crc'd row
        // of a foreign version fails the version gate.
        let err = LedgerRow::from_line("{\"v\":1,\"hash\":\"x\"}").unwrap_err();
        assert!(err.contains("missing `crc`"), "{err}");
        let payload = "{\"v\":99}";
        let crc = format!("{:016x}", fnv1a(payload.bytes()));
        let line = format!("{{\"crc\":\"{crc}\",\"v\":99}}");
        let err = LedgerRow::from_line(&line).unwrap_err();
        assert!(err.contains("unsupported ledger version 99"), "{err}");
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let payload = "{\"v\":2,\"hash\":\"abc\"}";
        let line =
            format!("{{\"crc\":\"{:016x}\",\"v\":2,\"hash\":\"abd\"}}", fnv1a(payload.bytes()));
        let err = LedgerRow::from_line(&line).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn quarantine_path_replaces_the_extension() {
        assert_eq!(
            quarantine_path(Path::new("runs/serve.jsonl")),
            PathBuf::from("runs/serve.quarantine.jsonl")
        );
    }

    #[test]
    fn quarantine_sidecars_are_refused_as_ledgers() {
        // `quarantine_path` of a sidecar maps onto itself, so loading
        // one as a ledger would re-quarantine its own contents in
        // place. The load refuses instead.
        let path = tmp("refused.quarantine.jsonl");
        fs::write(&path, "garbage\n").unwrap();
        for load in [Ledger::load, Ledger::load_readonly] {
            let err = load(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
            assert!(err.to_string().contains("quarantine sidecar"), "{err}");
        }
        // The sidecar's bytes are untouched by the refused loads.
        assert_eq!(fs::read_to_string(&path).unwrap(), "garbage\n");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn format_detection_prefers_what_exists() {
        let dir = tmp("detect.ledger");
        wipe(&dir);
        assert_eq!(LedgerFormat::detect(&dir), LedgerFormat::Binary);
        assert_eq!(LedgerFormat::detect(Path::new("missing.jsonl")), LedgerFormat::Jsonl);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(LedgerFormat::detect(&dir), LedgerFormat::Binary);
        let file = tmp("detect.weird-extension");
        fs::write(&file, "x").unwrap();
        assert_eq!(LedgerFormat::detect(&file), LedgerFormat::Jsonl);
        wipe(&dir);
        let _ = fs::remove_file(&file);
    }

    #[test]
    fn binary_ledger_round_trips_through_index_and_scan() {
        let dir = tmp("roundtrip.ledger");
        wipe(&dir);
        let mut ledger = Ledger::load(&dir).unwrap();
        assert_eq!(ledger.format(), LedgerFormat::Binary);
        let rows: Vec<LedgerRow> = (0..40).map(synth_row).collect();
        for row in rows.iter().cloned() {
            ledger.append(row).unwrap();
        }
        ledger.sync_index().unwrap();

        // Index-backed reload: every row present, nothing decoded.
        let warm = Ledger::load_readonly(&dir).unwrap();
        assert_eq!(warm.len(), 40);
        assert!(warm.health().is_clean());
        for row in &rows {
            let got = warm.lookup(&row.hash).expect("hash present");
            assert_eq!(got.cell, row.cell);
            assert_eq!(got.best_cost.to_bits(), row.best_cost.to_bits());
            assert_eq!(got.evals, row.evals);
        }
        assert_eq!(warm.outcome_decodes(), 0, "a pure membership resume decodes nothing");
        // Lazily decoding one outcome touches exactly one frame.
        let one = warm.lookup(&rows[7].hash).unwrap();
        assert_eq!(one.outcome().expect("payload decodes").evals, rows[7].outcome().unwrap().evals);
        assert_eq!(warm.outcome_decodes(), 1);

        // Scan-backed reload (index deleted): same rows, same order.
        fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let scanned = Ledger::load_readonly(&dir).unwrap();
        assert!(scanned.health().is_clean());
        assert_eq!(scanned.len(), 40);
        let order: Vec<&str> = scanned.rows().iter().map(|r| r.hash.as_str()).collect();
        let want: Vec<&str> = rows.iter().map(|r| r.hash.as_str()).collect();
        assert_eq!(order, want, "seq merge preserves append order across shards");
        for row in &rows {
            let got = scanned.lookup(&row.hash).unwrap();
            assert_eq!(
                outcome_to_bytes(got.outcome().unwrap()),
                outcome_to_bytes(row.outcome().unwrap())
            );
        }
        wipe(&dir);
    }

    #[test]
    fn torn_tail_repair_is_in_place_not_a_compaction() {
        // JSONL: two rows plus a torn tail. The repair must be a
        // truncation (no compaction rewrite observed, no temp file).
        let path = tmp("torn.jsonl");
        wipe(&path);
        {
            let mut ledger = Ledger::load(&path).unwrap();
            ledger.append(synth_row(1)).unwrap();
            ledger.append(synth_row(2)).unwrap();
        }
        let clean = fs::read(&path).unwrap();
        let mut damaged = clean.clone();
        damaged.extend_from_slice(b"{\"crc\":\"torn");
        fs::write(&path, &damaged).unwrap();
        let plan = Arc::new(FaultPlan::seeded(0, FaultConfig::NONE));
        let ledger = Ledger::load_with_faults(&path, Arc::clone(&plan)).unwrap();
        assert_eq!(ledger.len(), 2);
        assert!(ledger.health().truncated);
        assert_eq!(ledger.health().quarantined, 0);
        assert_eq!(plan.invocations(fault::site::LEDGER_COMPACT), 0, "no compaction rewrite");
        assert!(!path.with_extension("jsonl.tmp").exists(), "no temp file created");
        assert_eq!(fs::read(&path).unwrap(), clean, "tail truncated in place");

        // A corrupt interior row, by contrast, must compact (observed
        // exactly once) and quarantine.
        let mut corrupted = Vec::new();
        corrupted.extend_from_slice(b"garbage\n");
        corrupted.extend_from_slice(&clean);
        fs::write(&path, &corrupted).unwrap();
        let plan2 = Arc::new(FaultPlan::seeded(0, FaultConfig::NONE));
        let repaired = Ledger::load_with_faults(&path, Arc::clone(&plan2)).unwrap();
        assert_eq!(repaired.len(), 2);
        assert_eq!(repaired.health().quarantined, 1);
        assert_eq!(plan2.invocations(fault::site::LEDGER_COMPACT), 1, "one compaction rewrite");
        wipe(&path);
        let _ = fs::remove_file(quarantine_path(&path));
    }

    #[test]
    fn binary_torn_tail_truncates_in_place_and_damage_quarantines() {
        let dir = tmp("torn.ledger");
        wipe(&dir);
        let rows: Vec<LedgerRow> = (0..6).map(synth_row).collect();
        {
            let mut ledger = Ledger::load(&dir).unwrap();
            ledger.append_all(rows.clone()).unwrap();
            ledger.sync_index().unwrap();
        }
        // Tear one shard mid-frame: append a frame prefix.
        let victim = shard_path(&dir, usize::from(shard_of(&rows[0].hash)));
        let clean = fs::read(&victim).unwrap();
        let mut torn = clean.clone();
        torn.extend_from_slice(FRAME_MAGIC);
        torn.extend_from_slice(&999u32.to_le_bytes());
        torn.extend_from_slice(&[0xab; 5]);
        fs::write(&victim, &torn).unwrap();

        let plan = Arc::new(FaultPlan::seeded(0, FaultConfig::NONE));
        let ledger = Ledger::load_with_faults(&dir, Arc::clone(&plan)).unwrap();
        assert_eq!(ledger.len(), rows.len());
        assert!(ledger.health().truncated);
        assert_eq!(plan.invocations(fault::site::LEDGER_COMPACT), 0, "torn tail never compacts");
        assert_eq!(fs::read(&victim).unwrap(), clean, "shard truncated in place");

        // Interior damage: flip a byte inside the first frame's body.
        let mut corrupt = fs::read(&victim).unwrap();
        let flip_at = SHARD_MAGIC.len() + 16;
        corrupt[flip_at] ^= 0xff;
        fs::write(&victim, &corrupt).unwrap();
        let _ = fs::remove_file(dir.join(INDEX_FILE));
        let plan2 = Arc::new(FaultPlan::seeded(0, FaultConfig::NONE));
        let repaired = Ledger::load_with_faults(&dir, Arc::clone(&plan2)).unwrap();
        assert!(repaired.health().quarantined >= 1);
        assert_eq!(plan2.invocations(fault::site::LEDGER_COMPACT), 1, "one shard rewritten");
        assert!(dir.join(QUARANTINE_FILE).exists());
        // Valid rows in other shards all survived.
        assert!(repaired.len() >= rows.len() - 1);
        // And the rewritten shard reloads clean.
        assert!(Ledger::load(&dir).unwrap().health().is_clean());
        wipe(&dir);
    }

    #[test]
    fn readonly_load_tolerates_damage_and_rejects_writes() {
        let path = tmp("readonly.jsonl");
        wipe(&path);
        {
            let mut ledger = Ledger::load(&path).unwrap();
            ledger.append(synth_row(1)).unwrap();
        }
        let mut damaged = fs::read(&path).unwrap();
        let before_garbage = damaged.clone();
        damaged.splice(0..0, b"garbage\n".iter().copied());
        damaged.extend_from_slice(b"{\"torn");
        fs::write(&path, &damaged).unwrap();

        let ledger = Ledger::load_readonly(&path).unwrap();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.health().quarantined, 1);
        assert!(ledger.health().truncated);
        assert!(ledger.readonly());
        // Nothing on disk moved: no truncation, no sidecar, no rewrite.
        assert_eq!(fs::read(&path).unwrap(), damaged);
        assert!(!quarantine_path(&path).exists());
        let err = Ledger::load_readonly(&path).unwrap().append(synth_row(9)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        let err = Ledger::load_readonly(&path).unwrap().sync_index().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        let err = Ledger::load_readonly(&path).unwrap().compact().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        let _ = before_garbage;
        wipe(&path);
    }

    #[test]
    fn v1_rows_migrate_on_read() {
        // A complete v1 row (no crc) parses via the migration path; an
        // incomplete one stays quarantined.
        let row = synth_row(3);
        let outcome = row.outcome().unwrap();
        let mut o = Value::obj();
        o.push("v", 1u64.into());
        o.push("hash", row.hash.as_str().into());
        o.push("cell", row.cell.as_str().into());
        o.push("workload", row.workload.as_str().into());
        o.push("platform", row.platform.as_str().into());
        o.push("batch", row.batch.into());
        o.push("outcome", outcome_to_json(outcome));
        let v1_line = json::to_string(&o);

        let path = tmp("v1.jsonl");
        wipe(&path);
        fs::write(&path, format!("{v1_line}\n{{\"v\":1}}\n")).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 1, "complete v1 row migrated");
        assert_eq!(ledger.health().quarantined, 1, "incomplete v1 row quarantined");
        let got = ledger.lookup(&row.hash).unwrap();
        assert_eq!(got.engine, "", "pre-v3 rows have no recorded engine");
        assert_eq!(
            outcome_to_bytes(got.outcome().unwrap()),
            outcome_to_bytes(outcome),
            "outcome survives migration bit-for-bit"
        );
        // The repair rewrite upgraded the surviving row to v2 on disk.
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"crc\":"), "{text}");
        wipe(&path);
        let _ = fs::remove_file(quarantine_path(&path));
    }

    #[test]
    fn compaction_drops_duplicates_and_stale_engines() {
        let dir = tmp("compact.ledger");
        wipe(&dir);
        let mut ledger = Ledger::load(&dir).unwrap();
        ledger.append(synth_row(1)).unwrap();
        let mut dup = synth_row(2);
        dup.hash = synth_row(1).hash;
        ledger.append(dup).unwrap();
        let mut stale = synth_row(3);
        stale.engine = "soma-engine-0".to_string();
        ledger.append(stale).unwrap();
        ledger.append(synth_row(4)).unwrap();
        assert_eq!(ledger.len(), 4);

        let stats = ledger.compact().unwrap();
        assert_eq!(stats, CompactStats { kept: 2, dropped_duplicates: 1, dropped_stale_engine: 1 });
        assert_eq!(ledger.len(), 2);
        // The duplicate resolved last-write-wins: the surviving row
        // under hash(1) is the *second* append (cell-2's outcome).
        let winner = ledger.lookup(&synth_row(1).hash).unwrap();
        assert_eq!(winner.cell, "cell-2");
        // Compaction persisted: a cold reload agrees.
        let cold = Ledger::load_readonly(&dir).unwrap();
        assert_eq!(cold.len(), 2);
        assert!(cold.health().is_clean());
        assert_eq!(cold.lookup(&synth_row(1).hash).unwrap().cell, "cell-2");
        assert!(cold.lookup(&synth_row(3).hash).is_none(), "stale engine row gone");
        wipe(&dir);
    }

    #[test]
    fn migration_preserves_rows_and_refuses_existing_targets() {
        let src = tmp("mig-src.jsonl");
        let dst = tmp("mig-dst.ledger");
        wipe(&src);
        wipe(&dst);
        {
            let mut ledger = Ledger::load(&src).unwrap();
            for i in 0..10 {
                ledger.append(synth_row(i)).unwrap();
            }
        }
        let src_bytes = fs::read(&src).unwrap();
        let stats = Ledger::migrate(&src, &dst).unwrap();
        assert_eq!(
            stats,
            MigrateStats { rows: 10, from: LedgerFormat::Jsonl, to: LedgerFormat::Binary }
        );
        assert_eq!(fs::read(&src).unwrap(), src_bytes, "source untouched");
        let migrated = Ledger::load_readonly(&dst).unwrap();
        assert_eq!(migrated.len(), 10);
        assert_eq!(migrated.outcome_decodes(), 0, "index written by migrate");
        let order: Vec<String> = migrated.rows().iter().map(|r| r.hash.clone()).collect();
        let want: Vec<String> = (0..10).map(|i| synth_row(i).hash).collect();
        assert_eq!(order, want, "row order preserved");
        // Round trip back to JSONL: byte-identical to the source.
        let back = tmp("mig-back.jsonl");
        wipe(&back);
        Ledger::migrate(&dst, &back).unwrap();
        assert_eq!(fs::read(&back).unwrap(), src_bytes, "jsonl → binary → jsonl is an identity");
        assert!(Ledger::migrate(&src, &dst).is_err(), "existing target refused");
        wipe(&src);
        wipe(&dst);
        wipe(&back);
    }

    #[test]
    fn shards_spread_by_hash_prefix() {
        assert_eq!(shard_of("0123456789abcdef"), 0);
        assert_eq!(shard_of("f123456789abcdef"), 15);
        assert_eq!(shard_of("a000000000000000"), 10);
        let weird = shard_of("~not-hex");
        assert!(usize::from(weird) < SHARDS);
    }
}
