//! The `soma-hardware v1` format: a named preset plus ordered field
//! overrides.
//!
//! ```text
//! soma-hardware v1
//! preset edge
//! name fat-edge
//! buffer_mib 32
//! dram_gbps 32
//! end
//! ```
//!
//! Overrides apply **in file order** on top of the preset, with the same
//! semantics as [`soma_arch::HardwareConfigBuilder`]: `tops`, `cores` and
//! `dram_gbps` re-derive dependent fields (PE-array split, vector lanes,
//! GBUF/L0 budgets), while the raw fields (`macs_per_cycle`,
//! `kc_parallel`, ...) set exactly one field. So `preset edge` +
//! `buffer_mib 32` is "the edge platform with a 32 MiB GBUF", and putting
//! `cores` *after* `tops` keeps the rebalance consistent, exactly as with
//! the builder.

use std::fmt::Write as _;

use soma_arch::HardwareConfig;

use crate::error::{body_lines, SpecError};

/// A named hardware starting point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// The paper's edge platform: 16 TOPS, 8 MB GBUF, 16 GB/s DRAM.
    Edge,
    /// The paper's cloud platform: 128 TOPS, 32 MB GBUF, 128 GB/s DRAM.
    Cloud,
    /// The builder's defaults (edge-scale, named `custom`).
    Custom,
}

impl Preset {
    /// The spec/registry identifier (`edge`, `cloud`, `custom`).
    pub fn id(self) -> &'static str {
        match self {
            Preset::Edge => "edge",
            Preset::Cloud => "cloud",
            Preset::Custom => "custom",
        }
    }

    /// Parses a spec/registry identifier.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "edge" => Some(Preset::Edge),
            "cloud" => Some(Preset::Cloud),
            "custom" => Some(Preset::Custom),
            _ => None,
        }
    }

    /// The preset's [`HardwareConfig`].
    pub fn config(self) -> HardwareConfig {
        match self {
            Preset::Edge => HardwareConfig::edge(),
            Preset::Cloud => HardwareConfig::cloud(),
            Preset::Custom => HardwareConfig::builder().build(),
        }
    }

    /// Recognises which preset a configuration *started from*, by the
    /// naming convention of the presets (`edge-16tops`, `cloud-128tops`)
    /// and of derived sweep points (`edge-8MB-32GBps`): the name's
    /// leading `edge`/`cloud` tag.
    pub fn of(hw: &HardwareConfig) -> Option<Self> {
        if hw.name.starts_with("edge") {
            Some(Preset::Edge)
        } else if hw.name.starts_with("cloud") {
            Some(Preset::Cloud)
        } else {
            None
        }
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One ordered override on top of a [`Preset`].
#[derive(Debug, Clone, PartialEq)]
pub enum HwField {
    /// Configuration name (reports and scenario keys).
    Name(String),
    /// Clock frequency in Hz (raw field; set it *before* `tops`/
    /// `dram_gbps`, whose conversions read it).
    FreqHz(u64),
    /// Peak TOPS (builder semantics: re-derives the PE-array split).
    Tops(f64),
    /// Core count (builder semantics: re-derives per-core parallelism).
    Cores(u32),
    /// GBUF capacity in MiB.
    BufferMib(u64),
    /// GBUF capacity in bytes.
    BufferBytes(u64),
    /// DRAM bandwidth in GB/s (builder semantics).
    DramGbps(f64),
    /// Raw field: MACs per cycle across all cores.
    MacsPerCycle(u64),
    /// Raw field: channel-parallel lanes per core.
    KcParallel(u32),
    /// Raw field: spatial positions per core.
    SpatialParallel(u32),
    /// Raw field: vector-unit elements per cycle.
    VectorLanes(u64),
    /// Raw field: GBUF bytes per cycle.
    GbufBytesPerCycle(u64),
    /// Raw field: aggregate weight-L0 bytes.
    Wl0Bytes(u64),
    /// Raw field: aggregate activation-L0 bytes.
    Al0Bytes(u64),
}

impl HwField {
    pub(crate) fn key(&self) -> &'static str {
        match self {
            HwField::Name(_) => "name",
            HwField::FreqHz(_) => "freq_hz",
            HwField::Tops(_) => "tops",
            HwField::Cores(_) => "cores",
            HwField::BufferMib(_) => "buffer_mib",
            HwField::BufferBytes(_) => "buffer_bytes",
            HwField::DramGbps(_) => "dram_gbps",
            HwField::MacsPerCycle(_) => "macs_per_cycle",
            HwField::KcParallel(_) => "kc_parallel",
            HwField::SpatialParallel(_) => "spatial_parallel",
            HwField::VectorLanes(_) => "vector_lanes",
            HwField::GbufBytesPerCycle(_) => "gbuf_bytes_per_cycle",
            HwField::Wl0Bytes(_) => "wl0_bytes",
            HwField::Al0Bytes(_) => "al0_bytes",
        }
    }

    pub(crate) fn value_text(&self) -> String {
        match self {
            HwField::Name(v) => v.clone(),
            HwField::FreqHz(v) => v.to_string(),
            HwField::Tops(v) => v.to_string(),
            HwField::Cores(v) => v.to_string(),
            HwField::BufferMib(v) => v.to_string(),
            HwField::BufferBytes(v) => v.to_string(),
            HwField::DramGbps(v) => v.to_string(),
            HwField::MacsPerCycle(v) => v.to_string(),
            HwField::KcParallel(v) => v.to_string(),
            HwField::SpatialParallel(v) => v.to_string(),
            HwField::VectorLanes(v) => v.to_string(),
            HwField::GbufBytesPerCycle(v) => v.to_string(),
            HwField::Wl0Bytes(v) => v.to_string(),
            HwField::Al0Bytes(v) => v.to_string(),
        }
    }

    /// Parses a `<key> <value>` pair into a field override. The caller
    /// supplies a located error factory for bad values.
    pub(crate) fn parse_pair(
        key: &str,
        value: &str,
        err: impl Fn(String) -> SpecError,
    ) -> Result<Option<Self>, SpecError> {
        fn num<T: std::str::FromStr>(
            value: &str,
            key: &str,
            err: &impl Fn(String) -> SpecError,
        ) -> Result<T, SpecError> {
            value.parse().map_err(|_| err(format!("`{key}` expects a number, got `{value}`")))
        }
        /// A rate like `tops`/`dram_gbps`: positive, finite, sane. The
        /// builder's unit conversions divide and round through these, so
        /// a `NaN`/`inf`/0 here must die at parse time with a located
        /// error, not surface later as a panic (or a zero-capacity
        /// config) when the spec is resolved.
        fn rate(
            value: &str,
            key: &str,
            err: &impl Fn(String) -> SpecError,
        ) -> Result<f64, SpecError> {
            let v: f64 = num(value, key, err)?;
            if !v.is_finite() || v <= 0.0 || v > 1e9 {
                return Err(err(format!(
                    "`{key}` expects a positive finite number (at most 1e9), got `{value}`"
                )));
            }
            Ok(v)
        }
        fn positive<T: std::str::FromStr + PartialOrd + Default>(
            value: &str,
            key: &str,
            err: &impl Fn(String) -> SpecError,
        ) -> Result<T, SpecError> {
            let v: T = num(value, key, err)?;
            if v <= T::default() {
                return Err(err(format!("`{key}` must be positive, got `{value}`")));
            }
            Ok(v)
        }
        Ok(Some(match key {
            "name" => HwField::Name(value.to_string()),
            "freq_hz" => HwField::FreqHz(positive(value, key, &err)?),
            "tops" => HwField::Tops(rate(value, key, &err)?),
            "cores" => HwField::Cores(positive(value, key, &err)?),
            "buffer_mib" => {
                let v: u64 = positive(value, key, &err)?;
                if v > 1 << 20 {
                    return Err(err(format!("`{key}` must be at most {} (1 TiB)", 1u64 << 20)));
                }
                HwField::BufferMib(v)
            }
            "buffer_bytes" => HwField::BufferBytes(positive(value, key, &err)?),
            "dram_gbps" => HwField::DramGbps(rate(value, key, &err)?),
            "macs_per_cycle" => HwField::MacsPerCycle(num(value, key, &err)?),
            "kc_parallel" => HwField::KcParallel(num(value, key, &err)?),
            "spatial_parallel" => HwField::SpatialParallel(num(value, key, &err)?),
            "vector_lanes" => HwField::VectorLanes(num(value, key, &err)?),
            "gbuf_bytes_per_cycle" => HwField::GbufBytesPerCycle(num(value, key, &err)?),
            "wl0_bytes" => HwField::Wl0Bytes(num(value, key, &err)?),
            "al0_bytes" => HwField::Al0Bytes(num(value, key, &err)?),
            _ => return Ok(None),
        }))
    }

    /// Applies this override to a configuration.
    fn apply(&self, cfg: HardwareConfig) -> HardwareConfig {
        let b = HardwareConfig::builder().like(&cfg);
        match self {
            HwField::Name(v) => b.name(v.clone()).build(),
            HwField::Tops(v) => b.tops(*v).build(),
            HwField::Cores(v) => b.cores(*v).build(),
            HwField::BufferMib(v) => b.buffer_mib(*v).build(),
            HwField::BufferBytes(v) => b.buffer_bytes(*v).build(),
            HwField::DramGbps(v) => b.dram_gbps(*v).build(),
            HwField::FreqHz(v) => {
                let mut cfg = b.build();
                cfg.freq_hz = (*v).max(1);
                cfg
            }
            HwField::MacsPerCycle(v) => {
                let mut cfg = b.build();
                cfg.macs_per_cycle = (*v).max(1);
                cfg
            }
            HwField::KcParallel(v) => {
                let mut cfg = b.build();
                cfg.kc_parallel = (*v).max(1);
                cfg
            }
            HwField::SpatialParallel(v) => {
                let mut cfg = b.build();
                cfg.spatial_parallel = (*v).max(1);
                cfg
            }
            HwField::VectorLanes(v) => {
                let mut cfg = b.build();
                cfg.vector_lanes = (*v).max(1);
                cfg
            }
            HwField::GbufBytesPerCycle(v) => {
                let mut cfg = b.build();
                cfg.gbuf_bytes_per_cycle = (*v).max(1);
                cfg
            }
            HwField::Wl0Bytes(v) => {
                let mut cfg = b.build();
                cfg.wl0_bytes = *v;
                cfg
            }
            HwField::Al0Bytes(v) => {
                let mut cfg = b.build();
                cfg.al0_bytes = *v;
                cfg
            }
        }
    }
}

/// A parseable hardware description: preset + ordered overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSpec {
    /// The starting point.
    pub preset: Preset,
    /// Overrides, applied in order on top of the preset.
    pub overrides: Vec<HwField>,
}

impl HardwareSpec {
    /// A bare preset with no overrides.
    pub fn preset(preset: Preset) -> Self {
        Self { preset, overrides: Vec::new() }
    }

    /// Whether this is a bare preset (resolves to a registry platform).
    pub fn is_bare_preset(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Resolves to a [`HardwareConfig`] by applying the overrides in
    /// order.
    pub fn resolve(&self) -> HardwareConfig {
        self.overrides.iter().fold(self.preset.config(), |cfg, f| f.apply(cfg))
    }
}

/// Writes a hardware spec to the `soma-hardware v1` text format.
pub fn write_hardware(spec: &HardwareSpec) -> String {
    let mut out = String::new();
    out.push_str("soma-hardware v1\n");
    let _ = writeln!(out, "preset {}", spec.preset);
    for f in &spec.overrides {
        let _ = writeln!(out, "{} {}", f.key(), f.value_text());
    }
    out.push_str("end\n");
    out
}

/// Reads a hardware spec from the `soma-hardware v1` text format.
///
/// # Errors
///
/// Returns a located [`SpecError`] on an unknown preset or field key, a
/// malformed value, a missing `preset`/`end` line, or content after
/// `end`.
pub fn read_hardware(text: &str) -> Result<HardwareSpec, SpecError> {
    let lines = body_lines(text, "soma-hardware v1")?;
    let mut preset: Option<Preset> = None;
    let mut overrides = Vec::new();
    let mut last_line = 1usize;
    let mut ended = false;

    for toks in &lines {
        let head = toks[0];
        last_line = head.line;
        if ended {
            return Err(head.err("content after `end`"));
        }
        match head.text {
            "end" => ended = true,
            "preset" => {
                let [_, value] = toks[..] else {
                    return Err(head.err("expected `preset <edge|cloud|custom>`"));
                };
                let p = Preset::parse(value.text).ok_or_else(|| {
                    value.err(format!(
                        "unknown preset `{}` (expected edge|cloud|custom)",
                        value.text
                    ))
                })?;
                if preset.replace(p).is_some() {
                    return Err(value.err("duplicate `preset` line"));
                }
            }
            key => {
                if preset.is_none() {
                    return Err(head.err("`preset` must precede field overrides"));
                }
                let [_, value] = toks[..] else {
                    return Err(head.err(format!("expected `{key} <value>`")));
                };
                match HwField::parse_pair(key, value.text, |msg| value.err(msg))? {
                    Some(f) => overrides.push(f),
                    None => return Err(head.err(format!("unknown hardware field `{key}`"))),
                }
            }
        }
    }
    if !ended {
        return Err(SpecError::new(last_line + 1, 1, "missing `end` line"));
    }
    let preset = preset.ok_or_else(|| SpecError::new(last_line, 1, "missing `preset` line"))?;
    Ok(HardwareSpec { preset, overrides })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_presets_resolve_to_paper_platforms() {
        assert_eq!(HardwareSpec::preset(Preset::Edge).resolve(), HardwareConfig::edge());
        assert_eq!(HardwareSpec::preset(Preset::Cloud).resolve(), HardwareConfig::cloud());
    }

    #[test]
    fn overrides_apply_in_order_with_builder_semantics() {
        let spec = read_hardware(
            "soma-hardware v1\npreset edge\nbuffer_mib 32\ndram_gbps 32\nname fat-edge\nend\n",
        )
        .unwrap();
        let hw = spec.resolve();
        let expect = HardwareConfig::builder()
            .like(&HardwareConfig::edge())
            .buffer_mib(32)
            .dram_gbps(32.0)
            .name("fat-edge")
            .build();
        assert_eq!(hw, expect);
    }

    #[test]
    fn raw_fields_set_exactly_one_field() {
        let spec = read_hardware("soma-hardware v1\npreset edge\nkc_parallel 64\nend\n").unwrap();
        let hw = spec.resolve();
        let edge = HardwareConfig::edge();
        assert_eq!(hw.kc_parallel, 64);
        assert_eq!(hw.spatial_parallel, edge.spatial_parallel);
        assert_eq!(hw.macs_per_cycle, edge.macs_per_cycle);
    }

    #[test]
    fn round_trips_through_text() {
        let spec = HardwareSpec {
            preset: Preset::Cloud,
            overrides: vec![
                HwField::Tops(64.0),
                HwField::BufferMib(16),
                HwField::Name("half-cloud".into()),
            ],
        };
        let text = write_hardware(&spec);
        assert_eq!(read_hardware(&text).unwrap(), spec);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = read_hardware("soma-hardware v1\npreset warp\nend\n").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
        let e = read_hardware("soma-hardware v1\npreset edge\nbuffer_mib lots\nend\n").unwrap_err();
        assert_eq!((e.line, e.col), (3, 12));
        let e = read_hardware("soma-hardware v1\npreset edge\nwarp_core 9\nend\n").unwrap_err();
        assert_eq!((e.line, e.col), (3, 1));
        let e = read_hardware("soma-hardware v1\npreset edge\n").unwrap_err();
        assert!(e.to_string().contains("missing `end`"), "{e}");
    }

    #[test]
    fn preset_of_recognises_derived_names() {
        assert_eq!(Preset::of(&HardwareConfig::edge()), Some(Preset::Edge));
        assert_eq!(Preset::of(&HardwareConfig::cloud()), Some(Preset::Cloud));
        let swept =
            HardwareConfig::builder().like(&HardwareConfig::edge()).name("edge-8MB-32GBps").build();
        assert_eq!(Preset::of(&swept), Some(Preset::Edge));
        assert_eq!(Preset::of(&HardwareConfig::builder().build()), None);
    }
}
