//! Deterministic fault injection: a seeded [`FaultPlan`] decides, per
//! instrumented **site** and invocation index, whether that invocation
//! fails — and how.
//!
//! The chaos suite's whole value is reproducibility: a failure found
//! under seed 7 must replay under seed 7, on every machine, forever.
//! So the plan holds no wall-clock, no OS randomness and no global
//! state: every decision is a pure function of `(plan seed, site name,
//! invocation index)` hashed through FNV-1a. The only mutable state is
//! a per-site invocation counter, so single-threaded (or per-site
//! single-writer) runs are bit-reproducible; concurrent callers of one
//! site still get a deterministic *set* of faults, just distributed by
//! scheduling order. Chaos tests that need full determinism pin their
//! producers to one thread (`threads seq`, one client).
//!
//! Three layers consume the plan:
//!
//! * the [ledger](crate::ledger) writer ([`site::LEDGER_APPEND`]) —
//!   torn writes, silent bit-flips, fsync errors;
//! * the `soma-serve` daemon's frame writer ([`site::SERVE_SEND`],
//!   [`site::SERVE_SEARCH`]) — connections dropped mid-frame, searches
//!   that panic;
//! * the `lab` orchestrator's cell runner ([`site::LAB_CELL`]) —
//!   panicking and artificially slow cells.
//!
//! A plan can be **seeded** (every invocation rolls against per-mille
//! rates, [`FaultPlan::seeded`]) or **scripted** (an explicit list of
//! `(site, index, fault)` triples, [`FaultPlan::scripted`]) — the first
//! drives fuzz-style chaos storms, the second drives directed tests
//! ("the 2nd append tears").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The instrumented sites a [`FaultPlan`] can target. Site names are
/// part of the plan's identity: a scripted plan addresses them by
/// string, and the seeded roll hashes them.
pub mod site {
    /// One [`Ledger::append`](crate::ledger::Ledger::append) call.
    pub const LEDGER_APPEND: &str = "ledger.append";
    /// One compaction rewrite of a ledger (the temp-file + rename
    /// path). Repairs that should stay in place (torn-tail-only) must
    /// never advance this counter — pinned by test.
    pub const LEDGER_COMPACT: &str = "ledger.compact";
    /// One response frame written by the serve daemon.
    pub const SERVE_SEND: &str = "serve.send";
    /// One search executed by the serve daemon.
    pub const SERVE_SEARCH: &str = "serve.search";
    /// One experiment cell executed by the lab orchestrator.
    pub const LAB_CELL: &str = "lab.cell";
}

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The write persists only a prefix of the line and then "crashes"
    /// (the append returns an error). `keep_per_mille` of the payload
    /// bytes survive.
    TornWrite {
        /// How much of the line survives, in thousandths.
        keep_per_mille: u16,
    },
    /// The write completes and *reports success*, but one bit of the
    /// persisted line is flipped — silent media corruption, caught only
    /// by the row checksum on the next load.
    BitFlip {
        /// Deterministic salt selecting the corrupted byte and bit.
        salt: u64,
    },
    /// The write syncs nothing and fails cleanly (full disk, dying
    /// device): no bytes reach the file.
    FsyncError,
    /// The peer's connection drops mid-frame: a prefix of the frame is
    /// written, then the stream dies.
    DropConnection,
    /// The worker panics.
    Panic,
    /// The worker stalls for `millis` before proceeding normally.
    Slow {
        /// Injected delay in milliseconds.
        millis: u64,
    },
}

/// Per-mille injection rates of a seeded plan. Each rate is the
/// probability (in thousandths) that one invocation of the relevant
/// site draws that fault; rates at one site are tried in declaration
/// order and must sum to ≤ 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// [`Fault::TornWrite`] rate at [`site::LEDGER_APPEND`].
    pub torn_write: u16,
    /// [`Fault::BitFlip`] rate at [`site::LEDGER_APPEND`].
    pub bit_flip: u16,
    /// [`Fault::FsyncError`] rate at [`site::LEDGER_APPEND`].
    pub fsync_error: u16,
    /// [`Fault::DropConnection`] rate at [`site::SERVE_SEND`].
    pub drop_connection: u16,
    /// [`Fault::Panic`] rate at [`site::SERVE_SEARCH`] and
    /// [`site::LAB_CELL`].
    pub panic: u16,
    /// [`Fault::Slow`] rate at [`site::LAB_CELL`].
    pub slow: u16,
    /// Delay of an injected [`Fault::Slow`], in milliseconds.
    pub slow_millis: u64,
}

impl FaultConfig {
    /// No faults anywhere (all rates zero).
    pub const NONE: Self = Self {
        torn_write: 0,
        bit_flip: 0,
        fsync_error: 0,
        drop_connection: 0,
        panic: 0,
        slow: 0,
        slow_millis: 0,
    };

    /// The chaos-suite default: every fault class enabled at a rate
    /// high enough to fire within a few dozen invocations.
    pub const CHAOS: Self = Self {
        torn_write: 120,
        bit_flip: 120,
        fsync_error: 60,
        drop_connection: 150,
        panic: 150,
        slow: 100,
        slow_millis: 5,
    };
}

/// FNV-1a 64 over a byte stream — the plan's only source of
/// "randomness", so decisions are identical on every platform.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic schedule of injected failures.
///
/// Cheap to share: consumers hold an `Arc<FaultPlan>` and call
/// [`next`](Self::next) once per instrumented invocation.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
    script: Vec<(String, u64, Fault)>,
    counters: Mutex<HashMap<&'static str, u64>>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A probabilistic plan: every invocation of every site rolls
    /// against `cfg`'s rates, with all rolls derived from `seed`.
    pub fn seeded(seed: u64, cfg: FaultConfig) -> Self {
        Self {
            seed,
            cfg,
            script: Vec::new(),
            counters: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// A scripted plan: exactly the listed `(site, invocation index,
    /// fault)` triples fire, nothing else. Indices are zero-based per
    /// site.
    pub fn scripted(script: impl IntoIterator<Item = (&'static str, u64, Fault)>) -> Self {
        Self {
            seed: 0,
            cfg: FaultConfig::NONE,
            script: script.into_iter().map(|(s, i, f)| (s.to_string(), i, f)).collect(),
            counters: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults handed out so far (for test assertions).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// How many times `site` has been invoked so far — faulted or not.
    /// Tests use this as a cheap execution-path probe (e.g. "the
    /// torn-tail repair never reached the compaction site").
    pub fn invocations(&self, site: &str) -> u64 {
        *self.counters.lock().expect("fault counters poisoned").get(site).unwrap_or(&0)
    }

    /// Advances `site`'s invocation counter **without** consulting the
    /// fault schedule — a pure execution-path probe. Sites that tests
    /// assert on but never inject into (compaction rewrites) call this,
    /// so attaching a plan cannot change what those sites do, only
    /// whether their execution is visible to [`invocations`].
    ///
    /// [`invocations`]: Self::invocations
    pub fn observe(&self, site: &'static str) {
        let mut counters = self.counters.lock().expect("fault counters poisoned");
        *counters.entry(site).or_insert(0) += 1;
    }

    /// Advances `site`'s invocation counter and returns the fault (if
    /// any) scheduled for that invocation.
    pub fn next(&self, site: &'static str) -> Option<Fault> {
        let index = {
            let mut counters = self.counters.lock().expect("fault counters poisoned");
            let n = counters.entry(site).or_insert(0);
            let index = *n;
            *n += 1;
            index
        };
        let fault = self.decide(site, index);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }

    /// The pure decision function: what (if anything) fails at `site`'s
    /// `index`-th invocation. [`next`](Self::next) is this plus the
    /// counter; tests use `decide` directly to predict a schedule.
    pub fn decide(&self, site: &str, index: u64) -> Option<Fault> {
        if let Some((_, _, fault)) = self.script.iter().find(|(s, i, _)| s == site && *i == index) {
            return Some(*fault);
        }
        let h = fnv1a(
            self.seed
                .to_le_bytes()
                .into_iter()
                .chain(site.bytes())
                .chain([0x1f])
                .chain(index.to_le_bytes()),
        );
        let roll = (h % 1000) as u16;
        // Walk the site's fault classes in declaration order over
        // cumulative per-mille thresholds; parameters derive from the
        // upper hash bits so they are reproducible too.
        let param = h >> 10;
        let mut threshold = 0u16;
        let mut pick = |rate: u16, fault: Fault| -> Option<Fault> {
            threshold = threshold.saturating_add(rate);
            (roll < threshold).then_some(fault)
        };
        match site {
            site::LEDGER_APPEND => pick(
                self.cfg.torn_write,
                Fault::TornWrite { keep_per_mille: (param % 1000) as u16 },
            )
            .or_else(|| pick(self.cfg.bit_flip, Fault::BitFlip { salt: param }))
            .or_else(|| pick(self.cfg.fsync_error, Fault::FsyncError)),
            site::SERVE_SEND => pick(self.cfg.drop_connection, Fault::DropConnection),
            site::SERVE_SEARCH => pick(self.cfg.panic, Fault::Panic),
            site::LAB_CELL => pick(self.cfg.panic, Fault::Panic)
                .or_else(|| pick(self.cfg.slow, Fault::Slow { millis: self.cfg.slow_millis })),
            _ => None,
        }
    }
}

/// Flips one deterministic bit of `bytes` in place (no-op on an empty
/// slice): the on-disk effect of [`Fault::BitFlip`]. Exposed so chaos
/// tests can corrupt arbitrary artifacts the same way the ledger
/// writer does.
pub fn flip_bit(bytes: &mut [u8], salt: u64) {
    if bytes.is_empty() {
        return;
    }
    let pos = (salt as usize) % bytes.len();
    let bit = (salt >> 32) % 8;
    bytes[pos] ^= 1 << bit;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_a_pure_function_of_seed_site_and_index() {
        let a = FaultPlan::seeded(7, FaultConfig::CHAOS);
        let b = FaultPlan::seeded(7, FaultConfig::CHAOS);
        for i in 0..200 {
            assert_eq!(a.decide(site::LEDGER_APPEND, i), b.decide(site::LEDGER_APPEND, i));
            assert_eq!(a.decide(site::LAB_CELL, i), b.decide(site::LAB_CELL, i));
        }
        let c = FaultPlan::seeded(8, FaultConfig::CHAOS);
        let differs =
            (0..200).any(|i| a.decide(site::LEDGER_APPEND, i) != c.decide(site::LEDGER_APPEND, i));
        assert!(differs, "a different seed must produce a different schedule");
    }

    #[test]
    fn next_matches_decide_and_counts_injections() {
        let plan = FaultPlan::seeded(42, FaultConfig::CHAOS);
        let mut expected_injected = 0;
        for i in 0..100 {
            let expect = plan.decide(site::LEDGER_APPEND, i);
            if expect.is_some() {
                expected_injected += 1;
            }
            assert_eq!(plan.next(site::LEDGER_APPEND), expect, "invocation {i}");
        }
        assert_eq!(plan.injected(), expected_injected);
        assert!(expected_injected > 0, "CHAOS rates must fire within 100 invocations");
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::scripted([
            (site::LEDGER_APPEND, 1, Fault::FsyncError),
            (site::LAB_CELL, 0, Fault::Panic),
        ]);
        assert_eq!(plan.next(site::LAB_CELL), Some(Fault::Panic));
        assert_eq!(plan.next(site::LEDGER_APPEND), None);
        assert_eq!(plan.next(site::LEDGER_APPEND), Some(Fault::FsyncError));
        assert_eq!(plan.next(site::LEDGER_APPEND), None);
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::seeded(7, FaultConfig::NONE);
        for i in 0..1000 {
            assert_eq!(plan.decide(site::LEDGER_APPEND, i), None);
            assert_eq!(plan.decide(site::SERVE_SEND, i), None);
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut bytes = vec![0u8; 64];
        flip_bit(&mut bytes, 0x0000_0003_0000_0029);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(bytes[0x29], 1 << 3); // position 0x29 (< 64), bit 3
        flip_bit(&mut bytes, 0x0000_0003_0000_0029);
        assert!(bytes.iter().all(|&b| b == 0), "flipping twice restores");
        flip_bit(&mut [], 9); // no panic on empty
    }
}
