//! Spec parse errors, always located by line and column.

/// An error while parsing a spec file. Every error carries the 1-based
/// `line` and `col` of the offending token so a user can jump straight to
/// it in an editor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending token.
    pub line: usize,
    /// 1-based character column of the offending token.
    pub col: usize,
    /// What went wrong, in terms of the grammar.
    pub msg: String,
}

impl SpecError {
    /// Creates an error at the given position.
    pub fn new(line: usize, col: usize, msg: impl Into<String>) -> Self {
        Self { line, col, msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for SpecError {}

/// One whitespace-delimited token of a spec line, with its 1-based
/// character column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Token<'a> {
    pub line: usize,
    pub col: usize,
    pub text: &'a str,
}

impl<'a> Token<'a> {
    /// An error pointing at this token.
    pub fn err(&self, msg: impl Into<String>) -> SpecError {
        SpecError::new(self.line, self.col, msg)
    }

    /// Parses the token's text, reporting the expected type on failure.
    pub fn parse<T: std::str::FromStr>(&self, expected: &str) -> Result<T, SpecError> {
        self.text.parse().map_err(|_| self.err(format!("expected {expected}, got `{}`", self.text)))
    }
}

/// Splits a line into tokens with 1-based character columns. A `#` token
/// starts a comment: it and everything after it is dropped.
pub(crate) fn tokenize(line_no: usize, line: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let mut col = 0usize;
    let mut start: Option<(usize, usize)> = None; // (col, byte offset)
    for (bytes, ch) in line.char_indices() {
        col += 1;
        if ch.is_whitespace() {
            if let Some((c, b)) = start.take() {
                out.push(Token { line: line_no, col: c, text: &line[b..bytes] });
            }
        } else if start.is_none() {
            start = Some((col, bytes));
        }
    }
    if let Some((c, b)) = start {
        out.push(Token { line: line_no, col: c, text: &line[b..] });
    }
    if let Some(pos) = out.iter().position(|t| t.text.starts_with('#')) {
        out.truncate(pos);
    }
    out
}

/// Iterates over the non-empty, non-comment lines of `text` as token
/// vectors, checking the `v1` header first. Returns the tokenized body
/// lines (header excluded) or a located error.
pub(crate) fn body_lines<'a>(
    text: &'a str,
    header: &str,
) -> Result<Vec<Vec<Token<'a>>>, SpecError> {
    let mut lines = Vec::new();
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let toks = tokenize(i + 1, raw);
        if toks.is_empty() {
            continue;
        }
        if !saw_header {
            if raw.trim() != header {
                return Err(toks[0].err(format!("expected `{header}` header")));
            }
            saw_header = true;
            continue;
        }
        lines.push(toks);
    }
    if !saw_header {
        return Err(SpecError::new(1, 1, format!("expected `{header}` header")));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_tracks_columns() {
        let toks = tokenize(3, "  conv c1  from x");
        assert_eq!(toks.len(), 4);
        assert_eq!((toks[0].col, toks[0].text), (3, "conv"));
        assert_eq!((toks[1].col, toks[1].text), (8, "c1"));
        assert_eq!((toks[2].col, toks[2].text), (12, "from"));
        assert_eq!((toks[3].col, toks[3].text), (17, "x"));
        assert_eq!(toks[3].line, 3);
    }

    #[test]
    fn comments_are_dropped() {
        assert!(tokenize(1, "# a comment").is_empty());
        let toks = tokenize(1, "batch 1 # grid");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn header_is_checked() {
        let err = body_lines("nope\n", "soma-network v1").unwrap_err();
        assert_eq!((err.line, err.col), (1, 1));
        assert!(body_lines("", "soma-network v1").is_err());
        let ok = body_lines("# c\nsoma-network v1\nname x\n", "soma-network v1").unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn display_has_line_and_column() {
        let e = SpecError::new(4, 9, "boom");
        assert_eq!(e.to_string(), "line 4, column 9: boom");
    }
}
