//! The scenario registry: stable ids for every zoo workload × platform
//! preset × batch combination.
//!
//! An id reads `<workload>@<preset>/b<batch>`, e.g. `fig2@edge/b1` or
//! `resnet50@cloud/b16`. Workload names are the canonical
//! [`soma_model::zoo::entries`] names, presets the paper's two platforms.
//! The enumerated registry ([`scenarios`]) covers the paper's batch grid
//! {1, 4, 16, 64}; [`lookup`] additionally resolves any positive batch,
//! so `resnet50@edge/b2` is a valid (if off-grid) scenario id.

use soma_arch::HardwareConfig;
use soma_model::{zoo, Network};

use crate::hardware::Preset;

/// The paper's batch-size grid, enumerated by [`scenarios`].
pub const REGISTRY_BATCHES: [u32; 4] = [1, 4, 16, 64];

/// One named point of the workload × platform × batch matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Canonical zoo workload name (an [`zoo::entries`] row).
    pub workload: String,
    /// Platform preset.
    pub preset: Preset,
    /// Batch size.
    pub batch: u32,
}

impl Scenario {
    /// The stable id, `<workload>@<preset>/b<batch>`.
    pub fn id(&self) -> String {
        scenario_id(&self.workload, self.preset, self.batch)
    }

    /// Builds the scenario's network at its batch size.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is not a zoo entry (impossible for
    /// scenarios obtained from [`scenarios`]/[`lookup`]).
    pub fn network(&self) -> Network {
        zoo::by_name_at(&self.workload, self.batch)
            .unwrap_or_else(|| panic!("unknown zoo workload `{}`", self.workload))
    }

    /// The scenario's platform configuration.
    pub fn hardware(&self) -> HardwareConfig {
        self.preset.config()
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}/b{}", self.workload, self.preset, self.batch)
    }
}

/// Formats a scenario id without constructing a [`Scenario`].
pub fn scenario_id(workload: &str, preset: Preset, batch: u32) -> String {
    format!("{workload}@{preset}/b{batch}")
}

/// Enumerates the full registry: every zoo entry × {edge, cloud} ×
/// {1, 4, 16, 64}, in zoo order, edge before cloud, batches ascending.
pub fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for entry in zoo::entries() {
        for preset in [Preset::Edge, Preset::Cloud] {
            for batch in REGISTRY_BATCHES {
                out.push(Scenario { workload: entry.name.to_string(), preset, batch });
            }
        }
    }
    out
}

/// The paper's per-platform evaluation suite at one batch size: the zoo
/// entries flagged for `preset` ([`Preset::Custom`] gets the full zoo).
pub fn suite(preset: Preset, batch: u32) -> Vec<Scenario> {
    zoo::entries()
        .iter()
        .filter(|e| match preset {
            Preset::Edge => e.edge,
            Preset::Cloud => e.cloud,
            Preset::Custom => true,
        })
        .map(|e| Scenario { workload: e.name.to_string(), preset, batch })
        .collect()
}

/// Resolves a scenario id. Returns `None` if the workload is not a zoo
/// entry, the preset is unknown, or the batch is malformed or zero.
pub fn lookup(id: &str) -> Option<Scenario> {
    let (workload, rest) = id.split_once('@')?;
    let (preset, batch) = rest.split_once('/')?;
    let preset = Preset::parse(preset)?;
    let batch: u32 = batch.strip_prefix('b')?.parse().ok()?;
    if batch == 0 || !zoo::entries().iter().any(|e| e.name == workload) {
        return None;
    }
    Some(Scenario { workload: workload.to_string(), preset, batch })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enumerates_the_paper_matrix() {
        let all = scenarios();
        assert_eq!(all.len(), zoo::entries().len() * 2 * REGISTRY_BATCHES.len());
        // Ids are unique.
        let mut ids: Vec<_> = all.iter().map(Scenario::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn ids_round_trip_through_lookup() {
        for sc in scenarios() {
            let back = lookup(&sc.id()).expect("registry id resolves");
            assert_eq!(back, sc);
        }
        assert_eq!(
            lookup("fig2@edge/b1"),
            Some(Scenario { workload: "fig2".into(), preset: Preset::Edge, batch: 1 })
        );
    }

    #[test]
    fn lookup_rejects_malformed_and_unknown_ids() {
        for bad in [
            "fig2",
            "fig2@edge",
            "fig2@edge/1",
            "fig2@edge/b0",
            "fig2@edge/bx",
            "fig2@warp/b1",
            "no-such-net@edge/b1",
        ] {
            assert!(lookup(bad).is_none(), "{bad} should not resolve");
        }
        // Off-grid batches resolve (documented): the id space is dense.
        assert!(lookup("fig2@edge/b2").is_some());
    }

    #[test]
    fn scenario_resolves_network_and_hardware() {
        let sc = lookup("resnet50@cloud/b4").unwrap();
        let net = sc.network();
        assert_eq!(net.name(), "resnet50");
        assert_eq!(net.externals()[0].n, 4);
        assert_eq!(sc.hardware(), HardwareConfig::cloud());
    }

    #[test]
    fn suites_match_the_zoo_membership() {
        let edge: Vec<_> = suite(Preset::Edge, 1).iter().map(|s| s.workload.clone()).collect();
        let zoo_edge: Vec<_> = zoo::edge_suite(1).iter().map(|n| n.name().to_string()).collect();
        assert_eq!(edge, zoo_edge);
        let cloud: Vec<_> = suite(Preset::Cloud, 4).iter().map(|s| s.workload.clone()).collect();
        let zoo_cloud: Vec<_> = zoo::cloud_suite(4).iter().map(|n| n.name().to_string()).collect();
        assert_eq!(cloud, zoo_cloud);
        assert_eq!(suite(Preset::Custom, 1).len(), zoo::entries().len());
    }
}
