//! Declarative scenario specs: parseable descriptions of *what to
//! schedule* — networks, hardware, whole experiments — plus the scenario
//! registry that names every zoo workload × platform × batch point.
//!
//! The paper evaluates SoMa over a workload × platform × batch matrix;
//! this crate turns every point of that matrix (and any custom point)
//! into **data**: a scheduling request becomes a textual artifact that
//! can be committed, diffed and replayed, instead of a recompile. All
//! three formats are hand-rolled line-oriented text in the style of
//! `soma_core`'s scheme format — no external parser dependencies — and
//! every parse error carries the 1-based line and column of the
//! offending token ([`SpecError`]).
//!
//! # The three formats
//!
//! **`soma-network v1`** ([`read_network`] / [`write_network`]) — a
//! layer-graph grammar that round-trips through
//! [`soma_model::NetworkBuilder`], one line per builder call:
//!
//! ```text
//! soma-network v1
//! name demo
//! precision 1
//! input x 1x3x32x32
//! conv stem from x cout=8 k=3x3 stride=2
//! vector act relu from stem
//! output act
//! end
//! ```
//!
//! **`soma-hardware v1`** ([`read_hardware`] / [`write_hardware`]) — a
//! named [`Preset`] plus ordered field overrides with
//! `HardwareConfigBuilder` semantics:
//!
//! ```text
//! soma-hardware v1
//! preset edge
//! buffer_mib 32
//! end
//! ```
//!
//! **`soma-experiment v1`** ([`read_experiment`] / [`write_experiment`])
//! — scenarios (or a workload × hardware × batch grid) × search
//! configuration × seed portfolio:
//!
//! ```text
//! soma-experiment v1
//! name fig2-edge
//! scenario fig2@edge/b1
//! seeds 2025
//! effort 0.01
//! end
//! ```
//!
//! # The scenario registry
//!
//! [`registry`] assigns the stable id `<workload>@<preset>/b<batch>`
//! (e.g. `resnet50@cloud/b16`) to every canonical zoo entry × platform
//! preset × batch combination, so harness outputs, benchmark files and
//! experiment specs all key their results the same way. See
//! [`registry::scenarios`], [`registry::lookup`] and
//! [`registry::scenario_id`].
//!
//! ```
//! use soma_spec::registry;
//!
//! let sc = registry::lookup("fig2@edge/b1").unwrap();
//! assert_eq!(sc.network().name(), "fig2");
//! assert_eq!(sc.hardware().peak_tops(), 16.0);
//! ```

pub mod error;
pub mod experiment;
pub mod fault;
pub mod hardware;
pub mod hash;
pub mod ledger;
pub mod network;
pub mod registry;

pub use error::SpecError;
pub use experiment::{read_experiment, write_experiment, ExperimentCell, ExperimentSpec};
pub use fault::{Fault, FaultConfig, FaultPlan};
pub use hardware::{read_hardware, write_hardware, HardwareSpec, HwField, Preset};
pub use hash::{cell_hash, cell_hash_hex, inline_scenario_id};
pub use ledger::{
    cell_key, quarantine_path, CompactStats, Ledger, LedgerFormat, LedgerHealth, LedgerRow,
    MigrateStats, JSONL_VERSION, LEDGER_VERSION, SHARDS,
};
pub use network::{read_network, write_network};
pub use registry::{scenario_id, scenarios, Scenario};
