//! The `soma-network v1` format: a layer-graph grammar that round-trips
//! through [`NetworkBuilder`].
//!
//! One line per builder call, sources referenced by name:
//!
//! ```text
//! soma-network v1
//! name fig2
//! precision 1
//! input in0 1x32x56x56
//! conv A from in0 cout=64 k=3x3 stride=1
//! conv B from A cout=64 k=3x3 stride=1
//! conv C from B cout=128 k=3x3 stride=1
//! output C
//! end
//! ```
//!
//! The full operator vocabulary (everything `examples/custom_network.rs`
//! can express):
//!
//! ```text
//! input   <name> <NxCxHxW>
//! conv    <name> from <src>... cout=<n> k=<kh>x<kw> stride=<s>
//! dwconv  <name> from <src> k=<k> stride=<s>
//! pool    <name> from <src> k=<k> stride=<s>
//! gpool   <name> from <src>
//! linear  <name> from <src>... cout=<n>
//! matmul  <name> from <streamed> <full> cout=<n> [dram=<bytes>]
//! eltwise <name> <add|mul> from <src>...
//! vector  <name> <relu|gelu|softmax|layernorm> from <src>
//! output  <name>...
//! ```
//!
//! `#` starts a comment; blank lines are ignored. `name` (and an optional
//! `precision`, default 1 byte/element) must precede the first graph line.
//! Shapes and derived quantities (ofmaps, weight bytes) are *inferred*
//! exactly as [`NetworkBuilder`] infers them — the grammar records builder
//! arguments, not derived state, so a spec cannot describe an inconsistent
//! network. `output` lines declare network outputs in order; multi-input
//! `conv`/`linear` lines concatenate channels, as in the builder.

use std::collections::HashMap;
use std::fmt::Write as _;

use soma_model::{EltOp, LayerKind, Network, NetworkBuilder, Src, VecOp};

use crate::error::{body_lines, SpecError, Token};

/// Parse-time bounds. The grammar rejects values past these with a
/// located error instead of letting the builder's shape/weight
/// arithmetic overflow or its invariants panic — a parser must never
/// panic, whatever the input (pinned by the fuzz suite in
/// `tests/fuzz_parsers.rs`). Every zoo network sits far inside them.
const MAX_DIM: u32 = 16_384;
const MAX_COUT: u32 = 16_384;
const MAX_KERNEL: u32 = 256;
const MAX_STRIDE: u32 = 256;
const MAX_PRECISION: u32 = 64;
const MAX_SOURCES: usize = 64;

fn elt_op_id(op: EltOp) -> &'static str {
    match op {
        EltOp::Add => "add",
        EltOp::Mul => "mul",
    }
}

fn vec_op_id(op: VecOp) -> &'static str {
    match op {
        VecOp::Relu => "relu",
        VecOp::Gelu => "gelu",
        VecOp::Softmax => "softmax",
        VecOp::LayerNorm => "layernorm",
    }
}

/// Writes a network to the `soma-network v1` text format such that
/// [`read_network`] reconstructs it bit-identically (graph, shapes,
/// stats).
///
/// # Panics
///
/// Panics if a layer name is empty, duplicated, or not token-safe
/// (contains whitespace, `=`, or starts with `#`) — names double as
/// source references in the format. Every generated-network source in
/// this workspace (the zoo, `NetworkBuilder` examples) satisfies this.
pub fn write_network(net: &Network) -> String {
    let mut seen = std::collections::HashSet::new();
    for l in net.layers() {
        assert!(
            !l.name.is_empty()
                && !l.name.contains(|c: char| c.is_whitespace() || c == '=')
                && !l.name.starts_with('#'),
            "layer name {:?} is not token-safe",
            l.name
        );
        assert!(seen.insert(&l.name), "duplicate layer name {:?}", l.name);
    }

    // Externals are anonymous in a `Network`; name them `in<i>`,
    // uniquified against layer names (the names only live in the text).
    let ext_names: Vec<String> = (0..net.externals().len())
        .map(|i| {
            let mut name = format!("in{i}");
            while seen.contains(&name) {
                name.push('_');
            }
            name
        })
        .collect();
    let src_name = |s: Src| match s {
        Src::Layer(id) => net.layer(id).name.clone(),
        Src::External(e) => ext_names[e.0 as usize].clone(),
    };

    let mut out = String::new();
    out.push_str("soma-network v1\n");
    let _ = writeln!(out, "name {}", net.name());
    let _ = writeln!(out, "precision {}", net.precision());
    for (i, shape) in net.externals().iter().enumerate() {
        let _ = writeln!(out, "input {} {shape}", ext_names[i]);
    }
    for (id, l) in net.iter() {
        let srcs = l.inputs.iter().map(|&s| src_name(s)).collect::<Vec<_>>().join(" ");
        match l.kind {
            LayerKind::Conv { kh, kw, stride } => {
                let _ = writeln!(
                    out,
                    "conv {} from {srcs} cout={} k={kh}x{kw} stride={stride}",
                    l.name, l.ofmap.c
                );
            }
            LayerKind::DwConv { k, stride } => {
                let _ = writeln!(out, "dwconv {} from {srcs} k={k} stride={stride}", l.name);
            }
            LayerKind::Pool { k, stride } => {
                let _ = writeln!(out, "pool {} from {srcs} k={k} stride={stride}", l.name);
            }
            LayerKind::GlobalPool => {
                let _ = writeln!(out, "gpool {} from {srcs}", l.name);
            }
            LayerKind::Linear => {
                let _ = writeln!(out, "linear {} from {srcs} cout={}", l.name, l.ofmap.c);
            }
            LayerKind::Matmul => {
                let _ = write!(out, "matmul {} from {srcs} cout={}", l.name, l.ofmap.c);
                if l.weight_bytes > 0 {
                    let _ = write!(out, " dram={}", l.weight_bytes);
                }
                out.push('\n');
            }
            LayerKind::Eltwise(op) => {
                let _ = writeln!(out, "eltwise {} {} from {srcs}", l.name, elt_op_id(op));
            }
            LayerKind::Vector(op) => {
                let _ = writeln!(out, "vector {} {} from {srcs}", l.name, vec_op_id(op));
            }
        }
        let _ = id;
    }
    if !net.outputs().is_empty() {
        let names =
            net.outputs().iter().map(|&o| net.layer(o).name.clone()).collect::<Vec<_>>().join(" ");
        let _ = writeln!(out, "output {names}");
    }
    out.push_str("end\n");
    out
}

/// Key=value arguments of one graph line, consumed left to right.
struct KvArgs<'a> {
    line: usize,
    line_col: usize,
    entries: Vec<(Token<'a>, &'a str)>, // (whole token, value text)
}

impl<'a> KvArgs<'a> {
    fn new(line: usize, line_col: usize, toks: &[Token<'a>]) -> Result<Self, SpecError> {
        let mut entries: Vec<(Token<'a>, &'a str)> = Vec::new();
        for &t in toks {
            let Some((key, val)) = t.text.split_once('=') else {
                return Err(t.err(format!("expected `key=value` argument, got `{}`", t.text)));
            };
            if entries.iter().any(|(e, _)| e.text.split_once('=').unwrap().0 == key) {
                return Err(t.err(format!("duplicate `{key}=` argument")));
            }
            if val.is_empty() {
                return Err(t.err(format!("empty value in `{}`", t.text)));
            }
            entries.push((t, val));
        }
        Ok(Self { line, line_col, entries })
    }

    fn take(&mut self, key: &str) -> Option<(Token<'a>, &'a str)> {
        let pos =
            self.entries.iter().position(|(t, _)| t.text.split_once('=').unwrap().0 == key)?;
        Some(self.entries.remove(pos))
    }

    /// Takes a required `key=` argument and parses its value.
    fn require<T: std::str::FromStr>(&mut self, key: &str, expected: &str) -> Result<T, SpecError> {
        let (tok, val) = self
            .take(key)
            .ok_or_else(|| SpecError::new(self.line, self.line_col, format!("missing `{key}=`")))?;
        val.parse().map_err(|_| tok.err(format!("`{key}=` expects {expected}, got `{val}`")))
    }

    /// Takes an optional `key=` argument and parses its value.
    fn optional<T: std::str::FromStr>(
        &mut self,
        key: &str,
        expected: &str,
    ) -> Result<Option<T>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some((tok, val)) => val
                .parse()
                .map(Some)
                .map_err(|_| tok.err(format!("`{key}=` expects {expected}, got `{val}`"))),
        }
    }

    /// Errors on any argument left unconsumed.
    fn finish(self) -> Result<(), SpecError> {
        match self.entries.first() {
            None => Ok(()),
            Some((t, _)) => Err(t.err(format!("unknown argument `{}`", t.text))),
        }
    }
}

/// Splits a graph line's tail at the `from` keyword: returns the source
/// tokens and the key=value tail.
fn split_from<'a>(
    after_name: &'a [Token<'a>],
    line: usize,
    col: usize,
) -> Result<(&'a [Token<'a>], &'a [Token<'a>]), SpecError> {
    let Some((first, rest)) = after_name.split_first() else {
        return Err(SpecError::new(line, col, "expected `from <source>...`"));
    };
    if first.text != "from" {
        return Err(first.err(format!("expected `from`, got `{}`", first.text)));
    }
    let n_srcs = rest.iter().take_while(|t| !t.text.contains('=')).count();
    if n_srcs == 0 {
        return Err(first.err("`from` needs at least one source"));
    }
    Ok((&rest[..n_srcs], &rest[n_srcs..]))
}

fn parse_shape(tok: &Token<'_>) -> Result<soma_model::FmapShape, SpecError> {
    let dims: Vec<u32> = tok
        .text
        .split('x')
        .map(|d| d.parse::<u32>().map_err(|_| tok.err("expected a shape like `1x3x224x224`")))
        .collect::<Result<_, _>>()?;
    let [n, c, h, w] = dims[..] else {
        return Err(tok.err(format!("a shape has 4 dimensions `NxCxHxW`, got {}", dims.len())));
    };
    if n == 0 || c == 0 || h == 0 || w == 0 {
        return Err(tok.err("shape dimensions must be non-zero"));
    }
    if [n, c, h, w].iter().any(|&d| d > MAX_DIM) {
        return Err(tok.err(format!("shape dimensions must be at most {MAX_DIM}")));
    }
    Ok(soma_model::FmapShape::new(n, c, h, w))
}

/// Parses a conv `k=<kh>x<kw>` kernel (a bare `k=<k>` means square).
fn parse_kernel(tok: &Token<'_>, val: &str) -> Result<(u32, u32), SpecError> {
    let parse = |s: &str| {
        s.parse::<u32>().ok().filter(|&k| k > 0 && k <= MAX_KERNEL).ok_or_else(|| {
            tok.err(format!("`k=` expects positive integers up to {MAX_KERNEL}, got `{val}`"))
        })
    };
    match val.split_once('x') {
        Some((h, w)) => Ok((parse(h)?, parse(w)?)),
        None => parse(val).map(|k| (k, k)),
    }
}

/// Reads a network from the `soma-network v1` text format.
///
/// # Errors
///
/// Returns a [`SpecError`] with the line and column of the first
/// offending token on any grammar violation: unknown directives or
/// operators, undefined or duplicate names, missing/unknown arguments,
/// malformed numbers or shapes, an output that is not a layer, or a
/// missing `name`/`end` line.
pub fn read_network(text: &str) -> Result<Network, SpecError> {
    let lines = body_lines(text, "soma-network v1")?;

    let mut name: Option<String> = None;
    let mut precision: Option<u32> = None;
    let mut builder: Option<NetworkBuilder> = None;
    let mut symbols: HashMap<String, Src> = HashMap::new();
    // Batch (`n`) of every named value, tracked so multi-source lines can
    // reject batch mismatches here — `Network::validate` treats them as
    // structural corruption and the builder would panic on them.
    let mut batch_of: HashMap<String, u32> = HashMap::new();
    let mut last_line = 1usize;
    let mut ended = false;

    for toks in &lines {
        let head = toks[0];
        last_line = head.line;
        if ended {
            return Err(head.err("content after `end`"));
        }
        match head.text {
            "name" => {
                let [_, value] = toks[..] else {
                    return Err(head.err("expected `name <network-name>`"));
                };
                if name.replace(value.text.to_string()).is_some() {
                    return Err(value.err("duplicate `name` line"));
                }
            }
            "precision" => {
                let [_, value] = toks[..] else {
                    return Err(head.err("expected `precision <bytes-per-element>`"));
                };
                let p: u32 = value.parse("a positive integer")?;
                if p == 0 {
                    return Err(value.err("precision must be at least one byte"));
                }
                if p > MAX_PRECISION {
                    return Err(value.err(format!("precision must be at most {MAX_PRECISION}")));
                }
                if builder.is_some() {
                    return Err(head.err("`precision` must precede the first graph line"));
                }
                if precision.replace(p).is_some() {
                    return Err(value.err("duplicate `precision` line"));
                }
            }
            "end" => ended = true,
            directive => {
                const GRAPH_DIRECTIVES: [&str; 10] = [
                    "input", "conv", "dwconv", "pool", "gpool", "linear", "matmul", "eltwise",
                    "vector", "output",
                ];
                if !GRAPH_DIRECTIVES.contains(&directive) {
                    return Err(head.err(format!("unknown directive `{directive}`")));
                }
                // Everything else is a graph line and needs the builder.
                if builder.is_none() {
                    let Some(n) = name.clone() else {
                        return Err(head.err("`name` must precede the first graph line"));
                    };
                    builder = Some(NetworkBuilder::new(n, precision.unwrap_or(1)));
                }
                let b = builder.as_mut().expect("just initialised");

                if directive == "output" {
                    let [_, outs @ ..] = &toks[..] else { unreachable!("head is toks[0]") };
                    if outs.is_empty() {
                        return Err(head.err("expected `output <layer-name>...`"));
                    }
                    for o in outs {
                        match symbols.get(o.text) {
                            Some(&Src::Layer(_)) => b.mark_output(symbols[o.text]),
                            Some(&Src::External(_)) => {
                                return Err(o.err(format!(
                                    "`{}` is an input, not a layer — only layers can be outputs",
                                    o.text
                                )))
                            }
                            None => return Err(o.err(format!("undefined name `{}`", o.text))),
                        }
                    }
                    continue;
                }

                // `<op> <name> ...` — validate and bind the new name.
                let Some(nm) = toks.get(1) else {
                    return Err(head.err(format!("expected `{directive} <name> ...`")));
                };
                if nm.text.contains('=') {
                    return Err(nm.err(format!("expected a name, got `{}`", nm.text)));
                }
                if symbols.contains_key(nm.text) {
                    return Err(nm.err(format!("duplicate name `{}`", nm.text)));
                }

                if directive == "input" {
                    let [_, _, shape] = toks[..] else {
                        return Err(head.err("expected `input <name> <NxCxHxW>`"));
                    };
                    let parsed = parse_shape(&shape)?;
                    let src = b.external(parsed);
                    symbols.insert(nm.text.to_string(), src);
                    batch_of.insert(nm.text.to_string(), parsed.n);
                    continue;
                }

                // Operator lines: optional op token, `from`, sources, kv.
                let (op_tok, tail) = match directive {
                    "eltwise" | "vector" => {
                        let Some(op) = toks.get(2) else {
                            return Err(
                                head.err(format!("expected `{directive} <name> <op> from ...`"))
                            );
                        };
                        (Some(op), &toks[3..])
                    }
                    _ => (None, &toks[2..]),
                };
                let (src_toks, kv_toks) = split_from(tail, head.line, nm.col + nm.text.len())?;
                if src_toks.len() > MAX_SOURCES {
                    return Err(src_toks[MAX_SOURCES]
                        .err(format!("a line takes at most {MAX_SOURCES} sources")));
                }
                let mut srcs = Vec::with_capacity(src_toks.len());
                for s in src_toks {
                    let Some(&src) = symbols.get(s.text) else {
                        return Err(s.err(format!("undefined name `{}`", s.text)));
                    };
                    // Mirror `Network::validate`'s batch invariant at
                    // parse time (the builder would panic on it later):
                    // every *layer* source must share the batch the new
                    // layer inherits from its first source. Externals
                    // are exempt, exactly as in `validate` — a batch-1
                    // external operand against a batch-N stream is a
                    // valid builder network and must keep round-tripping.
                    let n = batch_of[s.text];
                    let n0 = batch_of[src_toks[0].text];
                    if matches!(src, Src::Layer(_)) && n != n0 {
                        return Err(s.err(format!(
                            "batch mismatch: `{}` has batch {n}, but `{}` has batch {n0}",
                            s.text, src_toks[0].text
                        )));
                    }
                    srcs.push(src);
                }
                let mut kv = KvArgs::new(head.line, head.col, kv_toks)?;
                let one_src = |srcs: &[Src]| -> Result<Src, SpecError> {
                    if srcs.len() == 1 {
                        Ok(srcs[0])
                    } else {
                        Err(src_toks[1].err(format!("`{directive}` takes exactly one source")))
                    }
                };

                let src = match directive {
                    "conv" => {
                        let cout: u32 = kv.require("cout", "a positive integer")?;
                        let (ktok, kval) = kv
                            .take("k")
                            .ok_or_else(|| SpecError::new(head.line, head.col, "missing `k=`"))?;
                        let (kh, kw) = parse_kernel(&ktok, kval)?;
                        let stride: u32 = kv.require("stride", "a positive integer")?;
                        if cout == 0 || stride == 0 {
                            return Err(head.err("`cout=`/`stride=` must be positive"));
                        }
                        if cout > MAX_COUT || stride > MAX_STRIDE {
                            return Err(head.err(format!(
                                "`cout=` must be at most {MAX_COUT} and `stride=` at most \
                                 {MAX_STRIDE}"
                            )));
                        }
                        b.conv_rect(nm.text, &srcs, cout, kh, kw, stride)
                    }
                    "dwconv" | "pool" => {
                        let k: u32 = kv.require("k", "a positive integer")?;
                        let stride: u32 = kv.require("stride", "a positive integer")?;
                        if k == 0 || stride == 0 {
                            return Err(head.err("`k=`/`stride=` must be positive"));
                        }
                        if k > MAX_KERNEL || stride > MAX_STRIDE {
                            return Err(head.err(format!(
                                "`k=` must be at most {MAX_KERNEL} and `stride=` at most \
                                 {MAX_STRIDE}"
                            )));
                        }
                        let input = one_src(&srcs)?;
                        if directive == "dwconv" {
                            b.dwconv(nm.text, input, k, stride)
                        } else {
                            b.pool(nm.text, input, k, stride)
                        }
                    }
                    "gpool" => b.global_pool(nm.text, one_src(&srcs)?),
                    "linear" => {
                        let cout: u32 = kv.require("cout", "a positive integer")?;
                        if cout == 0 || cout > MAX_COUT {
                            return Err(head.err(format!("`cout=` must be in 1..={MAX_COUT}")));
                        }
                        b.linear(nm.text, &srcs, cout)
                    }
                    "matmul" => {
                        let cout: u32 = kv.require("cout", "a positive integer")?;
                        let dram: u64 = kv.optional("dram", "a byte count")?.unwrap_or(0);
                        if cout == 0 || cout > MAX_COUT {
                            return Err(head.err(format!("`cout=` must be in 1..={MAX_COUT}")));
                        }
                        let [streamed, full] = srcs[..] else {
                            return Err(src_toks[0].err(
                                "`matmul` takes exactly two sources: `from <streamed> <full>`",
                            ));
                        };
                        b.matmul(nm.text, streamed, full, cout, dram)
                    }
                    "eltwise" => {
                        let op_tok = op_tok.expect("eltwise parsed an op token");
                        let op = match op_tok.text {
                            "add" => EltOp::Add,
                            "mul" => EltOp::Mul,
                            other => {
                                return Err(op_tok.err(format!(
                                    "unknown eltwise op `{other}` (expected add|mul)"
                                )))
                            }
                        };
                        if srcs.len() < 2 {
                            return Err(src_toks[0].err("`eltwise` needs at least two sources"));
                        }
                        b.eltwise(nm.text, op, &srcs)
                    }
                    "vector" => {
                        let op_tok = op_tok.expect("vector parsed an op token");
                        let op = match op_tok.text {
                            "relu" => VecOp::Relu,
                            "gelu" => VecOp::Gelu,
                            "softmax" => VecOp::Softmax,
                            "layernorm" => VecOp::LayerNorm,
                            other => {
                                return Err(op_tok.err(format!(
                                "unknown vector op `{other}` (expected relu|gelu|softmax|layernorm)"
                            )))
                            }
                        };
                        b.vector(nm.text, op, one_src(&srcs)?)
                    }
                    other => unreachable!("directive `{other}` was whitelisted above"),
                };
                kv.finish()?;
                symbols.insert(nm.text.to_string(), src);
                // Every layer's ofmap batch equals its first source's.
                batch_of.insert(nm.text.to_string(), batch_of[src_toks[0].text]);
            }
        }
    }

    if !ended {
        return Err(SpecError::new(last_line + 1, 1, "missing `end` line"));
    }
    match builder {
        Some(b) => Ok(b.finish()),
        None => Err(SpecError::new(
            last_line,
            1,
            if name.is_none() { "missing `name` line" } else { "network has no layers" },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn fig2_round_trips_through_text() {
        let net = zoo::fig2(2);
        let text = write_network(&net);
        let back = read_network(&text).expect("canonical text parses");
        assert_eq!(back.name(), net.name());
        assert_eq!(back.precision(), net.precision());
        assert_eq!(back.externals(), net.externals());
        assert_eq!(back.layers(), net.layers());
        assert_eq!(back.outputs(), net.outputs());
    }

    #[test]
    fn hand_written_spec_matches_builder() {
        let text = "soma-network v1\n\
                    name demo\n\
                    input x 1x3x32x32   # image\n\
                    conv c from x cout=8 k=3 stride=2\n\
                    vector r relu from c\n\
                    output r\n\
                    end\n";
        let net = read_network(text).unwrap();
        let mut b = NetworkBuilder::new("demo", 1);
        let x = b.external(soma_model::FmapShape::new(1, 3, 32, 32));
        let c = b.conv("c", &[x], 8, 3, 2);
        let r = b.vector("r", VecOp::Relu, c);
        b.mark_output(r);
        let expect = b.finish();
        assert_eq!(net.layers(), expect.layers());
        assert_eq!(net.outputs(), expect.outputs());
    }

    #[test]
    fn errors_carry_line_and_column() {
        // Unknown directive on line 3, column 1.
        let e = read_network("soma-network v1\nname d\nfrobnicate z\nend\n").unwrap_err();
        assert_eq!((e.line, e.col), (3, 1));
        // Undefined source name: line 4, column of `y`.
        let text =
            "soma-network v1\nname d\ninput x 1x1x8x8\nconv c from y cout=1 k=1 stride=1\nend\n";
        let e = read_network(text).unwrap_err();
        assert_eq!((e.line, e.col), (4, 13));
        assert!(e.to_string().contains("undefined name `y`"), "{e}");
    }

    #[test]
    fn missing_argument_is_reported() {
        let text = "soma-network v1\nname d\ninput x 1x1x8x8\nconv c from x k=1 stride=1\nend\n";
        let e = read_network(text).unwrap_err();
        assert!(e.to_string().contains("missing `cout=`"), "{e}");
        assert_eq!(e.line, 4);
    }

    #[test]
    fn output_must_be_a_layer() {
        let text = "soma-network v1\nname d\ninput x 1x1x8x8\nconv c from x cout=1 k=1 stride=1\noutput x\nend\n";
        let e = read_network(text).unwrap_err();
        assert_eq!((e.line, e.col), (5, 8));
    }
}
