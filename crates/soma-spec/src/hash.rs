//! Stable content hashing for experiment cells — the run ledger's cache
//! key.
//!
//! A ledger row may only be reused when *everything* that determines a
//! cell's search outcome is unchanged: the scenario (network + batch via
//! its id), the fully resolved hardware configuration (so an override
//! like `buffer_mib=16` produces a different key than the bare preset),
//! the complete [`SearchConfig`], the seed portfolio, and the engine
//! version ([`soma_search::ENGINE_VERSION`], bumped whenever search
//! semantics change). The hash is an FNV-1a 64 over a canonical
//! `key=value` rendering of all of those — deterministic across runs,
//! processes and platforms, and independent of struct layout.
//!
//! Floats render through Rust's shortest-round-trip `Display`, so two
//! configurations hash equally iff their values are bit-equal (modulo
//! `-0.0`/`0.0`, which never occur in configs).

use std::fmt::Write as _;

use soma_arch::HardwareConfig;
use soma_search::SearchConfig;

/// FNV-1a 64-bit over a byte string.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Canonical `key=value` rendering of a resolved hardware configuration:
/// every field, in declaration order. Two configurations fingerprint
/// equally iff they are `==`.
pub fn hardware_fingerprint(hw: &HardwareConfig) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "name={};freq_hz={};cores={};macs_per_cycle={};kc_parallel={};spatial_parallel={};\
         vector_lanes={};buffer_bytes={};gbuf_bytes_per_cycle={};dram_bytes_per_cycle={};\
         wl0_bytes={};al0_bytes={};mac_pj={};vector_pj={};gbuf_pj_per_byte={};l0_pj_per_byte={};\
         dram_read_pj_per_byte={};dram_write_pj_per_byte={}",
        hw.name,
        hw.freq_hz,
        hw.cores,
        hw.macs_per_cycle,
        hw.kc_parallel,
        hw.spatial_parallel,
        hw.vector_lanes,
        hw.buffer_bytes,
        hw.gbuf_bytes_per_cycle,
        hw.dram_bytes_per_cycle,
        hw.wl0_bytes,
        hw.al0_bytes,
        hw.energy.mac_pj,
        hw.energy.vector_pj,
        hw.energy.gbuf_pj_per_byte,
        hw.energy.l0_pj_per_byte,
        hw.energy.dram_read_pj_per_byte,
        hw.energy.dram_write_pj_per_byte,
    );
    s
}

/// Canonical `key=value` rendering of a complete search configuration.
pub fn config_fingerprint(cfg: &SearchConfig) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "energy_exp={};delay_exp={};seed={};effort={};t0={};alpha={};allocator_step={};\
         max_allocator_iters={};stage1_cap={};stage2_cap={};link_cuts={};time_budget={}",
        cfg.weights.energy_exp,
        cfg.weights.delay_exp,
        cfg.seed,
        cfg.effort,
        cfg.t0,
        cfg.alpha,
        cfg.allocator_step,
        cfg.max_allocator_iters,
        cfg.stage1_cap,
        cfg.stage2_cap,
        u8::from(cfg.link_cuts),
        cfg.stage_time_budget_secs,
    );
    s
}

/// The content hash of one experiment cell under one search
/// configuration, seed portfolio and engine version.
pub fn cell_hash(
    cell_id: &str,
    hw: &HardwareConfig,
    cfg: &SearchConfig,
    seeds: &[u64],
    engine_version: &str,
) -> u64 {
    let mut s = String::new();
    let _ = write!(
        s,
        "cell={cell_id}\u{1f}hw={}\u{1f}cfg={}\u{1f}seeds=",
        hardware_fingerprint(hw),
        config_fingerprint(cfg)
    );
    for (i, seed) in seeds.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{seed}");
    }
    let _ = write!(s, "\u{1f}engine={engine_version}");
    fnv1a(s.bytes())
}

/// The scenario id of an **inline** scheduling request: a network that
/// arrives as spec text (`soma-network v1`) instead of a registry id,
/// as the `soma-serve` protocol allows. Registry ids identify their
/// network by construction; an inline id must do the same, so it embeds
/// a content hash of the network text — two requests share a
/// [`cell_hash`] (and therefore a ledger row) iff their network text,
/// hardware, configuration and seeds are all identical.
pub fn inline_scenario_id(network_text: &str, hw: &HardwareConfig) -> String {
    format!("inline-{:016x}@{}", fnv1a(network_text.bytes()), hw.name)
}

/// [`cell_hash`] rendered as the 16-hex-digit ledger key.
pub fn cell_hash_hex(
    cell_id: &str,
    hw: &HardwareConfig,
    cfg: &SearchConfig,
    seeds: &[u64],
    engine_version: &str,
) -> String {
    format!("{:016x}", cell_hash(cell_id, hw, cfg, seeds, engine_version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (HardwareConfig, SearchConfig) {
        (HardwareConfig::edge(), SearchConfig::default())
    }

    #[test]
    fn hash_is_deterministic() {
        let (hw, cfg) = base();
        let a = cell_hash("fig2@edge/b1", &hw, &cfg, &[1, 2], "e1");
        let b = cell_hash("fig2@edge/b1", &hw, &cfg, &[1, 2], "e1");
        assert_eq!(a, b);
        assert_eq!(cell_hash_hex("fig2@edge/b1", &hw, &cfg, &[1, 2], "e1"), format!("{a:016x}"));
    }

    #[test]
    fn every_input_perturbs_the_hash() {
        let (hw, cfg) = base();
        let k = cell_hash("fig2@edge/b1", &hw, &cfg, &[1], "e1");
        assert_ne!(k, cell_hash("fig2@edge/b4", &hw, &cfg, &[1], "e1"), "cell id");
        assert_ne!(k, cell_hash("fig2@edge/b1", &HardwareConfig::cloud(), &cfg, &[1], "e1"), "hw");
        let fat = HardwareConfig::builder().like(&hw).buffer_mib(16).build();
        assert_ne!(k, cell_hash("fig2@edge/b1", &fat, &cfg, &[1], "e1"), "hw override");
        let tuned = SearchConfig { effort: 0.5, ..cfg.clone() };
        assert_ne!(k, cell_hash("fig2@edge/b1", &hw, &tuned, &[1], "e1"), "config");
        assert_ne!(k, cell_hash("fig2@edge/b1", &hw, &cfg, &[2], "e1"), "seeds");
        assert_ne!(k, cell_hash("fig2@edge/b1", &hw, &cfg, &[1, 2], "e1"), "seed count");
        assert_ne!(k, cell_hash("fig2@edge/b1", &hw, &cfg, &[1], "e2"), "engine version");
    }

    #[test]
    fn seed_list_order_matters() {
        // The envelope best tie-breaks by list order, so [1,2] and [2,1]
        // are different experiments.
        let (hw, cfg) = base();
        assert_ne!(
            cell_hash("fig2@edge/b1", &hw, &cfg, &[1, 2], "e1"),
            cell_hash("fig2@edge/b1", &hw, &cfg, &[2, 1], "e1"),
        );
    }

    #[test]
    fn thread_policy_never_perturbs_the_hash() {
        // `Parallelism` changes wall-clock only — outcomes are
        // bit-identical across thread counts — so it is deliberately not
        // an input to `cell_hash`: a ledger warmed on a laptop stays
        // valid on a 64-core box. Specs differing only in their
        // `threads` directive must produce identical cache keys.
        use soma_search::Parallelism;
        let parse = |threads: &str| {
            crate::read_experiment(&format!(
                "soma-experiment v1\nname x\nscenario fig2@edge/b1\nseeds 7 8\n{threads}end\n"
            ))
            .unwrap()
        };
        let base = parse("");
        assert_eq!(base.parallelism, Parallelism::Auto);
        let key = |spec: &crate::ExperimentSpec| {
            let cell = &spec.cells()[0];
            cell_hash(&cell.id, &cell.hw, &spec.config, &spec.seeds, "e1")
        };
        for threads in ["threads seq\n", "threads 4\n", "threads 8\n", "threads auto\n"] {
            let spec = parse(threads);
            assert_eq!(key(&spec), key(&base), "`{}` changed the cache key", threads.trim());
        }
    }

    #[test]
    fn inline_ids_track_network_text_and_hardware() {
        let (hw, _) = base();
        let a = inline_scenario_id("soma-network v1\nname a\n...", &hw);
        assert_eq!(a, inline_scenario_id("soma-network v1\nname a\n...", &hw), "deterministic");
        assert_ne!(a, inline_scenario_id("soma-network v1\nname b\n...", &hw), "text perturbs");
        let cloud = HardwareConfig::cloud();
        assert_ne!(a, inline_scenario_id("soma-network v1\nname a\n...", &cloud), "hw perturbs");
        assert!(a.starts_with("inline-") && a.ends_with("@edge-16tops"), "{a}");
    }

    #[test]
    fn fingerprints_cover_equality() {
        let (hw, cfg) = base();
        assert_eq!(hardware_fingerprint(&hw), hardware_fingerprint(&HardwareConfig::edge()));
        assert_ne!(hardware_fingerprint(&hw), hardware_fingerprint(&HardwareConfig::cloud()));
        assert_eq!(config_fingerprint(&cfg), config_fingerprint(&SearchConfig::default()));
    }
}
