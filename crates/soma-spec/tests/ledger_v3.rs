//! Integration wall for ledger format v3: **observers never write,
//! resume work is O(cells-missing), and migration is lossless.**
//!
//! Three walls:
//!
//! * the **concurrent-observer pin**: a writer thread appends to a
//!   binary ledger while a follow-style observer reloads it read-only
//!   in a loop. Every shard file must only ever *grow* — each
//!   observation is a byte-prefix of the next — and no index sidecar
//!   may appear, because the only process that could have written one
//!   is the observer. This is the regression test for the live
//!   corruption hazard where `watch --follow` used a repairing load
//!   against a campaign mid-append;
//! * the **100k-cell resume pin**: an interrupted synthetic campaign is
//!   resumed against its index sidecar, and the resume probe — lookup
//!   plus meta fields for every one of 100 000 cells — must decode
//!   exactly **zero** outcome payloads. Payload work is proportional to
//!   the cells actually searched, never to campaign size;
//! * the **migration round trip** (proptest): v2 JSONL -> v3 binary ->
//!   JSONL is a byte identity for any synthetic campaign, so switching
//!   formats can never lose or reorder a row.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use soma_search::synthetic_outcome;
use soma_spec::ledger::{Ledger, LedgerRow, SHARDS};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("soma-ledger-v3");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

fn wipe(path: &Path) {
    if path.is_dir() {
        let _ = fs::remove_dir_all(path);
    } else {
        let _ = fs::remove_file(path);
    }
}

/// A synthetic row whose 16-hex hash spreads across all shards.
fn synth_row(i: u64) -> LedgerRow {
    let hash = format!("{:016x}", i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    LedgerRow::from_parts(&hash, &format!("cell-{i}"), "wl", "edge", 1, synthetic_outcome(i, 4))
}

/// Every byte of every shard file, keyed by shard number. Missing
/// shards read as empty.
fn shard_bytes(dir: &Path) -> Vec<Vec<u8>> {
    (0..SHARDS)
        .map(|s| fs::read(dir.join(format!("shard-{s:x}.bin"))).unwrap_or_default())
        .collect()
}

/// The headline regression test: a follow-style observer reloading a
/// live ledger must never mutate its bytes — not by torn-tail repair,
/// not by compaction, not by index writes.
#[test]
fn readonly_observers_never_mutate_a_live_ledger() {
    let dir = tmp("observer.ledger");
    wipe(&dir);
    let done = Arc::new(AtomicBool::new(false));
    let writer_done = Arc::clone(&done);
    let writer_dir = dir.clone();
    let writer = std::thread::spawn(move || {
        let mut ledger = Ledger::load(&writer_dir).expect("writer load");
        for i in 0..200u64 {
            ledger.append(synth_row(i)).expect("append");
            if i % 16 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        writer_done.store(true, Ordering::Release);
    });

    let index = dir.join("index.bin");
    let mut last = vec![Vec::new(); SHARDS];
    let mut last_len = 0usize;
    let mut observations = 0u32;
    while !done.load(Ordering::Acquire) || observations == 0 {
        // Snapshot, observe, snapshot again: whatever the load did to
        // the files must be indistinguishable from "nothing" — the only
        // legal byte change between observations is the writer's
        // append-only growth, so every earlier snapshot must be a
        // prefix of every later one.
        let ledger = Ledger::load_readonly(&dir).expect("observer load");
        assert!(ledger.readonly(), "observer loads are marked read-only");
        let now = shard_bytes(&dir);
        for (s, (prev, cur)) in last.iter().zip(&now).enumerate() {
            assert!(
                cur.len() >= prev.len() && &cur[..prev.len()] == prev.as_slice(),
                "shard {s:x} was rewritten under an observer (prefix property broken)"
            );
        }
        assert!(
            !index.exists(),
            "an index sidecar appeared, and only the observer could have written it"
        );
        assert!(ledger.len() >= last_len, "an observer saw rows disappear");
        last = now;
        last_len = ledger.len();
        observations += 1;
    }
    writer.join().expect("writer thread");

    // The final observation sees the complete campaign, still without
    // ever having repaired or indexed anything.
    let ledger = Ledger::load_readonly(&dir).expect("final observer load");
    assert_eq!(ledger.len(), 200);
    assert!(ledger.health().is_clean());
    assert!(!index.exists());
    assert!(observations > 1, "the observer raced the writer at least twice");

    // A torn tail mid-append must also survive observation untouched:
    // damage the last shard byte-for-byte like a crashed writer would,
    // then prove the observer tolerates it in memory only.
    let shard = dir.join("shard-0.bin");
    let mut bytes = fs::read(&shard).expect("shard bytes");
    bytes.extend_from_slice(b"FRM3\xff\xff\xff\x7f");
    fs::write(&shard, &bytes).expect("tear the tail");
    let ledger = Ledger::load_readonly(&dir).expect("observer load over torn tail");
    assert!(ledger.health().truncated, "the torn tail is visible in health");
    assert_eq!(fs::read(&shard).expect("shard bytes"), bytes, "the torn tail was not repaired");
    wipe(&dir);
}

/// Resuming an interrupted 100k-cell campaign performs payload work
/// proportional to the missing cells only: the index-backed load plus
/// a lookup-and-meta probe of every cell decodes zero payloads.
#[test]
fn resume_of_100k_cells_decodes_only_whats_missing() {
    const CELLS: u64 = 100_000;
    const MISSING: u64 = 7;
    let dir = tmp("resume.ledger");
    wipe(&dir);

    // The interrupted campaign: every cell but the last few landed.
    let rows: Vec<LedgerRow> = (0..CELLS - MISSING).map(synth_row).collect();
    let hashes: Vec<String> = (0..CELLS).map(|i| synth_row(i).hash).collect();
    let mut ledger = Ledger::load(&dir).expect("campaign load");
    ledger.append_all(rows).expect("bulk append");
    ledger.sync_index().expect("index sync");
    drop(ledger);

    // The resume: trust the index, probe every cell, classify
    // hits/misses. This is exactly what the lab orchestrator's warm
    // path does — and it must not pay for the 99 993 finished cells.
    let mut ledger = Ledger::load(&dir).expect("resume load");
    assert_eq!(ledger.len() as u64, CELLS - MISSING);
    let mut missing = Vec::new();
    let mut meta_sum = 0.0f64;
    for hash in &hashes {
        match ledger.lookup(hash) {
            Some(row) => meta_sum += row.best_cost,
            None => missing.push(hash.clone()),
        }
    }
    assert_eq!(missing.len() as u64, MISSING);
    assert!(meta_sum.is_finite());
    assert_eq!(
        ledger.outcome_decodes(),
        0,
        "an index-backed resume probe must decode zero payloads for {} hit cells",
        CELLS - MISSING
    );

    // Searching the missing cells appends them; decode cost stays at
    // the handful of payloads the campaign actually touched.
    for i in CELLS - MISSING..CELLS {
        ledger.append(synth_row(i)).expect("resume append");
    }
    ledger.sync_index().expect("index sync");
    assert_eq!(ledger.len() as u64, CELLS);
    assert_eq!(ledger.outcome_decodes(), 0, "appending resident rows decodes nothing");
    let spot = ledger.lookup(&hashes[0]).expect("first cell");
    assert!(spot.outcome().is_some());
    assert_eq!(ledger.outcome_decodes(), 1, "one explicit decode costs exactly one");
    wipe(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// v2 JSONL -> v3 binary -> JSONL is a byte identity: `to_line` is
    /// a fixed point through the binary format for any synthetic
    /// campaign shape.
    #[test]
    fn migration_round_trips_to_identical_jsonl(seed in any::<u64>()) {
        let n = 1 + (seed % 37);
        let jsonl = tmp(&format!("round-{seed}.jsonl"));
        let binary = tmp(&format!("round-{seed}.ledger"));
        let back = tmp(&format!("round-back-{seed}.jsonl"));
        wipe(&jsonl);
        wipe(&binary);
        wipe(&back);

        let mut ledger = Ledger::load(&jsonl).expect("jsonl load");
        for i in 0..n {
            ledger.append(synth_row(seed.wrapping_add(i))).expect("append");
        }
        drop(ledger);

        let fwd = Ledger::migrate(&jsonl, &binary).expect("jsonl -> binary");
        prop_assert_eq!(fwd.rows as u64, n);
        let rev = Ledger::migrate(&binary, &back).expect("binary -> jsonl");
        prop_assert_eq!(rev.rows as u64, n);

        let original = fs::read(&jsonl).expect("original bytes");
        let round = fs::read(&back).expect("round-tripped bytes");
        prop_assert_eq!(original, round);

        wipe(&jsonl);
        wipe(&binary);
        wipe(&back);
    }
}
