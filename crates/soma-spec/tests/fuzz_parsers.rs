//! Fuzz-style property tests over the three spec parsers: **no input —
//! byte soup, line soup, or mutated valid specs — may panic**, and every
//! rejection must carry a plausible 1-based line/column location.
//!
//! The generators are deterministic (seed-driven through the vendored
//! proptest), so failures reproduce. Three input distributions:
//!
//! * **byte soup** — arbitrary characters including control bytes,
//!   newlines, `#`, multi-byte UTF-8;
//! * **line soup** — lines assembled from the grammars' own token pools
//!   (directives, numbers, `key=value`s, names), which reaches deep
//!   parser states (builder calls, shape math) that raw bytes never hit;
//! * **mutated valid specs** — a correct spec with one line dropped,
//!   duplicated, or spliced from the token pool.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soma_spec::{read_experiment, read_hardware, read_network, SpecError};

/// Asserts the error location is plausible for `text`.
fn check_located(text: &str, e: &SpecError) -> Result<(), proptest::test_runner::TestCaseError> {
    let n_lines = text.lines().count();
    prop_assert!(e.line >= 1, "line {} not 1-based: {e} (input {text:?})", e.line);
    prop_assert!(e.col >= 1, "col {} not 1-based: {e} (input {text:?})", e.col);
    // `missing end` errors point one past the last body line.
    prop_assert!(
        e.line <= n_lines.max(1) + 1,
        "line {} past input ({n_lines} lines): {e} (input {text:?})",
        e.line
    );
    prop_assert!(!e.msg.is_empty(), "empty message");
    Ok(())
}

/// Runs all three parsers over one input; success or a located error are
/// both fine, anything else (panic, unwind) fails the test.
fn check_all(text: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    if let Err(e) = read_network(text) {
        check_located(text, &e)?;
    }
    if let Err(e) = read_hardware(text) {
        check_located(text, &e)?;
    }
    if let Err(e) = read_experiment(text) {
        check_located(text, &e)?;
    }
    Ok(())
}

fn byte_soup(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(0..400usize);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        match rng.gen_range(0..10u32) {
            0 => s.push('\n'),
            1 => s.push(' '),
            2 => s.push('#'),
            3 => s.push(rng.gen_range(0u8..32) as char),
            4 => s.push('✓'),
            _ => s.push(char::from(rng.gen_range(0x21u8..0x7f))),
        }
    }
    s
}

/// Token pool spanning all three grammars plus junk.
const TOKENS: &[&str] = &[
    "soma-network",
    "soma-hardware",
    "soma-experiment",
    "v1",
    "v2",
    "name",
    "precision",
    "input",
    "conv",
    "dwconv",
    "pool",
    "gpool",
    "linear",
    "matmul",
    "eltwise",
    "vector",
    "output",
    "from",
    "add",
    "mul",
    "relu",
    "softmax",
    "end",
    "preset",
    "edge",
    "cloud",
    "custom",
    "tops",
    "cores",
    "buffer_mib",
    "buffer_bytes",
    "dram_gbps",
    "freq_hz",
    "scenario",
    "workload",
    "hardware",
    "batch",
    "seeds",
    "effort",
    "weights",
    "t0",
    "alpha",
    "allocator_step",
    "max_allocator_iters",
    "stage1_cap",
    "stage2_cap",
    "link_cuts",
    "time_budget",
    "fig2",
    "fig4",
    "resnet50",
    "fig2@edge/b1",
    "resnet50@cloud/b4",
    "nonsense@warp/b0",
    "x",
    "a",
    "b",
    "1x3x32x32",
    "0x0x0x0",
    "4294967295x1x1x1",
    "cout=8",
    "cout=0",
    "cout=4294967295",
    "k=3x3",
    "k=0",
    "k=99999",
    "stride=1",
    "stride=0",
    "dram=18446744073709551615",
    "buffer_mib=0",
    "tops=NaN",
    "tops=inf",
    "tops=-1",
    "0",
    "1",
    "64",
    "-3",
    "1e308",
    "NaN",
    "inf",
    "18446744073709551616",
    "0.0",
    "#",
    "# comment",
    "=",
    "==",
    "from=",
];

fn line_soup(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::new();
    // Bias towards a valid header so the body parsers actually run.
    match rng.gen_range(0..4u32) {
        0 => s.push_str("soma-network v1\n"),
        1 => s.push_str("soma-hardware v1\n"),
        2 => s.push_str("soma-experiment v1\n"),
        _ => {}
    }
    for _ in 0..rng.gen_range(0..14usize) {
        let toks = rng.gen_range(0..6usize);
        for t in 0..toks {
            if t > 0 {
                s.push(' ');
            }
            s.push_str(TOKENS[rng.gen_range(0..TOKENS.len())]);
        }
        s.push('\n');
    }
    if rng.gen_bool(0.7) {
        s.push_str("end\n");
    }
    s
}

/// A correct spec for each grammar, to mutate from.
const VALID: &[&str] = &[
    "soma-network v1\nname demo\nprecision 1\ninput x 1x3x32x32\n\
     conv stem from x cout=8 k=3x3 stride=2\nvector act relu from stem\n\
     eltwise mix add from stem act\noutput mix\nend\n",
    "soma-hardware v1\npreset edge\nbuffer_mib 32\ndram_gbps 32\nname fat-edge\nend\n",
    "soma-experiment v1\nname grid\nscenario fig2@edge/b1\nworkload fig2 fig4\n\
     hardware cloud buffer_mib=16\nbatch 1 4\nseeds 7 8\neffort 0.01\nweights 1 1\nend\n",
];

fn mutated_valid(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = VALID[rng.gen_range(0..VALID.len())];
    let mut lines: Vec<String> = base.lines().map(str::to_string).collect();
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..4u32) {
            0 if lines.len() > 1 => {
                let i = rng.gen_range(0..lines.len());
                lines.remove(i);
            }
            1 => {
                let i = rng.gen_range(0..lines.len());
                let line = lines[i].clone();
                lines.insert(i, line);
            }
            2 => {
                let i = rng.gen_range(0..lines.len());
                lines[i] = TOKENS[rng.gen_range(0..TOKENS.len())].to_string();
            }
            _ => {
                let i = rng.gen_range(0..lines.len());
                let extra = TOKENS[rng.gen_range(0..TOKENS.len())];
                let line = format!("{} {extra}", lines[i]);
                lines[i] = line;
            }
        }
    }
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary byte soup: parse, never panic; errors are located.
    #[test]
    fn parsers_survive_byte_soup(seed in any::<u64>()) {
        check_all(&byte_soup(seed))?;
    }

    /// Grammar-token line soup: reaches deep parser states (builder
    /// calls, shape/weight math) without panicking.
    #[test]
    fn parsers_survive_line_soup(seed in any::<u64>()) {
        check_all(&line_soup(seed))?;
    }

    /// Valid specs with lines dropped/duplicated/spliced.
    #[test]
    fn parsers_survive_mutated_valid_specs(seed in any::<u64>()) {
        check_all(&mutated_valid(seed))?;
    }
}

/// Directed regression cases for panics the bounds checks now reject:
/// each used to reach a builder assert or debug-overflow.
#[test]
fn hostile_specs_error_instead_of_panicking() {
    let cases: &[&str] = &[
        // Batch mismatch across *layer* sources (used to panic
        // `Network::validate` in the builder's `finish`). Externals are
        // exempt, as in `validate` — see
        // `external_batch_mismatch_is_valid_and_round_trips`.
        "soma-network v1\nname x\ninput a 1x3x8x8\ninput b 2x3x8x8\n\
         conv la from a cout=4 k=1x1 stride=1\nconv lb from b cout=4 k=1x1 stride=1\n\
         conv c from la lb cout=4 k=3x3 stride=1\nend\n",
        "soma-network v1\nname x\ninput a 1x3x8x8\ninput b 2x3x8x8\n\
         conv la from a cout=4 k=1x1 stride=1\nconv lb from b cout=4 k=1x1 stride=1\n\
         eltwise c add from la lb\nend\n",
        "soma-network v1\nname x\ninput a 1x3x8x8\ninput b 2x3x8x8\n\
         conv la from a cout=4 k=1x1 stride=1\nconv lb from b cout=4 k=1x1 stride=1\n\
         matmul c from la lb cout=4\nend\n",
        // First source an external: the layer inherits its batch, so a
        // conflicting *layer* source must still be rejected.
        "soma-network v1\nname x\ninput a 1x3x8x8\ninput b 2x3x8x8\n\
         conv lb from b cout=3 k=1x1 stride=1\neltwise c add from a lb\nend\n",
        // Debug-overflow in weight-byte math (u32::MAX everywhere).
        "soma-network v1\nname x\ninput a 1x3x8x8\n\
         conv c from a cout=4294967295 k=4294967295x4294967295 stride=1\nend\n",
        "soma-network v1\nname x\nprecision 4294967295\ninput a 1x3x8x8\n\
         linear c from a cout=4294967295\nend\n",
        // Oversized shapes.
        "soma-network v1\nname x\ninput a 16385x16385x16385x16385\nend\n",
        // Non-finite / zero hardware rates (used to poison the builder).
        "soma-hardware v1\npreset edge\ntops NaN\nend\n",
        "soma-hardware v1\npreset edge\ntops inf\nend\n",
        "soma-hardware v1\npreset edge\ntops 0\nend\n",
        "soma-hardware v1\npreset edge\ndram_gbps -16\nend\n",
        "soma-hardware v1\npreset edge\nbuffer_mib 0\nend\n",
        "soma-hardware v1\npreset edge\nbuffer_mib 18446744073709551615\nend\n",
        "soma-hardware v1\npreset edge\ncores 0\nend\n",
        // Non-finite search knobs.
        "soma-experiment v1\nname x\nscenario fig2@edge/b1\neffort NaN\nend\n",
        "soma-experiment v1\nname x\nscenario fig2@edge/b1\nt0 inf\nend\n",
        "soma-experiment v1\nname x\nscenario fig2@edge/b1\nallocator_step NaN\nend\n",
        "soma-experiment v1\nname x\nscenario fig2@edge/b1\nweights NaN 1\nend\n",
        "soma-experiment v1\nname x\nscenario fig2@edge/b1\ntime_budget -inf\nend\n",
    ];
    for text in cases {
        let net = read_network(text).err();
        let hwe = read_hardware(text).err();
        let exp = read_experiment(text).err();
        assert!(
            net.is_some() && hwe.is_some() && exp.is_some(),
            "hostile spec was accepted by some parser:\n{text}"
        );
        for e in [net.unwrap(), hwe.unwrap(), exp.unwrap()] {
            assert!(e.line >= 1 && e.col >= 1, "unlocated error {e} for:\n{text}");
        }
    }
}

/// The batch guard must not overreach: a batch-1 *external* operand
/// against a batch-N stream is a valid builder network
/// (`Network::validate` exempts externals from its batch check) and has
/// to keep round-tripping through the text format.
#[test]
fn external_batch_mismatch_is_valid_and_round_trips() {
    use soma_model::{FmapShape, NetworkBuilder};

    let mut b = NetworkBuilder::new("bmix", 1);
    let stream = b.external(FmapShape::new(4, 8, 16, 1));
    let full = b.external(FmapShape::new(1, 16, 8, 1));
    let m = b.matmul("m", stream, full, 16, 0);
    b.mark_output(m);
    let net = b.finish();

    let text = soma_spec::write_network(&net);
    let back = read_network(&text).expect("external batch mismatch is a valid network");
    assert_eq!(back.layers(), net.layers());
    assert_eq!(back.externals(), net.externals());
}

/// The hardened grammar still resolves every accepted hardware spec
/// without panicking — acceptance implies the builder math is safe.
#[test]
fn accepted_hardware_specs_resolve_safely() {
    for seed in 0..500u64 {
        let text = line_soup(seed ^ 0x9e3779b97f4a7c15);
        if let Ok(spec) = read_hardware(&text) {
            let hw = spec.resolve();
            assert!(hw.buffer_bytes > 0);
            assert!(hw.dram_bytes_per_cycle > 0);
        }
    }
}

/// Ditto for experiments: every accepted spec enumerates its cells (the
/// step that resolves hardware overrides and builds networks).
#[test]
fn accepted_experiments_enumerate_cells_safely() {
    for seed in 0..500u64 {
        let text = line_soup(seed ^ 0x6a09e667f3bcc909);
        if let Ok(spec) = read_experiment(&text) {
            assert!(!spec.cells().is_empty(), "an experiment always selects at least one cell");
        }
    }
}
