//! Round-trip guarantees of the `soma-network v1` format: random
//! [`NetworkBuilder`] graphs and the entire zoo must survive
//! `write_network` → `read_network` with an identical layer graph,
//! identical derived stats, and an identical same-seed [`Scheduler`]
//! outcome — plus golden parse-error tests pinning the line/column
//! reporting of all three spec formats.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soma_arch::HardwareConfig;
use soma_model::{zoo, EltOp, FmapShape, Network, NetworkBuilder, Src, VecOp};
use soma_search::{Scheduler, SearchConfig};
use soma_spec::{read_experiment, read_hardware, read_network, write_network};

/// Structural equality over every observable `Network` field (the graph,
/// not just derived stats).
fn assert_same_network(a: &Network, b: &Network) {
    assert_eq!(a.name(), b.name());
    assert_eq!(a.precision(), b.precision());
    assert_eq!(a.externals(), b.externals());
    assert_eq!(a.layers(), b.layers());
    assert_eq!(a.outputs(), b.outputs());
    // Derived stats follow, but check the cheap ones explicitly so a
    // failure names the divergence.
    assert_eq!(a.total_ops(), b.total_ops());
    assert_eq!(a.total_weight_bytes(), b.total_weight_bytes());
    for (id, _) in a.iter() {
        assert_eq!(a.consumers(id), b.consumers(id));
        assert_eq!(a.is_output(id), b.is_output(id));
    }
}

/// A random builder-constructed DAG exercising the whole operator
/// vocabulary: conv (multi-input), dwconv, pool, gpool, linear, matmul,
/// eltwise, vector, multiple externals and multiple outputs.
fn random_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = rng.gen_range(1..3u32);
    let precision = rng.gen_range(1..3u32);
    let mut b = NetworkBuilder::new(format!("rand{seed:016x}"), precision);

    let mut srcs: Vec<(Src, FmapShape)> = Vec::new();
    for _ in 0..rng.gen_range(1..3usize) {
        let shape = FmapShape::new(
            batch,
            rng.gen_range(1..24u32),
            rng.gen_range(1..24u32),
            rng.gen_range(1..24u32),
        );
        srcs.push((b.external(shape), shape));
    }

    let layers = rng.gen_range(3..12usize);
    let mut layer_srcs: Vec<Src> = Vec::new();
    for i in 0..layers {
        let pick = |rng: &mut StdRng, srcs: &[(Src, FmapShape)]| srcs[rng.gen_range(0..srcs.len())];
        let name = format!("l{i}");
        let (src, shape) = pick(&mut rng, &srcs);
        let (new_src, new_shape) = match rng.gen_range(0..8u32) {
            0 | 1 => {
                // conv, sometimes multi-input (channel concat).
                let mut inputs = vec![src];
                if rng.gen_bool(0.3) {
                    inputs.push(pick(&mut rng, &srcs).0);
                }
                let cout = rng.gen_range(1..32u32);
                let k = rng.gen_range(1..4u32);
                let stride = rng.gen_range(1..3u32);
                let s = b.conv(name, &inputs, cout, k, stride);
                (
                    s,
                    FmapShape::new(
                        shape.n,
                        cout,
                        shape.h.div_ceil(stride),
                        shape.w.div_ceil(stride),
                    ),
                )
            }
            2 => {
                let k = rng.gen_range(1..4u32);
                let s = b.dwconv(name, src, k, 1);
                (s, shape)
            }
            3 => {
                let s = b.pool(name, src, 2, 2);
                (s, FmapShape::new(shape.n, shape.c, shape.h.div_ceil(2), shape.w.div_ceil(2)))
            }
            4 => {
                let cout = rng.gen_range(1..48u32);
                let s = b.linear(name, &[src], cout);
                (s, FmapShape::new(shape.n, cout, shape.h, shape.w))
            }
            5 => {
                // matmul: streamed x full, occasionally with a DRAM
                // operand (decode-style KV cache).
                let full = pick(&mut rng, &srcs).0;
                let cout = rng.gen_range(1..32u32);
                let dram = if rng.gen_bool(0.5) { rng.gen_range(1..4096u64) } else { 0 };
                let s = b.matmul(name, src, full, cout, dram);
                (s, FmapShape::new(shape.n, cout, shape.h, shape.w))
            }
            6 => {
                // eltwise over two same-shape sources, if any pair exists.
                let mates: Vec<Src> = srcs
                    .iter()
                    .filter(|&&(s, sh)| sh == shape && s != src)
                    .map(|&(s, _)| s)
                    .collect();
                if mates.is_empty() {
                    let s = b.vector(name, VecOp::Relu, src);
                    (s, shape)
                } else {
                    let mate = mates[rng.gen_range(0..mates.len())];
                    let op = if rng.gen_bool(0.5) { EltOp::Add } else { EltOp::Mul };
                    let s = b.eltwise(name, op, &[src, mate]);
                    (s, shape)
                }
            }
            _ => {
                let op = match rng.gen_range(0..4u32) {
                    0 => VecOp::Relu,
                    1 => VecOp::Gelu,
                    2 => VecOp::Softmax,
                    _ => VecOp::LayerNorm,
                };
                let s = b.vector(name, op, src);
                (s, shape)
            }
        };
        srcs.push((new_src, new_shape));
        layer_srcs.push(new_src);
    }

    // Declare one or two explicit outputs (the rest are implicit).
    b.mark_output(*layer_srcs.last().expect("at least one layer"));
    if layer_srcs.len() > 2 && rng.gen_bool(0.5) {
        let extra = layer_srcs[rng.gen_range(0..layer_srcs.len() - 1)];
        if extra != *layer_srcs.last().expect("non-empty") {
            b.mark_output(extra);
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random builder graphs survive the text round trip with an
    /// identical layer graph and stats.
    #[test]
    fn random_networks_round_trip(seed in any::<u64>()) {
        let net = random_network(seed);
        let text = write_network(&net);
        let back = read_network(&text)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}\n{text}"));
        assert_same_network(&net, &back);
        // Canonical text is a fixed point: write(read(write(n))) == write(n).
        prop_assert_eq!(write_network(&back), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A reloaded network is not just structurally identical — the whole
    /// scheduling pipeline agrees: the same-seed `Scheduler` outcome on
    /// the reloaded network is bit-identical to the original's.
    #[test]
    fn random_networks_schedule_identically_after_round_trip(seed in any::<u64>()) {
        let net = random_network(seed);
        let back = read_network(&write_network(&net)).expect("round trip parses");
        let hw = HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.01, seed: seed ^ 0xA5, ..SearchConfig::default() };
        let a = Scheduler::new(&net, &hw).config(cfg.clone()).run();
        let b = Scheduler::new(&back, &hw).config(cfg).run();
        prop_assert_eq!(a.best.encoding, b.best.encoding);
        prop_assert_eq!(a.best.report, b.best.report);
        prop_assert_eq!(a.best.cost.to_bits(), b.best.cost.to_bits());
        prop_assert_eq!(a.evals, b.evals);
        prop_assert_eq!(a.rejected, b.rejected);
    }
}

/// Every zoo network — the acceptance bar — round-trips bit-identically:
/// graph and stats here; the `Scheduler` is a deterministic function of
/// the (identical) network, verified directly on the small demos below.
#[test]
fn every_zoo_network_round_trips() {
    for batch in [1u32, 3] {
        for net in zoo::full_zoo(batch) {
            let text = write_network(&net);
            let back =
                read_network(&text).unwrap_or_else(|e| panic!("{} b{batch}: {e}", net.name()));
            assert_same_network(&net, &back);
        }
    }
}

#[test]
fn zoo_demo_networks_schedule_identically_after_round_trip() {
    let hw = HardwareConfig::edge();
    for net in [zoo::fig2(1), zoo::fig4(1), zoo::randwire(1, 0xC0C0)] {
        let back = read_network(&write_network(&net)).expect("round trip parses");
        let cfg = SearchConfig { effort: 0.02, seed: 11, ..SearchConfig::default() };
        let a = Scheduler::new(&net, &hw).config(cfg.clone()).run();
        let b = Scheduler::new(&back, &hw).config(cfg).run();
        assert_eq!(a.best.encoding, b.best.encoding, "{}", net.name());
        assert_eq!(a.best.report, b.best.report, "{}", net.name());
        assert_eq!(a.best.cost.to_bits(), b.best.cost.to_bits(), "{}", net.name());
    }
}

/// Golden parse errors: every malformed spec reports the exact line and
/// column of the offending token, for all three formats.
#[test]
fn golden_network_parse_errors() {
    let cases: &[(&str, (usize, usize), &str)] = &[
        ("bogus\n", (1, 1), "expected `soma-network v1` header"),
        ("soma-network v1\nname d\nwarp x from y\nend\n", (3, 1), "unknown directive `warp`"),
        (
            "soma-network v1\ninput x 1x1x8x8\nend\n",
            (2, 1),
            "`name` must precede the first graph line",
        ),
        ("soma-network v1\nname d\ninput x 1x1x8\nend\n", (3, 9), "a shape has 4 dimensions"),
        (
            "soma-network v1\nname d\ninput x 1x1x8x8\ninput x 1x1x8x8\nend\n",
            (4, 7),
            "duplicate name `x`",
        ),
        (
            "soma-network v1\nname d\ninput x 1x1x8x8\nconv c from x cout=4 k=3 stride=oops\nend\n",
            (4, 26),
            "`stride=` expects a positive integer",
        ),
        (
            "soma-network v1\nname d\ninput x 1x1x8x8\nconv c from x cout=4 k=3 stride=1 zap=9\nend\n",
            (4, 35),
            "unknown argument `zap=9`",
        ),
        (
            "soma-network v1\nname d\ninput x 1x1x8x8\nmatmul m from x cout=4\nend\n",
            (4, 15),
            "exactly two sources",
        ),
        (
            "soma-network v1\nname d\ninput x 1x1x8x8\nvector v whoosh from x\nend\n",
            (4, 10),
            "unknown vector op `whoosh`",
        ),
        ("soma-network v1\nname d\ninput x 1x1x8x8\nconv c from x cout=4 k=3 stride=1\n", (5, 1), "missing `end`"),
    ];
    for (text, (line, col), needle) in cases {
        let err = read_network(text).expect_err(text);
        assert_eq!((err.line, err.col), (*line, *col), "{text:?} -> {err}");
        assert!(err.to_string().contains(needle), "{text:?}: {err} !~ {needle}");
    }
}

#[test]
fn golden_hardware_and_experiment_parse_errors() {
    let hw_cases: &[(&str, (usize, usize), &str)] = &[
        ("soma-hardware v1\npreset warp9\nend\n", (2, 8), "unknown preset `warp9`"),
        ("soma-hardware v1\npreset edge\nbuffer_mib all\nend\n", (3, 12), "expects a number"),
        (
            "soma-hardware v1\npreset edge\nflux_capacitor 1\nend\n",
            (3, 1),
            "unknown hardware field",
        ),
    ];
    for (text, (line, col), needle) in hw_cases {
        let err = read_hardware(text).expect_err(text);
        assert_eq!((err.line, err.col), (*line, *col), "{text:?} -> {err}");
        assert!(err.to_string().contains(needle), "{text:?}: {err} !~ {needle}");
    }

    let exp_cases: &[(&str, (usize, usize), &str)] = &[
        (
            "soma-experiment v1\nname x\nscenario fig2@edge/b\nend\n",
            (3, 10),
            "unknown scenario id",
        ),
        (
            "soma-experiment v1\nname x\nworkload mystery-net\nhardware edge\nend\n",
            (3, 10),
            "unknown zoo workload `mystery-net`",
        ),
        (
            "soma-experiment v1\nname x\nscenario fig2@edge/b1\nlink_cuts 2\nend\n",
            (4, 11),
            "expects 0 or 1",
        ),
        (
            "soma-experiment v1\nname x\nscenario fig2@edge/b1\nhardware edge dram_gbps=fast\nend\n",
            (4, 15),
            "expects a number",
        ),
    ];
    for (text, (line, col), needle) in exp_cases {
        let err = read_experiment(text).expect_err(text);
        assert_eq!((err.line, err.col), (*line, *col), "{text:?} -> {err}");
        assert!(err.to_string().contains(needle), "{text:?}: {err} !~ {needle}");
    }
}
