//! Chaos wall for ledger recovery: **no corruption — torn tails, bit
//! rot, garbage lines, invalid UTF-8 — may panic a load or lose a valid
//! row that is still physically present in the file.**
//!
//! Three walls:
//!
//! * a **fuzzed damage storm**: real rows written to disk, then a seeded
//!   mix of garbage insertion, bit flips and truncation. Loading must
//!   succeed, keep every row whose line survived intact, and leave the
//!   file clean for the next load;
//! * a **seeded append-fault storm** through [`FaultPlan`]: torn writes,
//!   silent bit-flips and fsync errors during `append`, with the
//!   caller retrying through reloads until every row is durable —
//!   the convergence loop the serve daemon and lab orchestrator rely on;
//! * the **duplicate-hash pin**: appending the same hash twice is
//!   allowed, lookups are last-write-wins, and
//!   [`LedgerHealth::duplicates`] counts the shadowed copies.
//!
//! Everything is seed-driven (vendored proptest + `StdRng`), so every
//! failure replays.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soma_search::{Scheduler, SearchConfig};
use soma_spec::fault::{FaultConfig, FaultPlan};
use soma_spec::ledger::{cell_key, quarantine_path, Ledger, LedgerRow};
use soma_spec::read_experiment;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("soma-chaos-ledger");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

/// Real rows (distinct cells/seeds of the smallest scenario), searched
/// once and shared by every fuzz case.
fn base_rows() -> &'static [LedgerRow] {
    static ROWS: OnceLock<Vec<LedgerRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let spec = read_experiment(
            "soma-experiment v1\nname chaos\nscenario fig4@edge/b1\n\
             seeds 2025\neffort 0.01\nend\n",
        )
        .expect("chaos spec parses");
        let cell = &spec.cells()[0];
        (0..4u64)
            .map(|i| {
                let seeds = vec![2025 + i];
                let cfg = SearchConfig { seed: seeds[0], ..spec.config.clone() };
                let hash = cell_key(cell, &cfg, &seeds);
                let outcome = Scheduler::new(&cell.net, &cell.hw).config(cfg).seeds(seeds).run();
                LedgerRow::new(cell, &hash, outcome)
            })
            .collect()
    })
}

/// The complete lines of `bytes` (everything terminated by `\n`; an
/// unterminated tail is a torn write, not a line).
fn complete_lines(bytes: &[u8]) -> Vec<&[u8]> {
    let mut out: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    out.pop(); // the piece after the last '\n' (possibly empty) is never complete
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded damage storm: load never errors, never panics, and keeps
    /// every row whose line is still intact in the damaged file. A
    /// second load of the repaired file is fully clean.
    #[test]
    fn damaged_ledgers_recover_without_losing_intact_rows(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = base_rows();
        let path = tmp(&format!("fuzz-{seed}.jsonl"));
        let qpath = quarantine_path(&path);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);

        // Assemble the file: every base row, with garbage lines spliced
        // at random positions.
        let mut lines: Vec<Vec<u8>> =
            rows.iter().map(|r| r.to_line().into_bytes()).collect();
        for _ in 0..rng.gen_range(0..3usize) {
            let garbage: Vec<u8> = match rng.gen_range(0..4u32) {
                0 => b"{\"v\":1,\"hash\":\"dead\"}".to_vec(),          // pre-crc row
                1 => b"not json at all".to_vec(),
                2 => (0..rng.gen_range(1..40usize))
                    .map(|_| rng.gen_range(0x20u8..=0xff)) // may break UTF-8
                    .filter(|&b| b != b'\n')
                    .collect(),
                _ => b"{}".to_vec(),
            };
            let at = rng.gen_range(0..=lines.len());
            lines.insert(at, garbage);
        }
        let mut bytes: Vec<u8> = Vec::new();
        for line in &lines {
            bytes.extend_from_slice(line);
            bytes.push(b'\n');
        }
        // Bit flips anywhere in the file (including newlines), then
        // maybe a torn tail.
        for _ in 0..rng.gen_range(0..3usize) {
            if !bytes.is_empty() {
                let pos = rng.gen_range(0..bytes.len());
                bytes[pos] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        if rng.gen_range(0..3u32) == 0 {
            bytes.truncate(rng.gen_range(0..=bytes.len()));
        }
        fs::write(&path, &bytes).unwrap();

        // Which base rows are still physically intact as complete lines?
        let intact: Vec<&LedgerRow> = rows
            .iter()
            .filter(|r| {
                let line = r.to_line().into_bytes();
                complete_lines(&bytes).iter().any(|l| **l == line[..])
            })
            .collect();

        let ledger = Ledger::load(&path).expect("recovery must not error");
        for row in &intact {
            let kept = ledger.lookup(&row.hash);
            prop_assert!(kept.is_some(), "intact row {} lost (seed {seed})", row.hash);
            prop_assert!(
                kept.unwrap().to_line() == row.to_line(),
                "intact row {} must survive byte-identically",
                &row.hash
            );
        }
        prop_assert!(ledger.len() >= intact.len());

        // The repair is complete: reloading finds a clean file with the
        // same rows.
        let again = Ledger::load(&path).expect("second load");
        prop_assert!(again.health().is_clean(), "repair left damage: {:?}", again.health());
        prop_assert_eq!(again.len(), ledger.len());

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
    }

    /// Seeded append-fault storm: with CHAOS-rate torn writes, silent
    /// bit-flips and fsync errors injected into `append`, a caller that
    /// retries through reloads always converges to a fully durable,
    /// clean ledger — and never sees a panic.
    #[test]
    fn append_fault_storms_converge_through_reload_and_retry(seed in any::<u64>()) {
        let rows = base_rows();
        let path = tmp(&format!("storm-{seed}.jsonl"));
        let qpath = quarantine_path(&path);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);

        let plan = Arc::new(FaultPlan::seeded(seed, FaultConfig::CHAOS));
        let mut ledger = Ledger::load(&path).unwrap();
        ledger.inject_faults(Arc::clone(&plan));

        for row in rows {
            let mut attempts = 0;
            // Durable means: a reload (which re-verifies checksums)
            // still finds the row. An append that "succeeded" through a
            // silent bit-flip fails that bar and is retried like any
            // torn write.
            loop {
                attempts += 1;
                prop_assert!(attempts < 64, "row {} never became durable", row.hash);
                let _ = ledger.append(row.clone());
                ledger = Ledger::load(&path).expect("reload after append");
                ledger.inject_faults(Arc::clone(&plan));
                if ledger.lookup(&row.hash).is_some() {
                    break;
                }
            }
        }

        let fin = Ledger::load(&path).expect("final load");
        prop_assert!(fin.health().is_clean(), "{:?}", fin.health());
        for row in rows {
            prop_assert!(fin.lookup(&row.hash).is_some(), "row {} lost", row.hash);
        }

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
    }
}

/// Duplicate-hash pin: appending the same hash twice is legal
/// append-only history. Lookups resolve to the **newest** row
/// (last-write-wins), both copies stay in the file, and a reload counts
/// the shadowed copy in `health().duplicates`.
#[test]
fn duplicate_hash_rows_are_last_write_wins_and_counted() {
    let rows = base_rows();
    let path = tmp("dup.jsonl");
    let _ = fs::remove_file(&path);

    let mut second = rows[1].clone();
    second.hash = rows[0].hash.clone(); // same key, different content

    let mut ledger = Ledger::load(&path).unwrap();
    ledger.append(rows[0].clone()).unwrap();
    ledger.append(second.clone()).unwrap();
    assert_eq!(ledger.len(), 2, "both copies stay in the file");
    assert_eq!(ledger.health().duplicates, 1);
    assert_eq!(
        ledger.lookup(&rows[0].hash).unwrap().to_line(),
        second.to_line(),
        "in-memory lookup is last-write-wins"
    );

    let reloaded = Ledger::load(&path).unwrap();
    assert!(reloaded.health().is_clean(), "duplicates are not damage");
    assert_eq!(reloaded.health().duplicates, 1);
    assert_eq!(reloaded.len(), 2);
    assert_eq!(
        reloaded.lookup(&rows[0].hash).unwrap().to_line(),
        second.to_line(),
        "on-disk lookup is last-write-wins"
    );

    let _ = fs::remove_file(&path);
}
