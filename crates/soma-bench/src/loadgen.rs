//! Request-storm driver for the serve daemon: N concurrent client
//! connections hammer one scenario with a fixed total request count,
//! and every request's submit→result latency is recorded.
//!
//! Two storm shapes matter for the benchmark:
//!
//! * **cold** — `distinct_seeds: true` gives every request its own seed,
//!   so every request is a full search (ledger misses).
//! * **cached** — `distinct_seeds: false` repeats one request verbatim,
//!   so after the first miss everything is served from the ledger.
//!
//! The ratio of the two `req_per_sec` numbers is the headline: what the
//! content-addressed ledger buys a serving deployment on repeat traffic.
//! Both the `loadgen` binary and perfbench's `serve` section drive this
//! module; the work split is a shared atomic counter, so a slow request
//! on one connection never stalls the others.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use soma_serve::{Client, Listen, SubmitRequest, Target};

/// One storm's shape: where to aim, what to ask for, how hard.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// The daemon endpoint.
    pub listen: Listen,
    /// Registry scenario id every request names.
    pub scenario: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Per-request search effort (forwarded as the submit's `effort`).
    pub effort: f64,
    /// Base seed; request `i` uses `seed_base + i` when
    /// `distinct_seeds`, else `seed_base` verbatim.
    pub seed_base: u64,
    /// `true` = every request is a distinct cold search; `false` =
    /// every request repeats one cell (cache storm).
    pub distinct_seeds: bool,
    /// Ask the daemon to stream progress frames (more wire traffic,
    /// closer to an interactive client).
    pub progress: bool,
}

/// Merged result of one storm: counts plus the sorted latency sample.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Requests attempted (== the config's `requests`).
    pub requests: usize,
    /// Requests that produced an outcome.
    pub completed: usize,
    /// Completed requests served from the ledger.
    pub cached: usize,
    /// Requests refused by admission control.
    pub rejected: usize,
    /// Wall-clock of the whole storm.
    pub elapsed_s: f64,
    /// Per-request submit→terminal-frame latencies, sorted ascending.
    pub latencies_ms: Vec<f64>,
}

impl StormReport {
    /// Completed requests per wall-clock second.
    #[must_use]
    pub fn req_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile of the latency sample, `p` in `[0, 100]`.
    /// `0.0` on an empty sample. Delegates to the workspace's single
    /// percentile implementation
    /// ([`soma_obs::percentile_nearest_rank`], proptested against a
    /// sort-based oracle) — `latencies_ms` is kept sorted by
    /// [`storm`].
    #[must_use]
    pub fn percentile_ms(&self, p: f64) -> f64 {
        soma_obs::percentile_nearest_rank(&self.latencies_ms, p)
    }

    /// One perfbench-style JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self, label: &str) -> String {
        format!(
            "{{\"phase\": \"{label}\", \"requests\": {}, \"completed\": {}, \
             \"cached\": {}, \"rejected\": {}, \"elapsed_s\": {:.6}, \
             \"req_per_sec\": {:.1}, \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \
             \"p99\": {:.3}}}}}",
            self.requests,
            self.completed,
            self.cached,
            self.rejected,
            self.elapsed_s,
            self.req_per_sec(),
            self.percentile_ms(50.0),
            self.percentile_ms(90.0),
            self.percentile_ms(99.0),
        )
    }
}

fn client_io(e: soma_serve::ClientError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Runs one storm to completion and merges every connection's tallies.
///
/// # Errors
///
/// Connect or transport failures on any connection abort the storm with
/// the first error. Typed rejects are *not* errors — they are counted.
pub fn storm(cfg: &StormConfig) -> io::Result<StormReport> {
    let total = cfg.requests;
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    let workers: Vec<_> = (0..cfg.clients.max(1))
        .map(|_| {
            let cfg = cfg.clone();
            let next = Arc::clone(&next);
            std::thread::spawn(move || -> io::Result<(usize, usize, usize, Vec<f64>)> {
                let mut client = Client::connect(&cfg.listen).map_err(client_io)?;
                let (mut completed, mut cached, mut rejected) = (0usize, 0usize, 0usize);
                let mut latencies = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let seed =
                        if cfg.distinct_seeds { cfg.seed_base + i as u64 } else { cfg.seed_base };
                    let req = SubmitRequest {
                        id: format!("storm-{i}"),
                        target: Target::Scenario(cfg.scenario.clone()),
                        seeds: vec![seed],
                        effort: Some(cfg.effort),
                        progress: cfg.progress,
                        deadline_ms: None,
                    };
                    let t = Instant::now();
                    let sub = client.submit(req).map_err(client_io)?;
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    if sub.succeeded() {
                        completed += 1;
                        if sub.cached {
                            cached += 1;
                        }
                    } else {
                        rejected += 1;
                    }
                }
                Ok((completed, cached, rejected, latencies))
            })
        })
        .collect();

    let (mut completed, mut cached, mut rejected) = (0usize, 0usize, 0usize);
    let mut latencies_ms = Vec::with_capacity(total);
    for worker in workers {
        let (c, h, r, l) = worker.join().expect("storm worker panicked")?;
        completed += c;
        cached += h;
        rejected += r;
        latencies_ms.extend(l);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    Ok(StormReport { requests: total, completed, cached, rejected, elapsed_s, latencies_ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies_ms: Vec<f64>) -> StormReport {
        StormReport {
            requests: latencies_ms.len(),
            completed: latencies_ms.len(),
            cached: 0,
            rejected: 0,
            elapsed_s: 1.0,
            latencies_ms,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report((1..=100).map(f64::from).collect());
        assert_eq!(r.percentile_ms(50.0), 50.0);
        assert_eq!(r.percentile_ms(90.0), 90.0);
        assert_eq!(r.percentile_ms(99.0), 99.0);
        assert_eq!(r.percentile_ms(100.0), 100.0);
        assert_eq!(report(vec![]).percentile_ms(50.0), 0.0);
        assert_eq!(report(vec![7.0]).percentile_ms(99.0), 7.0);
    }

    #[test]
    fn report_renders_one_json_object() {
        let json = report(vec![1.0, 2.0, 3.0]).to_json("cold");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"phase\": \"cold\""), "{json}");
        assert!(json.contains("\"req_per_sec\": 3.0"), "{json}");
    }
}
