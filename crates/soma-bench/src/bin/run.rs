//! Executes a committed `.soma` experiment file end-to-end: spec in,
//! CSV results out — the declarative replacement for hand-editing a
//! figure binary.
//!
//! ```sh
//! cargo run --release -p soma-bench --bin run -- specs/fig2_edge.soma
//! cargo run --release -p soma-bench --bin run -- specs/fig2_edge.soma --threads 4
//! ```
//!
//! CSV columns (stdout; commentary on stderr):
//! `scenario,workload,platform,batch,scheme,latency_cycles,energy_pj,`
//! `cost,evals,rejected,lgs,flgs,tiles,dram_tensors` — one `ours_1` and
//! one `ours_2` row per cell, keyed by registry scenario id.
//!
//! The run is exactly reproducible from the spec file alone: every knob
//! (workloads, platforms, batches, seeds, search configuration) lives in
//! the spec, and each cell runs the same `Scheduler` pipeline a
//! hand-written driver would (`ci_smoke` pins this bit-for-bit). Of the
//! shared `SOMA_*` knob surface only the `SOMA_WORKLOAD` scenario-id
//! filter applies on top; knobs the spec supersedes (`SOMA_EFFORT`,
//! `SOMA_SEED`, `SOMA_FULL`, `SOMA_THREADS`) are ignored with a warning.
//!
//! `--threads <auto|seq|N>` overrides the spec's `threads` directive for
//! this invocation only. Thread policy never changes the CSV — cells
//! are merged in cell order and every seed owns its RNG stream — so the
//! override is safe to use freely.

use soma_bench::{csv_rows, run_cells, LabEvent, RunConfig, CSV_HEADER};
use soma_search::Parallelism;
use soma_spec::read_experiment;

fn main() {
    if std::env::args().any(|a| a == "--version") {
        println!("{}", soma_bench::version_line("run"));
        return;
    }
    let rc = RunConfig::from_env_or_exit();
    // The spec file owns the search configuration; of the shared knob
    // surface only `SOMA_WORKLOAD` applies here. Knobs that a spec
    // supersedes are *loudly* ignored — no silent defaults.
    for knob in ["SOMA_EFFORT", "SOMA_SEED", "SOMA_FULL", "SOMA_THREADS"] {
        if std::env::var_os(knob).is_some() {
            eprintln!("run: ignoring {knob} — the spec file owns the search configuration");
        }
    }
    let usage = || -> ! {
        eprintln!("usage: run <experiment.soma> [--threads <auto|seq|N>] [--version]");
        std::process::exit(2);
    };
    let mut spec_path: Option<String> = None;
    let mut threads_flag: Option<Parallelism> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => match args.next().map(|v| v.parse()) {
                Some(Ok(par)) => threads_flag = Some(par),
                Some(Err(e)) => {
                    eprintln!("run: --threads: {e}");
                    std::process::exit(2);
                }
                None => usage(),
            },
            _ if spec_path.is_none() && !arg.starts_with('-') => spec_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = spec_path else { usage() };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("run: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let spec = read_experiment(&text).unwrap_or_else(|e| {
        eprintln!("run: {path}: {e}");
        std::process::exit(2);
    });

    // The scenario-id filter composes with the spec: a spec names the
    // full grid, `SOMA_WORKLOAD` narrows one invocation.
    let all = spec.cells();
    let before = all.len();
    let cells: Vec<_> = all.into_iter().filter(|c| rc.selects_id(&c.id)).collect();
    if cells.is_empty() {
        eprintln!(
            "run: {path}: no cells left (spec had {before}, SOMA_WORKLOAD={:?})",
            rc.workload
        );
        std::process::exit(2);
    }

    let parallelism = threads_flag.unwrap_or(spec.parallelism);
    eprintln!(
        "[run] {}: {} cell(s), {} seed(s), effort {}, threads {parallelism}",
        spec.name,
        cells.len(),
        spec.seeds.len(),
        spec.config.effort
    );
    println!("{CSV_HEADER}");
    let rows = run_cells(cells, &spec.config, &spec.seeds, parallelism, |ev| {
        if let LabEvent::Finished { cell, cost, latency_cycles, evals, .. } = ev {
            eprintln!("[run] {cell}: best cost {cost:.3e}, latency {latency_cycles} cycles, {evals} evals");
        }
    });
    print!("{}", csv_rows(&rows));
}
