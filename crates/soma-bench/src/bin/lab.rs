//! Executes a committed `.soma` experiment file through the parallel,
//! resumable, cache-aware orchestrator (`soma_bench::lab`).
//!
//! ```sh
//! cargo run --release -p soma-bench --bin lab -- specs/fig2_edge.soma
//! cargo run --release -p soma-bench --bin lab -- specs/fig2_edge.soma \
//!     --ledger out/fig2.jsonl --require-hits
//! ```
//!
//! Stdout carries the same CSV the `run` binary prints (byte-identical
//! for the same spec — pinned by the golden tests); commentary and the
//! per-cell `LabEvent` stream go to stderr. Results are keyed into the
//! **run ledger** (default `target/lab/<experiment-name>.ledger`, a
//! binary shard directory; `--ledger-format json` switches the default
//! to the JSONL debug surface, and `--ledger <path>` picks an explicit
//! location): a rerun of an unchanged spec performs zero search
//! work, an interrupted run resumes from the last completed cell, and
//! editing the spec's search configuration invalidates exactly the
//! affected cells (the key hashes scenario id, resolved hardware, full
//! `SearchConfig`, seed portfolio and engine version).
//!
//! `--require-hits` exits with status 3 unless every cell was a ledger
//! hit — the CI replay gate (`lab-smoke` runs the same spec twice and
//! requires the second pass to be 100 % cached). A cell that panics is
//! isolated (the campaign completes without it) and reported with exit
//! status 4: partial failure, rerun to retry exactly the failed cells.
//!
//! The spec file owns the entire run configuration, so **every**
//! `SOMA_*` knob — including `SOMA_WORKLOAD`; a partial run would poison
//! resume-vs-uninterrupted ledger comparisons — is ignored with a
//! warning. The one override is `--threads <auto|seq|N>`, which replaces
//! the spec's `threads` directive for this invocation: thread policy is
//! wall-clock only (ledger bytes and CSV are bit-identical across
//! counts, and the cache key never sees it), so it is the one knob that
//! cannot poison anything.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use soma_bench::{csv_rows, run_lab_until, LabEvent, CSV_HEADER};
use soma_obs::summary::{CampaignSummary, CellOutcome, RunCounts};
use soma_search::Parallelism;
use soma_serve::shutdown;
use soma_spec::read_experiment;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lab <experiment.soma> [--ledger <path>] [--ledger-format <binary|json>] \
         [--require-hits] [--threads <auto|seq|N>] [--summary <out.json>] [--version]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--version") {
        println!("{}", soma_bench::version_line("lab"));
        return ExitCode::SUCCESS;
    }
    for knob in ["SOMA_EFFORT", "SOMA_SEED", "SOMA_FULL", "SOMA_THREADS", "SOMA_WORKLOAD"] {
        if std::env::var_os(knob).is_some() {
            eprintln!("lab: ignoring {knob} — the spec file owns the entire run configuration");
        }
    }

    let mut spec_path: Option<String> = None;
    let mut ledger_path: Option<PathBuf> = None;
    let mut summary_path: Option<PathBuf> = None;
    let mut require_hits = false;
    let mut json_ledger = false;
    let mut threads_flag: Option<Parallelism> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ledger" => match args.next() {
                Some(p) => ledger_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--ledger-format" => match args.next().as_deref() {
                Some("binary") => json_ledger = false,
                Some("json") => json_ledger = true,
                _ => return usage(),
            },
            "--summary" => match args.next() {
                Some(p) => summary_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--threads" => match args.next().map(|v| v.parse()) {
                Some(Ok(par)) => threads_flag = Some(par),
                Some(Err(e)) => {
                    eprintln!("lab: --threads: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--require-hits" => require_hits = true,
            _ if spec_path.is_none() && !arg.starts_with('-') => spec_path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = spec_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("lab: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut spec = match read_experiment(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("lab: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    // Thread policy is the one spec field a flag may override: it is
    // wall-clock only and never part of a cell's cache key.
    if let Some(par) = threads_flag {
        spec.parallelism = par;
    }
    // Default is the binary sharded ledger (`<name>.ledger` directory).
    // `--ledger-format json` keeps the human-greppable JSONL debug
    // surface; an explicit `--ledger` path wins either way, with its
    // format detected from what exists (or the `.jsonl` extension).
    let ledger = ledger_path.unwrap_or_else(|| {
        let ext = if json_ledger { "jsonl" } else { "ledger" };
        PathBuf::from("target/lab").join(format!("{}.{ext}", spec.name))
    });

    eprintln!(
        "[lab] {}: {} cell(s), {} seed(s), effort {}, threads {}, ledger {}",
        spec.name,
        spec.cells().len(),
        spec.seeds.len(),
        spec.config.effort,
        spec.parallelism,
        ledger.display()
    );
    // SIGINT/SIGTERM flip one atomic; the orchestrator stops fanning
    // out, flushes every completed-in-order cell, and returns with
    // `stopped: true` — the ledger stays a clean, replayable prefix.
    shutdown::install_signal_handlers();
    let run_start = Instant::now();
    let summary = run_lab_until(&spec, &ledger, shutdown::stop_flag(), |ev| match ev {
        LabEvent::Queued { cell, hash } => eprintln!("[lab] queued   {cell} ({hash})"),
        LabEvent::Cached { cell, .. } => eprintln!("[lab] cached   {cell}"),
        LabEvent::Started { cell } => eprintln!("[lab] started  {cell}"),
        LabEvent::Finished { cell, cost, latency_cycles, evals, .. } => eprintln!(
            "[lab] finished {cell}: best cost {cost:.3e}, latency {latency_cycles} cycles, \
             {evals} evals"
        ),
        LabEvent::Failed { cell, error, .. } => eprintln!("[lab] FAILED   {cell}: {error}"),
    });
    let summary = match summary {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lab: {}: {e}", ledger.display());
            return ExitCode::from(2);
        }
    };
    let elapsed_s = run_start.elapsed().as_secs_f64();

    if let Some(out) = &summary_path {
        let cells: Vec<CellOutcome> = summary
            .rows
            .iter()
            .map(|r| CellOutcome {
                scenario: r.cell.id.clone(),
                cost: r.outcome.best.cost,
                latency_cycles: r.outcome.best.report.latency_cycles,
                evals: r.outcome.evals,
            })
            .collect();
        let campaign = CampaignSummary::from_cells(
            &spec.name,
            &cells,
            summary.health,
            Some(RunCounts {
                hits: summary.hits,
                searched: summary.misses,
                failed: summary.failed,
                stopped: summary.stopped,
                elapsed_s: Some(elapsed_s),
            }),
        );
        if let Some(dir) = out.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        let mut text = campaign.to_string_stable();
        text.push('\n');
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("lab: cannot write summary {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!("[lab] campaign summary written to {}", out.display());
    }

    println!("{CSV_HEADER}");
    print!("{}", csv_rows(&summary.rows));
    if !summary.health.is_clean() || summary.health.duplicates > 0 {
        eprintln!(
            "[lab] ledger repair: {} row(s) quarantined{}, {} duplicate hash(es) \
             (last write wins); see {}",
            summary.health.quarantined,
            if summary.health.truncated { ", torn tail dropped" } else { "" },
            summary.health.duplicates,
            soma_spec::quarantine_path(&ledger).display()
        );
    }
    eprintln!(
        "[lab] {}: {} hit(s), {} searched, {} failed, ledger {}",
        spec.name,
        summary.hits,
        summary.misses,
        summary.failed,
        ledger.display()
    );
    if summary.stopped {
        eprintln!(
            "[lab] interrupted: ledger flushed through {} searched cell(s); \
             rerun the same spec to resume from there",
            summary.misses
        );
        return ExitCode::from(130);
    }
    if require_hits && summary.misses > 0 {
        eprintln!(
            "lab: --require-hits: {} cell(s) were not served from the ledger",
            summary.misses
        );
        return ExitCode::from(3);
    }
    if summary.failed > 0 {
        // The partial-failure report carries the full ledger health so a
        // machine parsing stderr (or a human triaging CI) sees repair
        // activity alongside the failure count — previously only the
        // human-readable warning above surfaced it.
        eprintln!(
            "lab: {} cell(s) failed and were skipped; ledger health: kept {}, \
             quarantined {}, truncated {}, duplicates {}; rerun the same spec to \
             retry exactly those cells",
            summary.failed,
            summary.health.kept,
            summary.health.quarantined,
            summary.health.truncated,
            summary.health.duplicates
        );
        return ExitCode::from(4);
    }
    ExitCode::SUCCESS
}
