//! Search-throughput benchmark: schedule evaluations per second through
//! the naive rebuild-everything path vs the compiled evaluation engine,
//! per stage, per network, per seed — plus cold-vs-warm timings of the
//! ledger-backed `lab` orchestrator, thread-count scaling of a
//! seed-portfolio run (outcomes asserted bit-identical across counts
//! first; the `scaling` section reports wall-clock only; single-core
//! hosts get a stderr warning and a `"warning"` stamp in the JSON),
//! a `serve` saturation section (cold vs ledger-cached request
//! storms against an in-process daemon, via `soma_bench::loadgen`),
//! and a `ledger` format shoot-out (v2 JSONL vs v3 binary shards:
//! on-disk size and cold-replay time over a synthetic campaign).
//!
//! Prints a machine-readable JSON document to stdout (committed at the
//! repo root as `BENCH_search.json`) and commentary to stderr. Both
//! paths replay the *same* greedy mutation walk at the same seed, and
//! the bit-identical final cost is asserted before any number is
//! reported — a result that is fast but wrong aborts the run. Likewise
//! the `lab` section asserts the warm pass is 100 % ledger hits before
//! reporting its speedup.
//!
//! Knobs (see `soma_bench::RunConfig`): `SOMA_SEED` is the base seed
//! (three consecutive seeds are measured), `SOMA_EFFORT` scales the
//! proposal counts, `SOMA_WORKLOAD` filters networks by substring.
//!
//! Usage: `cargo run --release -p soma-bench --bin perfbench > BENCH_search.json`

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use soma_arch::HardwareConfig;
use soma_bench::RunConfig;
use soma_core::{parse_lfa, Dlsa, Lfa};
use soma_model::Network;
use soma_obs::StreamingStats;
use soma_search::dlsa_stage::mutate_dlsa;
use soma_search::lfa_stage::{initial_lfa, mutate_lfa};
use soma_search::{CostWeights, DlsaEditor, Objective, SizeWeightedPicker};

/// One timed walk: completed evaluations and elapsed seconds.
struct Timed {
    evals: u64,
    elapsed_s: f64,
    final_cost: f64,
}

impl Timed {
    fn evals_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.evals as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Greedy stage-2 walk through the naive path: clone-per-proposal
/// mutation + full-report evaluation (the pre-engine inner loop).
fn stage2_naive(net: &Network, hw: &HardwareConfig, lfa: &Lfa, seed: u64, proposals: u64) -> Timed {
    let plan = parse_lfa(net, lfa).expect("probe LFA parses");
    let picker = SizeWeightedPicker::new(&plan);
    let mut obj = Objective::new(net, hw, CostWeights::default());
    let mut cur = Dlsa::double_buffer(&plan);
    let (mut cur_cost, _) = obj.eval_parts(&plan, &cur, hw.buffer_bytes).expect("init evaluates");
    let mut rng = StdRng::seed_from_u64(seed);

    let start = Instant::now();
    let evals_before = obj.evals();
    for _ in 0..proposals {
        let Some(cand) = mutate_dlsa(&plan, &cur, &picker, &mut rng) else { continue };
        let Some((cost, _)) = obj.eval_parts(&plan, &cand, hw.buffer_bytes) else { continue };
        if cost <= cur_cost {
            cur = cand;
            cur_cost = cost;
        }
    }
    Timed {
        evals: obj.evals() - evals_before,
        elapsed_s: start.elapsed().as_secs_f64(),
        final_cost: cur_cost,
    }
}

/// The same greedy stage-2 walk through the compiled engine: in-place
/// mutation with undo tokens, maintained occupancy profile,
/// allocation-free cost-only evaluation.
fn stage2_engine(
    net: &Network,
    hw: &HardwareConfig,
    lfa: &Lfa,
    seed: u64,
    proposals: u64,
) -> Timed {
    let plan = parse_lfa(net, lfa).expect("probe LFA parses");
    let picker = SizeWeightedPicker::new(&plan);
    let mut obj = Objective::new(net, hw, CostWeights::default());
    let init = Dlsa::double_buffer(&plan);
    let (mut cur_cost, _) = obj.eval_parts(&plan, &init, hw.buffer_bytes).expect("init evaluates");
    let compiled = obj.compile(&plan);
    let mut editor = DlsaEditor::new(&plan, init);
    let mut rng = StdRng::seed_from_u64(seed);

    let start = Instant::now();
    let evals_before = obj.evals();
    for _ in 0..proposals {
        let Some(token) = editor.propose(&picker, &mut rng) else { continue };
        match obj.eval_compiled_with_peak(&compiled, editor.dlsa(), editor.peak(), hw.buffer_bytes)
        {
            Some(cost) if cost <= cur_cost => cur_cost = cost,
            _ => editor.undo(token),
        }
    }
    Timed {
        evals: obj.evals() - evals_before,
        elapsed_s: start.elapsed().as_secs_f64(),
        final_cost: cur_cost,
    }
}

/// Greedy stage-1 walk: `mutate_lfa` proposals through the full-report
/// path (naive) or the cost-only engine path.
fn stage1_walk(
    net: &Network,
    hw: &HardwareConfig,
    seed: u64,
    proposals: u64,
    engine: bool,
) -> Timed {
    let mut obj = Objective::new(net, hw, CostWeights::default());
    let mut cur = initial_lfa(net, hw);
    let (mut cur_cost, ..) = obj.eval_lfa(&cur, hw.buffer_bytes).expect("initial LFA evaluates");
    let mut rng = StdRng::seed_from_u64(seed);

    let start = Instant::now();
    let evals_before = obj.evals();
    for _ in 0..proposals {
        let Some(cand) = mutate_lfa(net, &cur, &mut rng, false) else { continue };
        let cost = if engine {
            obj.eval_lfa_cost(&cand, hw.buffer_bytes)
        } else {
            obj.eval_lfa(&cand, hw.buffer_bytes).map(|(c, ..)| c)
        };
        let Some(cost) = cost else { continue };
        if cost <= cur_cost {
            cur = cand;
            cur_cost = cost;
        }
    }
    Timed {
        evals: obj.evals() - evals_before,
        elapsed_s: start.elapsed().as_secs_f64(),
        final_cost: cur_cost,
    }
}

/// Cross-seed aggregate of one (scenario, stage) pair's timings, built
/// on the shared `soma-obs` streaming aggregators (the same
/// implementation every other observability consumer uses — perfbench
/// no longer hand-rolls min/max/mean).
#[derive(Default)]
struct StageTimings {
    naive_eps: StreamingStats,
    engine_eps: StreamingStats,
    speedup: StreamingStats,
}

impl StageTimings {
    fn fold(&mut self, naive: &Timed, engine: &Timed) {
        self.naive_eps.observe(naive.evals_per_sec());
        self.engine_eps.observe(engine.evals_per_sec());
        if naive.evals_per_sec() > 0.0 {
            self.speedup.observe(engine.evals_per_sec() / naive.evals_per_sec());
        }
    }

    fn to_json(&self, scenario: &str, stage: &str) -> String {
        let dist = |s: &StreamingStats| {
            format!(
                "{{\"min\": {:.1}, \"max\": {:.1}, \"mean\": {:.1}}}",
                s.min(),
                s.max(),
                s.mean()
            )
        };
        format!(
            "    {{\"scenario\": \"{scenario}\", \"stage\": \"{stage}\", \"seeds\": {}, \
             \"naive_evals_per_sec\": {}, \"engine_evals_per_sec\": {}, \
             \"speedup\": {{\"min\": {:.2}, \"max\": {:.2}, \"mean\": {:.2}}}}}",
            self.naive_eps.count(),
            dist(&self.naive_eps),
            dist(&self.engine_eps),
            self.speedup.min(),
            self.speedup.max(),
            self.speedup.mean(),
        )
    }
}

fn json_row(
    out: &mut String,
    scenario: &str,
    stage: &str,
    seed: u64,
    proposals: u64,
    naive: &Timed,
    engine: &Timed,
) {
    let speedup = if naive.evals_per_sec() > 0.0 {
        engine.evals_per_sec() / naive.evals_per_sec()
    } else {
        0.0
    };
    let _ = write!(
        out,
        "    {{\"scenario\": \"{scenario}\", \"stage\": \"{stage}\", \"seed\": {seed}, \
         \"proposals\": {proposals}, \
         \"naive\": {{\"evals\": {}, \"elapsed_s\": {:.6}, \"evals_per_sec\": {:.1}}}, \
         \"engine\": {{\"evals\": {}, \"elapsed_s\": {:.6}, \"evals_per_sec\": {:.1}}}, \
         \"speedup\": {:.2}}}",
        naive.evals,
        naive.elapsed_s,
        naive.evals_per_sec(),
        engine.evals,
        engine.elapsed_s,
        engine.evals_per_sec(),
        speedup
    );
    eprintln!(
        "[perfbench] {scenario:<20} {stage:<5} seed {seed}: naive {:>9.1} evals/s, \
         engine {:>9.1} evals/s, speedup {:.2}x",
        naive.evals_per_sec(),
        engine.evals_per_sec(),
        speedup
    );
}

/// Times the `lab` orchestrator on one scenario: a cold run (full
/// search, fresh ledger) vs a warm rerun (100 % ledger hits — asserted).
/// The ratio is what a same-spec replay of an experiment campaign costs
/// after this PR: ledger I/O instead of search.
fn lab_cold_warm(rc: &RunConfig, scenario_id: &str) -> String {
    use soma_search::SearchConfig;

    let sc = soma_spec::registry::lookup(scenario_id).expect("registry scenario id");
    let spec = soma_spec::ExperimentSpec {
        name: format!("perf-{}", scenario_id.replace(['@', '/'], "-")),
        scenarios: vec![sc],
        workloads: vec![],
        hardware: vec![],
        batches: vec![],
        seeds: vec![rc.seed],
        config: SearchConfig {
            effort: 0.02 * rc.effort_scale,
            seed: rc.seed,
            stage2_cap: 50_000,
            max_allocator_iters: 4,
            ..SearchConfig::default()
        },
        parallelism: soma_search::Parallelism::Sequential,
    };
    let ledger = std::env::temp_dir().join(format!("{}.ledger.jsonl", spec.name));
    let _ = std::fs::remove_file(&ledger);

    let start = Instant::now();
    let cold = soma_bench::run_lab(&spec, &ledger, |_| {}).expect("cold lab run");
    let cold_s = start.elapsed().as_secs_f64();
    assert_eq!(cold.misses, 1, "{scenario_id}: cold run must search");

    let start = Instant::now();
    let warm = soma_bench::run_lab(&spec, &ledger, |_| {}).expect("warm lab run");
    let warm_s = start.elapsed().as_secs_f64();
    assert_eq!(
        (warm.hits, warm.misses),
        (1, 0),
        "{scenario_id}: warm rerun must be 100% ledger hits"
    );
    assert_eq!(
        warm.rows[0].outcome.best.cost.to_bits(),
        cold.rows[0].outcome.best.cost.to_bits(),
        "{scenario_id}: cached outcome diverged"
    );
    let _ = std::fs::remove_file(&ledger);

    let speedup = if warm_s > 0.0 { cold_s / warm_s } else { 0.0 };
    eprintln!(
        "[perfbench] {scenario_id:<20} lab: cold {cold_s:>8.3} s, warm {warm_s:>8.5} s \
         (replay speedup {speedup:.0}x)"
    );
    format!(
        "    {{\"scenario\": \"{scenario_id}\", \"seed\": {}, \"cells\": 1, \
         \"cold_s\": {cold_s:.6}, \"warm_s\": {warm_s:.6}, \"warm_hits\": 1, \
         \"replay_speedup\": {speedup:.1}}}",
        rc.seed
    )
}

/// Thread-count scaling of a seed-portfolio run: the same 4-seed
/// portfolio under `seq` and worker pools of 1/2/4/8 threads. Outcomes
/// are asserted bit-identical across all five runs before any timing is
/// reported (the `Parallelism` determinism contract), so the section
/// can only ever show wall-clock differences. `host_cores` records
/// what the machine can actually run concurrently — speedups are
/// bounded by it, not by the pool size.
fn scaling(rc: &RunConfig) -> String {
    use soma_search::{Parallelism, Scheduler, SearchConfig};

    let net = soma_model::zoo::fig2(1);
    let hw = HardwareConfig::edge();
    let seeds: Vec<u64> = (0..4).map(|i| rc.seed + i).collect();
    let cfg = SearchConfig { effort: 0.05 * rc.effort_scale, seed: rc.seed, ..Default::default() };
    let run = |par: Parallelism| {
        let start = Instant::now();
        let outcome = Scheduler::new(&net, &hw)
            .config(cfg.clone())
            .seeds(seeds.iter().copied())
            .parallelism(par)
            .run();
        (outcome, start.elapsed().as_secs_f64())
    };

    let (baseline, seq_s) = run(Parallelism::Sequential);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-core host every pool size serializes onto one CPU, so
    // the section can only measure pool overhead — stamp that into the
    // JSON so nobody reads the numbers as speedups.
    let warning = if host_cores == 1 {
        eprintln!(
            "[perfbench] warning: host reports a single core — scaling numbers measure \
             thread-pool overhead, not speedup"
        );
        ", \"warning\": \"single-core host: runs measure pool overhead, not speedup\""
    } else {
        ""
    };
    let mut entries =
        vec![format!("{{\"threads\": \"seq\", \"elapsed_s\": {seq_s:.6}, \"speedup\": 1.00}}")];
    eprintln!(
        "[perfbench] scaling fig2@edge/b1 x4 seeds: seq {seq_s:>8.3} s (host cores: {host_cores})"
    );
    for n in [1usize, 2, 4, 8] {
        let (outcome, s) = run(Parallelism::Fixed(n));
        assert_eq!(
            outcome.best.cost.to_bits(),
            baseline.best.cost.to_bits(),
            "{n}-thread portfolio diverged from sequential"
        );
        assert_eq!(outcome.evals, baseline.evals, "{n}-thread eval count diverged");
        let speedup = if s > 0.0 { seq_s / s } else { 0.0 };
        entries.push(format!(
            "{{\"threads\": \"{n}\", \"elapsed_s\": {s:.6}, \"speedup\": {speedup:.2}}}"
        ));
        eprintln!(
            "[perfbench] scaling fig2@edge/b1 x4 seeds: {n:>3} thr {s:>8.3} s ({speedup:.2}x)"
        );
    }
    format!(
        "    {{\"scenario\": \"fig2@edge/b1\", \"seeds\": {}, \"host_cores\": {host_cores}\
         {warning}, \
         \"outcomes\": \"bit-identical across all thread counts (asserted)\", \
         \"runs\": [{}]}}",
        seeds.len(),
        entries.join(", ")
    )
}

/// Saturation of the serve daemon: an in-process daemon on a private
/// unix socket, a cold storm (distinct seeds — every request searches)
/// and then a cache storm (one request repeated — every answer comes
/// from the ledger). The `req_per_sec` ratio is what the
/// content-addressed cache buys a serving deployment on repeat traffic.
fn serve_section(rc: &RunConfig) -> String {
    use soma_bench::loadgen::{storm, StormConfig};
    use soma_serve::{start, Listen, ServerConfig};

    let dir = std::env::temp_dir().join("soma-perfbench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pid = std::process::id();
    let ledger = dir.join(format!("serve-{pid}.jsonl"));
    let _ = std::fs::remove_file(&ledger);
    let (clients, requests) = (4usize, 8usize);
    let handle = start(ServerConfig {
        max_inflight: clients,
        ..ServerConfig::new(Listen::Unix(dir.join(format!("serve-{pid}.sock"))), &ledger)
    })
    .expect("in-process serve daemon");

    let cold_cfg = StormConfig {
        listen: handle.listen().clone(),
        scenario: "fig2@edge/b1".into(),
        clients,
        requests,
        effort: 0.02 * rc.effort_scale,
        seed_base: rc.seed,
        distinct_seeds: true,
        progress: false,
    };
    let cached_cfg =
        StormConfig { requests: requests * 4, distinct_seeds: false, ..cold_cfg.clone() };
    let cold = storm(&cold_cfg).expect("cold storm");
    assert_eq!(cold.cached, 0, "cold storm must not hit the ledger");
    let cached = storm(&cached_cfg).expect("cache storm");
    assert_eq!(
        cached.cached, cached.completed,
        "cache storm must be answered entirely from the ledger"
    );
    handle.shutdown();
    let _ = std::fs::remove_file(&ledger);

    eprintln!(
        "[perfbench] serve fig2@edge/b1: cold {:>7.1} req/s, cached {:>7.1} req/s \
         (cache speedup {:.0}x)",
        cold.req_per_sec(),
        cached.req_per_sec(),
        if cold.req_per_sec() > 0.0 { cached.req_per_sec() / cold.req_per_sec() } else { 0.0 }
    );
    format!(
        "    {{\"scenario\": \"fig2@edge/b1\", \"clients\": {clients}, \"phases\": [\n\
         \x20   {},\n\x20   {}\n\x20   ]}}",
        cold.to_json("cold"),
        cached.to_json("cached")
    )
}

/// Ledger format shoot-out: the same synthetic campaign written as v2
/// JSONL and as the v3 binary shard directory, comparing on-disk size
/// and cold-replay (load) time. The binary load must decode **zero**
/// outcome payloads — replay cost is indexing, not parsing — which is
/// asserted before any number is reported.
fn ledger_section(rc: &RunConfig) -> String {
    use soma_bench::lab::{Ledger, LedgerRow};
    use soma_search::synthetic_outcome;

    let n = ((100_000.0 * rc.effort_scale) as u64).max(1_000);
    let dir = std::env::temp_dir().join("soma-perfbench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pid = std::process::id();
    let jsonl = dir.join(format!("ledger-{pid}.jsonl"));
    let binary = dir.join(format!("ledger-{pid}.ledger"));
    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_dir_all(&binary);

    let synth = |i: u64| {
        let hash = format!("{:016x}", i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        LedgerRow::from_parts(
            &hash,
            &format!("cell-{i}"),
            "synthetic",
            "edge",
            1,
            synthetic_outcome(rc.seed.wrapping_add(i), 4),
        )
    };
    let rows: Vec<LedgerRow> = (0..n).map(synth).collect();

    let mut led = Ledger::load(&jsonl).expect("jsonl ledger");
    led.append_all(rows.to_vec()).expect("jsonl append");
    drop(led);
    let mut led = Ledger::load(&binary).expect("binary ledger");
    led.append_all(rows).expect("binary append");
    led.sync_index().expect("index sync");
    drop(led);

    let jsonl_bytes = std::fs::metadata(&jsonl).expect("jsonl size").len();
    let binary_bytes: u64 = std::fs::read_dir(&binary)
        .expect("binary dir")
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();

    let t = Instant::now();
    let led = Ledger::load_readonly(&jsonl).expect("jsonl replay");
    assert_eq!(led.len() as u64, n, "jsonl replay lost rows");
    let jsonl_replay_s = t.elapsed().as_secs_f64();
    drop(led);

    let t = Instant::now();
    let led = Ledger::load_readonly(&binary).expect("binary replay");
    assert_eq!(led.len() as u64, n, "binary replay lost rows");
    let binary_replay_s = t.elapsed().as_secs_f64();
    assert_eq!(led.outcome_decodes(), 0, "an index-backed replay must decode zero payloads");
    drop(led);

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_dir_all(&binary);

    let size_ratio = jsonl_bytes as f64 / binary_bytes.max(1) as f64;
    let speedup = if binary_replay_s > 0.0 { jsonl_replay_s / binary_replay_s } else { 0.0 };
    eprintln!(
        "[perfbench] ledger {n} cells: jsonl {:.1} MiB / {:.0} ms replay, \
         binary {:.1} MiB / {:.0} ms replay ({size_ratio:.2}x smaller, {speedup:.1}x faster)",
        jsonl_bytes as f64 / (1024.0 * 1024.0),
        jsonl_replay_s * 1e3,
        binary_bytes as f64 / (1024.0 * 1024.0),
        binary_replay_s * 1e3,
    );
    format!(
        "    {{\"cells\": {n}, \
         \"jsonl\": {{\"bytes\": {jsonl_bytes}, \"cold_replay_ms\": {:.3}}}, \
         \"binary\": {{\"bytes\": {binary_bytes}, \"cold_replay_ms\": {:.3}, \
         \"decodes_on_load\": 0}}, \
         \"size_ratio\": {size_ratio:.3}, \"replay_speedup\": {speedup:.3}}}",
        jsonl_replay_s * 1e3,
        binary_replay_s * 1e3,
    )
}

fn main() {
    let rc = RunConfig::from_env_or_exit();
    let hw = HardwareConfig::edge();
    // (name, network, stage-2 probe LFA, stage-2 proposals, stage-1 proposals)
    let nets: Vec<(&str, Network)> =
        vec![("fig2", soma_model::zoo::fig2(1)), ("resnet50", soma_model::zoo::resnet50(1))];
    let seeds: Vec<u64> = (0..3).map(|i| rc.seed + i).collect();

    let mut rows: Vec<String> = Vec::new();
    let mut aggregates: BTreeMap<(String, &str), StageTimings> = BTreeMap::new();
    for (name, net) in &nets {
        // Rows are keyed by registry scenario id (the probe runs on
        // `@edge/b1`), which is also what `SOMA_WORKLOAD` matches.
        let scenario = soma_bench::scenario_key(&hw, net.name(), 1);
        if !rc.selects_id(&scenario) {
            continue;
        }
        let probe_lfa = initial_lfa(net, &hw);
        let (s2_proposals, s1_proposals) =
            if *name == "fig2" { (20_000, 3_000) } else { (2_000, 120) };
        let s2_proposals = ((s2_proposals as f64 * rc.effort_scale) as u64).max(200);
        let s1_proposals = ((s1_proposals as f64 * rc.effort_scale) as u64).max(20);

        for &seed in &seeds {
            // Stage 2: the hot loop the engine was built for. Both walks
            // follow the same seed; diverging final costs would mean the
            // engine is fast but wrong.
            let naive = stage2_naive(net, &hw, &probe_lfa, seed, s2_proposals);
            let engine = stage2_engine(net, &hw, &probe_lfa, seed, s2_proposals);
            assert_eq!(
                naive.final_cost.to_bits(),
                engine.final_cost.to_bits(),
                "{name} seed {seed}: engine diverged from naive walk"
            );
            let mut row = String::new();
            json_row(&mut row, &scenario, "dlsa", seed, s2_proposals, &naive, &engine);
            rows.push(row);
            aggregates.entry((scenario.clone(), "dlsa")).or_default().fold(&naive, &engine);

            // Stage 1: dominated by parsing either way; the engine only
            // drops the report build.
            let naive = stage1_walk(net, &hw, seed, s1_proposals, false);
            let engine = stage1_walk(net, &hw, seed, s1_proposals, true);
            assert_eq!(
                naive.final_cost.to_bits(),
                engine.final_cost.to_bits(),
                "{name} seed {seed}: stage-1 engine diverged"
            );
            let mut row = String::new();
            json_row(&mut row, &scenario, "lfa", seed, s1_proposals, &naive, &engine);
            rows.push(row);
            aggregates.entry((scenario.clone(), "lfa")).or_default().fold(&naive, &engine);
        }
    }

    // Cold-vs-warm `lab` orchestrator timings: what a same-spec replay
    // costs once the run ledger is populated.
    let mut lab_rows: Vec<String> = Vec::new();
    for scenario in ["fig2@edge/b1", "resnet50@edge/b1"] {
        if rc.selects_id(scenario) {
            lab_rows.push(lab_cold_warm(&rc, scenario));
        }
    }

    println!("{{");
    println!("  \"bench\": \"search_throughput\",");
    println!("  \"unit\": \"completed schedule evaluations per second\",");
    println!(
        "  \"config\": {{\"base_seed\": {}, \"effort_scale\": {}, \"platform\": \"{}\"}},",
        rc.seed, rc.effort_scale, hw.name
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    // Cross-seed aggregates per (scenario, stage), via soma-obs stats.
    let agg_rows: Vec<String> = aggregates
        .iter()
        .map(|((scenario, stage), t)| {
            eprintln!(
                "[perfbench] {scenario:<20} {stage:<5} aggregate over {} seed(s): \
                 engine {:>9.1} evals/s mean, speedup {:.2}x mean",
                t.engine_eps.count(),
                t.engine_eps.mean(),
                t.speedup.mean()
            );
            t.to_json(scenario, stage)
        })
        .collect();
    println!("  \"aggregate\": [");
    println!("{}", agg_rows.join(",\n"));
    println!("  ],");
    println!("  \"lab\": [");
    println!("{}", lab_rows.join(",\n"));
    println!("  ],");
    println!("  \"scaling\": [");
    println!("{}", scaling(&rc));
    println!("  ],");
    println!("  \"serve\": [");
    println!("{}", serve_section(&rc));
    println!("  ],");
    println!("  \"ledger\": [");
    println!("{}", ledger_section(&rc));
    println!("  ]");
    println!("}}");
}
