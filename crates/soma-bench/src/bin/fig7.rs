//! Fig. 7: design-space exploration over DRAM bandwidth x buffer size for
//! the 16-TOPS edge accelerator, per workload and batch size, for both
//! Cocco and SoMa.
//!
//! CSV columns: `scenario,scheduler,workload,batch,buffer_mib,dram_gbps,`
//! `latency_cycles,latency_ms`. The scenario key names the *resolved*
//! sweep platform (`resnet50@edge-8MB-32GBps/b4`); `SOMA_WORKLOAD`
//! filters against it, so `@edge-8MB` selects one buffer size.
//!
//! The paper's insights to reproduce: at batch 1 latency tracks bandwidth
//! and barely responds to buffer size; as batch grows, buffer size
//! substitutes for bandwidth under SoMa (the red "envelope" triangle),
//! but not under Cocco.
//!
//! Environment: `SOMA_FULL=1` for the full grid, `SOMA_WORKLOAD` to
//! restrict to one workload name substring, `SOMA_THREADS` for the
//! thread policy (`auto`/`seq`/N; cell order on stdout either way).

use soma_arch::HardwareConfig;
use soma_bench::{salt, scenario_key, RunConfig};
use soma_model::zoo;
use soma_search::Scheduler;

fn grids(rc: &RunConfig) -> (Vec<u64>, Vec<f64>) {
    if rc.full {
        (vec![2, 4, 8, 16, 32, 64], vec![4.0, 8.0, 16.0, 32.0, 64.0, 128.0])
    } else {
        (vec![4, 8, 32], vec![8.0, 16.0, 64.0])
    }
}

fn main() {
    let rc = RunConfig::from_env_or_exit();
    let (buffers, bandwidths) = grids(&rc);

    println!("scenario,scheduler,workload,batch,buffer_mib,dram_gbps,latency_cycles,latency_ms");

    struct Cell {
        scenario: String,
        net: soma_model::Network,
        hw: HardwareConfig,
        batch: u32,
        mib: u64,
        gbps: f64,
    }
    let mut cells = Vec::new();
    for batch in rc.batch_sizes() {
        for net in zoo::edge_suite(batch) {
            for &mib in &buffers {
                for &gbps in &bandwidths {
                    // Built once: the same config names the scenario key
                    // and runs the cell, so the two can never diverge.
                    let hw = HardwareConfig::builder()
                        .like(&HardwareConfig::edge())
                        .name(format!("edge-{mib}MB-{gbps}GBps"))
                        .buffer_mib(mib)
                        .dram_gbps(gbps)
                        .build();
                    let scenario = scenario_key(&hw, net.name(), batch);
                    if rc.selects_id(&scenario) {
                        cells.push(Cell { scenario, net: net.clone(), hw, batch, mib, gbps });
                    }
                }
            }
        }
    }

    // One (csv, scenario) pair per cell under the configured thread
    // policy, printed in cell order afterwards — deterministic stdout.
    let work: Vec<&Cell> = cells.iter().collect();
    let rendered: Vec<(String, String)> = rc.threads.map_collect(work, |cell| {
        let hw = &cell.hw;
        let name = cell.net.name().to_string();
        let cfg = rc.config_for(
            &cell.net,
            salt(&[
                "fig7",
                &name,
                &cell.batch.to_string(),
                &cell.mib.to_string(),
                &cell.gbps.to_string(),
            ]),
        );
        let cocco = Scheduler::cocco(&cell.net, hw)
            .config(cfg.clone())
            .parallelism(rc.threads.nested())
            .run()
            .best;
        let soma = Scheduler::new(&cell.net, hw).config(cfg).parallelism(rc.threads.nested()).run();
        let mut rows = String::new();
        for (scheduler, cycles) in
            [("cocco", cocco.report.latency_cycles), ("soma", soma.best.report.latency_cycles)]
        {
            rows.push_str(&format!(
                "{},{scheduler},{name},{},{},{},{},{:.4}\n",
                cell.scenario,
                cell.batch,
                cell.mib,
                cell.gbps,
                cycles,
                hw.cycles_to_seconds(cycles) * 1e3
            ));
        }
        (rows, cell.scenario.clone())
    });
    for (rows, scenario) in rendered {
        print!("{rows}");
        eprintln!("[fig7] {scenario} done");
    }
}
