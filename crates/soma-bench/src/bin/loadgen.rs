//! Load generator for the serve daemon: either a saturation benchmark
//! (cold request storm, then a cache storm against the same daemon) or
//! a one-shot CI client.
//!
//! ```sh
//! # Self-contained benchmark: in-process daemon, cold + cached storms,
//! # JSON report on stdout.
//! cargo run --release -p soma-bench --bin loadgen
//!
//! # Storm an external daemon instead.
//! cargo run --release -p soma-bench --bin loadgen -- --connect unix:/tmp/soma.sock
//!
//! # CI smoke client: one request, retrying the connect while the
//! # daemon boots; `--expect-cached` fails (exit 1) unless the answer
//! # came from the ledger.
//! cargo run --release -p soma-bench --bin loadgen -- \
//!     --once --connect unix:/tmp/soma.sock --expect-cached
//! ```
//!
//! The storm phases share one scenario: the cold phase gives every
//! request a distinct seed (every request searches), the cached phase
//! repeats one request verbatim (everything after the first answer is
//! a ledger hit). The report's `req_per_sec` ratio between the two is
//! the saturation headline recorded in `BENCH_search.json`'s `serve`
//! section.

use std::process::ExitCode;
use std::time::Duration;

use soma_bench::loadgen::{storm, StormConfig};
use soma_serve::{start, Listen, RetryPolicy, ServerConfig, SubmitRequest, Target};

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--connect <unix:PATH|tcp:HOST:PORT>] [--scenario <id>] \
         [--requests N] [--clients N] [--effort F] [--seed N] \
         [--once [--expect-cached] [--retry-secs N]] [--stats] [--version]"
    );
    ExitCode::from(2)
}

struct Flags {
    connect: Option<Listen>,
    scenario: String,
    requests: usize,
    clients: usize,
    effort: f64,
    seed: u64,
    once: bool,
    expect_cached: bool,
    retry_secs: u64,
    stats: bool,
}

fn parse_flags() -> Result<Flags, ExitCode> {
    let mut flags = Flags {
        connect: None,
        scenario: "fig2@edge/b1".into(),
        requests: 24,
        clients: 6,
        effort: 0.02,
        seed: 2025,
        once: false,
        expect_cached: false,
        retry_secs: 10,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next().map(|v| v.parse()) {
                Some(Ok(l)) => flags.connect = Some(l),
                Some(Err(e)) => {
                    eprintln!("loadgen: --connect: {e}");
                    return Err(ExitCode::from(2));
                }
                None => return Err(usage()),
            },
            "--scenario" => match args.next() {
                Some(s) => flags.scenario = s,
                None => return Err(usage()),
            },
            "--requests" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => flags.requests = n,
                _ => return Err(usage()),
            },
            "--clients" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => flags.clients = n,
                _ => return Err(usage()),
            },
            "--effort" => match args.next().map(|v| v.parse()) {
                Some(Ok(f)) => flags.effort = f,
                _ => return Err(usage()),
            },
            "--seed" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => flags.seed = n,
                _ => return Err(usage()),
            },
            "--retry-secs" => match args.next().map(|v| v.parse()) {
                Some(Ok(n)) => flags.retry_secs = n,
                _ => return Err(usage()),
            },
            "--once" => flags.once = true,
            "--expect-cached" => flags.expect_cached = true,
            "--stats" => flags.stats = true,
            _ => return Err(usage()),
        }
    }
    Ok(flags)
}

/// The shared retry schedule for the CI-client modes: attempts sized so
/// the worst-case backoff sum roughly matches `--retry-secs`, jitter
/// seeded from `--seed` so a smoke run replays bit-identically.
fn retry_policy(flags: &Flags) -> RetryPolicy {
    RetryPolicy {
        attempts: u32::try_from(flags.retry_secs).unwrap_or(u32::MAX).max(1).saturating_add(2),
        base_delay: Duration::from_millis(200),
        max_delay: Duration::from_secs(1),
        jitter_seed: flags.seed,
    }
}

/// One-shot CI client: submit through the shared [`RetryPolicy`] (which
/// rides out daemon boot, restarts and queue-full pushback), and
/// optionally require the ledger-cached answer.
fn once(flags: &Flags) -> ExitCode {
    let Some(listen) = &flags.connect else {
        eprintln!("loadgen: --once needs --connect");
        return ExitCode::from(2);
    };
    let req = SubmitRequest {
        id: "once".into(),
        target: Target::Scenario(flags.scenario.clone()),
        seeds: vec![flags.seed],
        effort: Some(flags.effort),
        progress: false,
        deadline_ms: None,
    };
    let sub = match retry_policy(flags).submit(listen, &req) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: submit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some((reason, detail)) = &sub.rejection {
        eprintln!("loadgen: rejected ({}): {detail}", reason.as_str());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "loadgen: {} answered (hash {}, cached: {})",
        flags.scenario,
        sub.hash.as_deref().unwrap_or("?"),
        sub.cached
    );
    if flags.expect_cached && !sub.cached {
        eprintln!("loadgen: --expect-cached: the answer was searched, not served from the ledger");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Prints the daemon's counters as one JSON line on stdout — the CI
/// chaos gate asserts the failure counters (`panics`, `cancelled`,
/// `quarantined`) from this output.
fn stats(flags: &Flags) -> ExitCode {
    let Some(listen) = &flags.connect else {
        eprintln!("loadgen: --stats needs --connect");
        return ExitCode::from(2);
    };
    let mut client = match retry_policy(flags).connect(listen) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: cannot connect to {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.stats() {
        Ok(s) => {
            // Compact, no spaces: the same shape as the wire frame, so
            // shell gates can grep for `"quarantined":1` verbatim.
            // `uptime_ms` goes last — never between the grepped fields.
            println!(
                "{{\"inflight\":{},\"served\":{},\"cache_hits\":{},\"rejected\":{},\
                 \"ledger_rows\":{},\"cancelled\":{},\"panics\":{},\"quarantined\":{},\
                 \"uptime_ms\":{}}}",
                s.inflight,
                s.served,
                s.cache_hits,
                s.rejected,
                s.ledger_rows,
                s.cancelled,
                s.panics,
                s.quarantined,
                s.uptime_ms
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen: stats failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--version") {
        println!("{}", soma_bench::version_line("loadgen"));
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(code) => return code,
    };
    if flags.stats {
        return stats(&flags);
    }
    if flags.once {
        return once(&flags);
    }

    // Benchmark mode: aim at an external daemon, or spin a private
    // in-process one on a unix socket with a fresh ledger.
    let mut handle = None;
    let listen = match &flags.connect {
        Some(l) => l.clone(),
        None => {
            let dir = std::env::temp_dir().join("soma-loadgen");
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("loadgen: {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let pid = std::process::id();
            let ledger = dir.join(format!("{pid}.jsonl"));
            let _ = std::fs::remove_file(&ledger);
            let config = ServerConfig {
                max_inflight: flags.clients.max(1),
                ..ServerConfig::new(Listen::Unix(dir.join(format!("{pid}.sock"))), &ledger)
            };
            match start(config) {
                Ok(h) => {
                    let l = h.listen().clone();
                    handle = Some(h);
                    l
                }
                Err(e) => {
                    eprintln!("loadgen: cannot start in-process daemon: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let cold_cfg = StormConfig {
        listen: listen.clone(),
        scenario: flags.scenario.clone(),
        clients: flags.clients,
        requests: flags.requests,
        effort: flags.effort,
        seed_base: flags.seed,
        distinct_seeds: true,
        progress: false,
    };
    // The cache storm repeats one seed the cold storm already answered,
    // so every one of its requests is a ledger hit.
    let cached_cfg = StormConfig { distinct_seeds: false, ..cold_cfg.clone() };

    eprintln!(
        "[loadgen] {} on {listen}: {} request(s) x {} client(s), effort {}",
        flags.scenario, flags.requests, flags.clients, flags.effort
    );
    let report = |phase: &str, cfg: &StormConfig| match storm(cfg) {
        Ok(r) => {
            eprintln!(
                "[loadgen] {phase:<6} {:>7.1} req/s  p50 {:>9.3} ms  p99 {:>9.3} ms  \
                 ({} completed, {} cached, {} rejected)",
                r.req_per_sec(),
                r.percentile_ms(50.0),
                r.percentile_ms(99.0),
                r.completed,
                r.cached,
                r.rejected
            );
            Ok(r)
        }
        Err(e) => {
            eprintln!("loadgen: {phase} storm failed: {e}");
            Err(ExitCode::FAILURE)
        }
    };
    let cold = match report("cold", &cold_cfg) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let cached = match report("cached", &cached_cfg) {
        Ok(r) => r,
        Err(code) => return code,
    };

    println!("{{");
    println!("  \"bench\": \"serve_saturation\",");
    println!(
        "  \"config\": {{\"scenario\": \"{}\", \"clients\": {}, \"requests\": {}, \
         \"effort\": {}, \"listen\": \"{listen}\"}},",
        flags.scenario, flags.clients, flags.requests, flags.effort
    );
    println!("  \"phases\": [");
    println!("    {},", cold.to_json("cold"));
    println!("    {}", cached.to_json("cached"));
    println!("  ]");
    println!("}}");

    if let Some(h) = handle.take() {
        h.shutdown();
    }
    ExitCode::SUCCESS
}
