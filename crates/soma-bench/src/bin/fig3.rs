//! Fig. 3: normalised DRAM access vs normalised operations, per layer
//! (a, b) and per Cocco-scheduled tile (c, d), for ResNet-50 and
//! Transformer-Large on the default edge accelerator at batch 1.
//!
//! CSV columns: `panel,scenario,item,dram_norm,ops_norm`, keyed by the
//! registry scenario id (both panels run on `@edge/b1`).
//! The paper's observation to reproduce: the per-tile clouds (c, d) are
//! *more spread out* than the per-layer clouds (a, b) — fusion
//! concentrates DRAM demand on weight-loading tiles and leaves many tiles
//! with zero DRAM demand.

use soma_arch::HardwareConfig;
use soma_bench::{salt, scenario_key, RunConfig};
use soma_core::parse_lfa;
use soma_model::stats::{layer_stats, normalize, std_dev};
use soma_model::zoo;
use soma_search::Scheduler;

fn main() {
    let rc = RunConfig::from_env_or_exit();
    let hw = HardwareConfig::edge();
    println!("panel,scenario,item,dram_norm,ops_norm");

    let nets = [zoo::resnet50(1), zoo::transformer_large(1, 512)];
    let nets: Vec<(String, &soma_model::Network)> =
        nets.iter().map(|n| (scenario_key(&hw, n.name(), 1), n)).collect();
    for (idx, (name, net)) in nets.iter().enumerate() {
        // Panels (a)/(b): per-layer.
        let stats = layer_stats(net);
        let pts: Vec<(u64, u64)> = stats.iter().map(|s| (s.dram_bytes, s.ops)).collect();
        let norm = normalize(&pts);
        for (i, p) in norm.iter().enumerate() {
            println!("layer,{name},{i},{:.6},{:.6}", p.dram, p.ops);
        }
        let layer_spread = std_dev(&norm.iter().map(|p| p.dram).collect::<Vec<_>>());

        // Panels (c)/(d): per-tile under the Cocco schedule.
        let cfg = rc.config_for(net, salt(&["fig3", name]));
        let cocco = Scheduler::cocco(net, &hw).config(cfg).run().best;
        let plan = parse_lfa(net, &cocco.encoding.lfa).expect("cocco scheme parses");
        // Attribute DRAM tensor bytes to their anchor tiles.
        let mut tile_dram = vec![0u64; plan.n_tiles() as usize];
        for t in &plan.dram_tensors {
            tile_dram[t.anchor as usize] += t.bytes;
        }
        let tile_pts: Vec<(u64, u64)> =
            plan.tiles.iter().zip(&tile_dram).map(|(t, &d)| (d, t.ops)).collect();
        let tnorm = normalize(&tile_pts);
        for (i, p) in tnorm.iter().enumerate() {
            println!("tile,{name},{i},{:.6},{:.6}", p.dram, p.ops);
        }
        let tile_spread = std_dev(&tnorm.iter().map(|p| p.dram).collect::<Vec<_>>());
        let zero_dram = tnorm.iter().filter(|p| p.dram == 0.0).count();

        eprintln!(
            "[fig3:{}] {name}: layer dram-spread {:.3}, tile dram-spread {:.3}, \
             tiles with zero DRAM demand {}/{} (paper: tiles more spread out)",
            if idx == 0 { "a/c" } else { "b/d" },
            layer_spread,
            tile_spread,
            zero_dram,
            tnorm.len()
        );
    }
}
