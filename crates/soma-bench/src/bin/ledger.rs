//! Ledger toolbox: inspect, migrate and compact run ledgers without
//! running a campaign.
//!
//! ```sh
//! # Inspect: format, row count, health, per-shard breakdown. Always a
//! # read-only load — `stat` on a live campaign is safe.
//! cargo run --release -p soma-bench --bin ledger -- stat target/lab/fig2.ledger
//!
//! # Migrate between formats (v1/v2 JSONL <-> binary v3). The target
//! # must not exist; the source is never touched.
//! cargo run --release -p soma-bench --bin ledger -- \
//!     migrate target/lab/fig2.jsonl target/lab/fig2.ledger
//!
//! # Compact in place: drop shadowed duplicate-hash rows and rows from
//! # stale engine versions, rewrite shards, rebuild the index.
//! cargo run --release -p soma-bench --bin ledger -- compact target/lab/fig2.ledger
//! ```
//!
//! Exit codes: `0` ok, `2` usage or I/O error.

use std::path::Path;
use std::process::ExitCode;

use soma_bench::lab::Ledger;
use soma_spec::LedgerFormat;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ledger stat <path> | ledger migrate <src> <dst> | ledger compact <path> \
         | ledger --version"
    );
    ExitCode::from(2)
}

fn stat(path: &Path) -> ExitCode {
    let ledger = match Ledger::load_readonly(path) {
        Ok(ledger) => ledger,
        Err(e) => {
            eprintln!("ledger: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let h = ledger.health();
    println!("ledger:     {}", path.display());
    println!("format:     {}", ledger.format());
    println!("rows:       {}", ledger.len());
    println!(
        "health:     {} kept, {} quarantined, truncated: {}, {} duplicate(s)",
        h.kept, h.quarantined, h.truncated, h.duplicates
    );
    if ledger.format() == LedgerFormat::Binary {
        for (shard, sh) in ledger.shard_healths().iter().enumerate() {
            if sh.kept == 0 && sh.quarantined == 0 && !sh.truncated {
                continue;
            }
            println!(
                "shard-{shard:x}:    {} kept, {} quarantined, truncated: {}",
                sh.kept, sh.quarantined, sh.truncated
            );
        }
    }
    if !h.is_clean() {
        println!("quarantine: {}", soma_spec::quarantine_path(path).display());
    }
    ExitCode::SUCCESS
}

fn migrate(src: &Path, dst: &Path) -> ExitCode {
    match Ledger::migrate(src, dst) {
        Ok(stats) => {
            eprintln!(
                "[ledger] migrated {} row(s): {} ({}) -> {} ({})",
                stats.rows,
                src.display(),
                stats.from,
                dst.display(),
                stats.to
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ledger: migrate {} -> {}: {e}", src.display(), dst.display());
            ExitCode::from(2)
        }
    }
}

fn compact(path: &Path) -> ExitCode {
    let mut ledger = match Ledger::load(path) {
        Ok(ledger) => ledger,
        Err(e) => {
            eprintln!("ledger: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match ledger.compact() {
        Ok(stats) => {
            eprintln!(
                "[ledger] compacted {}: {} kept, {} duplicate(s) dropped, \
                 {} stale-engine row(s) dropped",
                path.display(),
                stats.kept,
                stats.dropped_duplicates,
                stats.dropped_stale_engine
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ledger: compact {}: {e}", path.display());
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("{}", soma_bench::version_line("ledger"));
        return ExitCode::SUCCESS;
    }
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["stat", path] => stat(Path::new(path)),
        ["migrate", src, dst] => migrate(Path::new(src), Path::new(dst)),
        ["compact", path] => compact(Path::new(path)),
        _ => usage(),
    }
}
