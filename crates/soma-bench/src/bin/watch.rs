//! Live campaign observability: watch a running (or finished) `lab`
//! campaign through its run ledger.
//!
//! ```sh
//! # Replay a finished campaign: final cell grid, hit-rate line,
//! # per-scenario best-cost table. The ledger may be a binary shard
//! # directory (`<name>.ledger`) or a JSONL file (`<name>.jsonl`).
//! cargo run --release -p soma-bench --bin watch -- target/lab/fig-pair-edge.ledger
//!
//! # Attach to a running lab: ANSI repaint loop tailing the ledger.
//! # Type a scenario id (or a unique hash prefix) + Enter for the
//! # cell's Gantt drill-down; `q` + Enter quits.
//! cargo run --release -p soma-bench --bin watch -- \
//!     target/lab/fig-pair-edge.ledger --follow --spec specs/fig_pair_edge.soma
//!
//! # CI: headless replay + machine-readable campaign summary
//! # (specs/SUMMARY.md), with an optional best-cost trend gate.
//! cargo run --release -p soma-bench --bin watch -- \
//!     target/lab/fig-pair-edge.ledger --headless --summary out/summary.json \
//!     --check-baseline ci/summary.baseline.json --tolerance 0.05
//! ```
//!
//! Every load here is **read-only** ([`Ledger::load_readonly`]): watch
//! is an observer, and an observer racing a live writer must never
//! repair — or even touch — the ledger's bytes.
//!
//! The frame is a pure function of the ledger contents
//! (`soma_obs::WatchModel`): replaying a finished ledger renders
//! exactly the final frame a live watch of the same campaign showed —
//! the equivalence the golden tests pin.
//!
//! Exit codes: `0` ok, `2` usage or I/O error, `5` the trend gate
//! found a best-cost regression beyond tolerance.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use soma_bench::lab::Ledger;
use soma_obs::summary::CampaignSummary;
use soma_obs::{gantt_for_row, LabEvent, WatchModel};
use soma_serve::shutdown;
use soma_spec::read_experiment;

fn usage() -> ExitCode {
    eprintln!(
        "usage: watch <ledger> [--follow] [--headless] [--spec <experiment.soma>] \
         [--summary <out.json>] [--name <campaign>] [--gantt <cell-id|hash-prefix>] \
         [--width N] [--interval-ms N] [--check-baseline <summary.json>] [--tolerance F] \
         [--version]"
    );
    ExitCode::from(2)
}

struct Flags {
    ledger: PathBuf,
    follow: bool,
    headless: bool,
    spec: Option<PathBuf>,
    summary: Option<PathBuf>,
    name: Option<String>,
    gantt: Option<String>,
    width: usize,
    interval_ms: u64,
    baseline: Option<PathBuf>,
    tolerance: f64,
}

fn parse_flags() -> Result<Flags, ExitCode> {
    let mut ledger = None;
    let mut flags = Flags {
        ledger: PathBuf::new(),
        follow: false,
        headless: false,
        spec: None,
        summary: None,
        name: None,
        gantt: None,
        width: 80,
        interval_ms: 250,
        baseline: None,
        tolerance: 0.05,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => Ok(PathBuf::from(v)),
            None => Err(usage()),
        };
        match arg.as_str() {
            "--follow" => flags.follow = true,
            "--headless" => flags.headless = true,
            "--spec" => flags.spec = Some(path_arg(&mut args)?),
            "--summary" => flags.summary = Some(path_arg(&mut args)?),
            "--check-baseline" => flags.baseline = Some(path_arg(&mut args)?),
            "--name" => match args.next() {
                Some(v) => flags.name = Some(v),
                None => return Err(usage()),
            },
            "--gantt" => match args.next() {
                Some(v) => flags.gantt = Some(v),
                None => return Err(usage()),
            },
            "--width" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(w)) => flags.width = w.max(20),
                _ => return Err(usage()),
            },
            "--interval-ms" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => flags.interval_ms = ms.max(20),
                _ => return Err(usage()),
            },
            "--tolerance" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => flags.tolerance = t,
                _ => return Err(usage()),
            },
            _ if ledger.is_none() && !arg.starts_with('-') => ledger = Some(PathBuf::from(arg)),
            _ => return Err(usage()),
        }
    }
    match ledger {
        Some(path) => {
            flags.ledger = path;
            Ok(flags)
        }
        None => Err(usage()),
    }
}

/// Default campaign name: the ledger's file stem, minus a `.ledger`
/// suffix if present (`runs/fig.ledger.jsonl` → `fig`), so names match
/// the `lab` convention of `<campaign>.jsonl`.
fn campaign_name(ledger: &Path) -> String {
    let stem = ledger.file_stem().and_then(|s| s.to_str()).unwrap_or("campaign");
    stem.strip_suffix(".ledger").unwrap_or(stem).to_string()
}

/// Replays `ledger` rows into a fresh model, pre-queueing the spec's
/// cells first when one was given (so unresolved cells show as queued).
fn model_of(ledger: &Ledger, spec: Option<&soma_spec::ExperimentSpec>) -> WatchModel {
    let mut model = WatchModel::new();
    if let Some(spec) = spec {
        for cell in spec.cells() {
            let key = soma_bench::lab::cell_key(&cell, &spec.config, &spec.seeds);
            model.observe(&LabEvent::Queued { cell: cell.id.clone(), hash: key });
        }
    }
    for row in ledger.rows() {
        model.observe_row(row);
    }
    model
}

/// Resolves a drill-down command against the ledger: exact scenario id
/// first, then unique hash prefix.
fn drill(ledger: &Ledger, query: &str, width: usize) -> Result<String, String> {
    let rows = ledger.rows();
    let by_id: Vec<_> = rows.iter().filter(|r| r.cell == query).collect();
    if let Some(row) = by_id.last() {
        return gantt_for_row(row, width);
    }
    let by_hash: Vec<_> = rows.iter().filter(|r| r.hash.starts_with(query)).collect();
    match by_hash[..] {
        [row] => gantt_for_row(row, width),
        [] => Err(format!("no finished cell matches `{query}`")),
        _ => Err(format!("`{query}` is ambiguous ({} hash matches)", by_hash.len())),
    }
}

fn write_summary(path: &Path, summary: &CampaignSummary) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, format!("{}\n", summary.to_string_stable()))
}

/// Loads, parses and trend-checks a baseline summary; returns the
/// violation lines (empty = pass).
fn check_baseline(
    current: &CampaignSummary,
    path: &Path,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = serde::json::parse(text.trim())
        .map_err(|e| format!("{}: not valid JSON: {e}", path.display()))?;
    let baseline =
        CampaignSummary::from_json(&value).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(current.check_against(&baseline, tolerance))
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--version") {
        println!("{}", soma_bench::version_line("watch"));
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(code) => return code,
    };
    let spec = match &flags.spec {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| read_experiment(&text).map_err(|e| e.to_string()))
        {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("watch: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let name = flags.name.clone().unwrap_or_else(|| campaign_name(&flags.ledger));

    if flags.follow {
        follow(&flags, spec.as_ref())
    } else {
        replay(&flags, spec.as_ref(), &name)
    }
}

/// One-shot mode: load the ledger once, render the final frame, then
/// handle `--gantt`, `--summary` and the trend gate.
fn replay(flags: &Flags, spec: Option<&soma_spec::ExperimentSpec>, name: &str) -> ExitCode {
    // Observers never repair: a read-only load tolerates damage in
    // memory and leaves the file bytes to the writer that owns them.
    let ledger = match Ledger::load_readonly(&flags.ledger) {
        Ok(ledger) => ledger,
        Err(e) => {
            eprintln!("watch: {}: {e}", flags.ledger.display());
            return ExitCode::from(2);
        }
    };
    if let Some(query) = &flags.gantt {
        return match drill(&ledger, query, flags.width) {
            Ok(chart) => {
                print!("{chart}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("watch: {e}");
                ExitCode::from(2)
            }
        };
    }

    let model = model_of(&ledger, spec);
    print!("{}", model.render(flags.width));
    if !ledger.health().is_clean() || ledger.health().duplicates > 0 {
        let h = ledger.health();
        eprintln!(
            "[watch] ledger health: {} kept, {} quarantined, truncated: {}, {} duplicate(s)",
            h.kept, h.quarantined, h.truncated, h.duplicates
        );
    }

    // The canonical byte-stable artifact comes straight from the ledger
    // (specs/SUMMARY.md) — same cells the frame showed.
    let summary = CampaignSummary::from_ledger(name, &ledger);
    if let Some(path) = &flags.summary {
        if let Err(e) = write_summary(path, &summary) {
            eprintln!("watch: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[watch] summary written to {}", path.display());
    }
    if let Some(baseline) = &flags.baseline {
        match check_baseline(&summary, baseline, flags.tolerance) {
            Ok(violations) if violations.is_empty() => {
                eprintln!("[watch] trend gate: ok (tolerance {:.1}%)", flags.tolerance * 100.0);
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("watch: trend gate: {v}");
                }
                return ExitCode::from(5);
            }
            Err(e) => {
                eprintln!("watch: trend gate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Live mode: repaint on every ledger change, stop on completion (all
/// spec cells resolved), `q`, or SIGINT. Drill-down commands arrive as
/// stdin lines so the terminal stays in cooked mode throughout.
fn follow(flags: &Flags, spec: Option<&soma_spec::ExperimentSpec>) -> ExitCode {
    shutdown::install_signal_handlers();
    let name = flags.name.clone().unwrap_or_else(|| campaign_name(&flags.ledger));
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    let expected = spec.map(|s| {
        let mut keys: Vec<String> =
            s.cells().iter().map(|c| soma_bench::lab::cell_key(c, &s.config, &s.seeds)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    });
    let mut last_frame = String::new();
    let mut notice = String::new();
    loop {
        // A live campaign is appending to this file *right now*. A
        // writable load here could race the writer's half-flushed tail
        // and "repair" it away — follow mode must never mutate the
        // ledger, so every repaint is a read-only load.
        let ledger = match Ledger::load_readonly(&flags.ledger) {
            Ok(ledger) => ledger,
            Err(e) => {
                eprintln!("watch: {}: {e}", flags.ledger.display());
                return ExitCode::from(2);
            }
        };
        let model = model_of(&ledger, spec);
        let mut frame = model.render(flags.width);
        if !notice.is_empty() {
            frame.push_str(&notice);
        }
        frame.push_str("type a cell id (or hash prefix) + enter for its gantt; q quits\n");
        if frame != last_frame {
            if flags.headless {
                print!("{frame}");
            } else {
                // Clear + home + repaint: one write keeps tearing down.
                print!("\x1b[2J\x1b[H{frame}");
            }
            let _ = std::io::stdout().flush();
            last_frame = frame;
        }

        while let Ok(line) = rx.try_recv() {
            let query = line.trim();
            if query.is_empty() {
                continue;
            }
            if query == "q" || query == "quit" {
                return finish(flags, &name, &ledger);
            }
            notice = match drill(&ledger, query, flags.width) {
                Ok(chart) => format!("--- gantt {query} ---\n{chart}"),
                Err(e) => format!("[watch] {e}\n"),
            };
            last_frame.clear(); // force repaint with the drill result
        }

        let done = expected.is_some_and(|n| ledger.len() >= n);
        if done || shutdown::stop_requested() {
            return finish(flags, &name, &ledger);
        }
        std::thread::sleep(Duration::from_millis(flags.interval_ms));
    }
}

/// Shared tail of the follow mode: write the summary if asked, exit 0.
fn finish(flags: &Flags, name: &str, ledger: &Ledger) -> ExitCode {
    if let Some(path) = &flags.summary {
        let summary = CampaignSummary::from_ledger(name, ledger);
        if let Err(e) = write_summary(path, &summary) {
            eprintln!("watch: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[watch] summary written to {}", path.display());
    }
    ExitCode::SUCCESS
}
