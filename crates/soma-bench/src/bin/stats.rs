//! Sec. VI-B aggregate statistics ("stats.log" of the paper's artifact),
//! computed from a `fig6` CSV (default `results/fig6.csv`, or pass a
//! path):
//!
//! * average speedup of `Ours_1` and `Ours_2` over Cocco, and energy
//!   reduction;
//! * gap between `Ours_2` and the theoretical maximum utilisation;
//! * average LGs/FLGs/tiles per network (SoMa vs Cocco);
//! * GPT-2 decode utilisation vs batch size (the KV-cache saturation
//!   phenomenon).

use std::collections::BTreeMap;

#[derive(Debug, Clone, Default)]
struct Row {
    latency: f64,
    core_pj: f64,
    dram_pj: f64,
    util: f64,
    theo: f64,
    lgs: f64,
    flgs: f64,
    tiles: f64,
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "results/fig6.csv".into());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}; run the fig6 binary first"));

    // Refuse stale CSVs outright (same philosophy as the env knobs: no
    // silent defaults): the fig6 format is scenario-keyed since PR 4.
    let header = text.lines().next().unwrap_or("");
    assert!(
        header.starts_with("scenario,platform,workload,batch,scheme,"),
        "{path} has an unexpected header ({header:?}); regenerate it with the current fig6 binary"
    );

    // cell key = scenario id (fig6 column 0) -> scheme -> row; the
    // workload/batch columns are still read for the decode analysis.
    let mut cells: BTreeMap<(String, String, u32), BTreeMap<String, Row>> = BTreeMap::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 17 {
            continue;
        }
        let key = (f[0].to_string(), f[2].to_string(), f[3].parse().unwrap_or(0));
        let row = Row {
            latency: f[5].parse().unwrap_or(0.0),
            core_pj: f[6].parse().unwrap_or(0.0),
            dram_pj: f[7].parse().unwrap_or(0.0),
            util: f[8].parse().unwrap_or(0.0),
            theo: f[10].parse().unwrap_or(0.0),
            lgs: f[13].parse().unwrap_or(0.0),
            flgs: f[14].parse().unwrap_or(0.0),
            tiles: f[15].parse().unwrap_or(0.0),
        };
        cells.entry(key).or_default().insert(f[4].to_string(), row);
    }

    let mut speedup1 = Vec::new();
    let mut speedup2 = Vec::new();
    let mut energy_red = Vec::new();
    let mut core_red = Vec::new();
    let mut dram_red = Vec::new();
    let mut theo_gap = Vec::new();
    let mut soma_lgs = Vec::new();
    let mut soma_flgs = Vec::new();
    let mut soma_tiles = Vec::new();
    let mut cocco_lgs = Vec::new();
    let mut cocco_tiles = Vec::new();
    let mut decode_util: Vec<(String, u32, f64)> = Vec::new();

    for ((_scenario, workload, batch), schemes) in &cells {
        let (Some(c), Some(s1), Some(s2)) =
            (schemes.get("cocco"), schemes.get("ours_1"), schemes.get("ours_2"))
        else {
            continue;
        };
        speedup1.push(c.latency / s1.latency);
        speedup2.push(c.latency / s2.latency);
        let (ce, se) = (c.core_pj + c.dram_pj, s2.core_pj + s2.dram_pj);
        energy_red.push(1.0 - se / ce);
        if c.core_pj > 0.0 {
            core_red.push(1.0 - s1.core_pj / c.core_pj);
        }
        if c.dram_pj > 0.0 {
            dram_red.push(1.0 - s1.dram_pj / c.dram_pj);
        }
        if s2.theo > 0.0 {
            theo_gap.push(1.0 - s2.util / s2.theo);
        }
        soma_lgs.push(s2.lgs);
        soma_flgs.push(s2.flgs);
        soma_tiles.push(s2.tiles);
        cocco_lgs.push(c.lgs);
        cocco_tiles.push(c.tiles);
        if workload.contains("decode") {
            decode_util.push((workload.clone(), *batch, s2.util));
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("== SoMa vs Cocco over {} configurations (paper Sec. VI-B) ==", speedup2.len());
    println!("avg stage-1 speedup over Cocco:    {:.2}x  (paper: 1.82x)", avg(&speedup1));
    println!("avg stage-2 speedup over Cocco:    {:.2}x  (paper: 2.11x)", avg(&speedup2));
    println!(
        "avg stage2/stage1 improvement:     {:.2}x  (paper: 1.16x)",
        avg(&speedup2) / avg(&speedup1).max(1e-12)
    );
    println!("avg energy reduction vs Cocco:     {:.1}%  (paper: 37.3%)", 100.0 * avg(&energy_red));
    println!("avg stage-1 core-energy reduction: {:.1}%  (paper: 34.8%)", 100.0 * avg(&core_red));
    println!("avg stage-1 DRAM-energy reduction: {:.1}%  (paper: 44.3%)", 100.0 * avg(&dram_red));
    println!("avg gap to theoretical max util:   {:.1}%  (paper: 3.1%)", 100.0 * avg(&theo_gap));
    println!();
    println!(
        "avg LGs per network   SoMa {:.1} vs Cocco {:.1}  (paper: 2.5 vs 13.0)",
        avg(&soma_lgs),
        avg(&cocco_lgs)
    );
    println!("avg FLGs per network  SoMa {:.1}  (paper: 3.9)", avg(&soma_flgs));
    println!(
        "avg tiles per network SoMa {:.0} vs Cocco {:.0}  (paper: 751 vs 7962)",
        avg(&soma_tiles),
        avg(&cocco_tiles)
    );
    println!();
    println!("== GPT-2 decode utilisation vs batch (paper: 0.66/2.03/4.26/5.84% small; 0.60/1.90/4.13/5.83% XL) ==");
    decode_util.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    for (name, batch, util) in decode_util {
        println!("{name} batch {batch}: {:.2}%", 100.0 * util);
    }
}
