//! Ablation study over SoMa's design choices (the trade-offs DESIGN.md
//! calls out, complementing the paper's Sec. VII-B analysis):
//!
//! * `cocco` — the baseline (restricted space, heuristic tiling).
//! * `stage1_only` — SoMa's layer-fusion stage with double-buffer DLSA
//!   (the paper's `Ours_1`): isolates the fusion gains.
//! * `no_allocator` — full SoMa but a single Buffer Allocator round:
//!   isolates the allocator's buffer-rebalancing gains.
//! * `linked_cuts` — full SoMa but FLC set forced equal to the DRAM cut
//!   set: isolates the value of weight-shuffling FLCs (the paper's
//!   Sec. VII-B1 second lesson).
//! * `full` — the complete framework.
//!
//! CSV columns: `scenario,workload,batch,variant,latency_cycles,energy_pj,`
//! `cost`, keyed by registry scenario id (the study runs on `@edge`).

use soma_arch::HardwareConfig;
use soma_bench::{salt, scenario_key, RunConfig};
use soma_model::zoo;
use soma_search::{Scheduler, SearchConfig};

fn main() {
    let rc = RunConfig::from_env_or_exit();
    let hw = HardwareConfig::edge();
    println!("scenario,workload,batch,variant,latency_cycles,energy_pj,cost");

    for batch in [1u32, 4] {
        for net in [zoo::resnet50(batch), zoo::gpt2_small_prefill(batch, 512)] {
            let name = net.name().to_string();
            let scenario = scenario_key(&hw, &name, batch);
            if !rc.selects_id(&scenario) {
                continue;
            }
            let base = rc.config_for(&net, salt(&["ablation", &name, &batch.to_string()]));

            let cocco = Scheduler::cocco(&net, &hw).config(base.clone()).run().best;
            let full = Scheduler::new(&net, &hw).config(base.clone()).run();
            let no_alloc = Scheduler::new(&net, &hw)
                .config(SearchConfig { max_allocator_iters: 1, ..base.clone() })
                .run();
            let linked = Scheduler::new(&net, &hw)
                .config(SearchConfig { link_cuts: true, ..base.clone() })
                .run();

            let rows: Vec<(&str, u64, f64, f64)> = vec![
                ("cocco", cocco.report.latency_cycles, cocco.report.energy.total_pj(), cocco.cost),
                (
                    "stage1_only",
                    full.stage1.report.latency_cycles,
                    full.stage1.report.energy.total_pj(),
                    full.stage1.cost,
                ),
                (
                    "no_allocator",
                    no_alloc.best.report.latency_cycles,
                    no_alloc.best.report.energy.total_pj(),
                    no_alloc.best.cost,
                ),
                (
                    "linked_cuts",
                    linked.best.report.latency_cycles,
                    linked.best.report.energy.total_pj(),
                    linked.best.cost,
                ),
                (
                    "full",
                    full.best.report.latency_cycles,
                    full.best.report.energy.total_pj(),
                    full.best.cost,
                ),
            ];
            for (variant, lat, e, c) in &rows {
                println!("{scenario},{name},{batch},{variant},{lat},{e:.1},{c:.6e}");
            }
            let full_cost = rows.last().expect("rows non-empty").3;
            eprintln!(
                "[ablation] {scenario}: full vs cocco {:.2}x cost, vs linked {:.2}x, vs no-alloc {:.2}x",
                rows[0].3 / full_cost,
                rows[3].3 / full_cost,
                rows[2].3 / full_cost
            );
        }
    }
}
