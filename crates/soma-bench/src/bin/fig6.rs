//! Fig. 6: overall comparison of Cocco vs SoMa stage 1 (`Ours_1`) vs
//! SoMa stage 2 (`Ours_2`) across workloads, platforms and batch sizes.
//!
//! CSV columns: `scenario,platform,workload,batch,scheme,latency_cycles,`
//! `core_energy_pj,dram_energy_pj,compute_util,dram_util,`
//! `theoretical_max_util,avg_buffer_bytes,peak_buffer_bytes,`
//! `lgs,flgs,tiles,dram_tensors` (scheme shape, consumed by the `stats`
//! binary). Rows are keyed by the registry scenario id
//! (`<workload>@<preset>/b<batch>`), which is also what `SOMA_WORKLOAD`
//! filters against.
//!
//! Environment: `SOMA_FULL=1` sweeps batches {1,4,16,64} (paper grid),
//! `SOMA_EFFORT` scales search effort, `SOMA_THREADS` sets the thread
//! policy (`auto`/`seq`/N). Output rows are emitted in cell order
//! regardless of the policy, so the CSV is byte-identical across thread
//! counts.

use soma_bench::{platforms, salt, scenario_key, workloads, RunConfig};
use soma_core::parse_lfa;
use soma_model::Network;
use soma_search::{Evaluated, Scheduler};

fn row(
    scenario: &str,
    platform: &str,
    net: &Network,
    batch: u32,
    scheme: &str,
    e: &Evaluated,
) -> String {
    let r = &e.report;
    let plan = parse_lfa(net, &e.encoding.lfa).expect("reported scheme parses");
    format!(
        "{scenario},{platform},{},{batch},{scheme},{},{:.1},{:.1},{:.6},{:.6},{:.6},{},{},{},{},{},{}",
        net.name(),
        r.latency_cycles,
        r.energy.core_pj,
        r.energy.dram_pj,
        r.compute_util,
        r.dram_util,
        r.theoretical_max_util,
        r.avg_buffer,
        r.peak_buffer,
        plan.n_lgs(),
        plan.flgs.len(),
        plan.tiles.len(),
        plan.dram_tensors.len()
    )
}

fn main() {
    let rc = RunConfig::from_env_or_exit();
    println!(
        "scenario,platform,workload,batch,scheme,latency_cycles,core_energy_pj,dram_energy_pj,\
         compute_util,dram_util,theoretical_max_util,avg_buffer_bytes,peak_buffer_bytes,\
         lgs,flgs,tiles,dram_tensors"
    );

    // Build the work list: one cell per (platform, batch, workload),
    // keyed and filtered by registry scenario id.
    struct Cell {
        scenario: String,
        platform: soma_arch::HardwareConfig,
        batch: u32,
        net: soma_model::Network,
    }
    let mut cells = Vec::new();
    for platform in platforms() {
        for batch in rc.batch_sizes() {
            for net in workloads(&platform, batch) {
                let scenario = scenario_key(&platform, net.name(), batch);
                if rc.selects_id(&scenario) {
                    cells.push(Cell { scenario, platform: platform.clone(), batch, net });
                }
            }
        }
    }

    // Fan the cells out under the configured thread policy; collect
    // (csv, commentary) per cell and print in cell order so the output
    // is byte-identical whatever `SOMA_THREADS` says.
    let work: Vec<&Cell> = cells.iter().collect();
    let rendered: Vec<(String, String)> = rc.threads.map_collect(work, |cell| {
        let name = cell.net.name().to_string();
        let cfg = rc.config_for(
            &cell.net,
            salt(&["fig6", &cell.platform.name, &name, &cell.batch.to_string()]),
        );
        let cocco = Scheduler::cocco(&cell.net, &cell.platform)
            .config(cfg.clone())
            .parallelism(rc.threads.nested())
            .run()
            .best;
        let soma = Scheduler::new(&cell.net, &cell.platform)
            .config(cfg)
            .parallelism(rc.threads.nested())
            .run();
        let mut rows = String::new();
        for (scheme, e) in [("cocco", &cocco), ("ours_1", &soma.stage1), ("ours_2", &soma.best)] {
            rows.push_str(&row(
                &cell.scenario,
                &cell.platform.name,
                &cell.net,
                cell.batch,
                scheme,
                e,
            ));
            rows.push('\n');
        }
        let note = format!(
            "[fig6] {}: speedup {:.2}x (stage1 {:.2}x), energy -{:.1}%",
            cell.scenario,
            cocco.report.latency_cycles as f64 / soma.best.report.latency_cycles as f64,
            cocco.report.latency_cycles as f64 / soma.stage1.report.latency_cycles as f64,
            100.0 * (1.0 - soma.best.report.energy.total_pj() / cocco.report.energy.total_pj())
        );
        (rows, note)
    });
    for (rows, note) in rendered {
        print!("{rows}");
        eprintln!("{note}");
    }
}
