//! Fig. 8: practical execution graphs of Cocco, SoMa stage 1 and SoMa
//! stage 2, with DRAM cuts / FLCs / tiling numbers annotated — rendered as
//! ASCII DRAM-COMPUTE timelines.
//!
//! Default workload is a ResNet-50 prefix (full ResNet-50 renders but is
//! wide); pass a name substring to choose from the edge suite, e.g.
//! `cargo run --release --bin fig8 -- gpt2`, or set `SOMA_WORKLOAD`
//! (the positional argument wins).

use soma_arch::HardwareConfig;
use soma_bench::{salt, scenario_key, RunConfig};
use soma_core::ParsedSchedule;
use soma_model::zoo;
use soma_search::{Evaluated, Scheduler};
use soma_sim::render_gantt;

fn describe(net: &soma_model::Network, eval: &Evaluated) {
    let lfa = &eval.encoding.lfa;
    let ranges = lfa.flg_ranges();
    print!("FLGs: ");
    for (g, &(a, b)) in ranges.iter().enumerate() {
        let cut = if g > 0 && lfa.dram_cuts.contains(&a) {
            "||"
        } else if g > 0 {
            "|"
        } else {
            ""
        };
        print!("{cut}[T={}:", lfa.tiling[g]);
        for p in a..b {
            print!(" {}", net.layer(lfa.order[p]).name);
        }
        print!("] ");
    }
    println!("\n('||' = DRAM cut, '|' = FLC only)");
}

fn main() {
    let rc = RunConfig::from_env_or_exit();
    // Positional arg wins; `SOMA_WORKLOAD` is the shared-knob fallback.
    let pick = std::env::args()
        .nth(1)
        .or_else(|| (!rc.workload.is_empty()).then(|| rc.workload.clone()))
        .unwrap_or_else(|| "resnet".into());
    // Same matching contract as every other binary: case-insensitive
    // substring (`RunConfig::selects_id`) over the workload name.
    let net = zoo::edge_suite(1)
        .into_iter()
        .find(|n| n.name().to_ascii_lowercase().contains(&pick.to_ascii_lowercase()))
        .unwrap_or_else(|| {
            eprintln!("[fig8] no edge-suite workload matches `{pick}`; using the chain demo");
            zoo::chain(1, 64, 56, 8)
        });
    let hw = HardwareConfig::edge();
    let cfg = rc.config_for(&net, salt(&["fig8", net.name()]));
    let scenario = scenario_key(&hw, net.name(), 1);

    println!("scenario: {scenario}");
    eprintln!("[fig8] scheduling {scenario} (effort {:.3})...", cfg.effort);
    let cocco = Scheduler::cocco(&net, &hw).config(cfg.clone()).run().best;
    let soma = Scheduler::new(&net, &hw).config(cfg).run();

    for (title, eval) in
        [("Cocco", &cocco), ("SoMa first stage", &soma.stage1), ("SoMa second stage", &soma.best)]
    {
        println!("==== {title} ====");
        describe(&net, eval);
        let sched = ParsedSchedule::new(&net, &eval.encoding).expect("scheme parses");
        println!("{}", render_gantt(&net, &sched, &eval.report.timeline, 120));
        println!(
            "latency {} cycles | E*D cost {:.3e} | compute stall {} cycles\n",
            eval.report.latency_cycles,
            eval.cost,
            eval.report.timeline.compute_stall()
        );
    }
}
