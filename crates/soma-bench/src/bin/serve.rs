//! The scheduling-as-a-service daemon (`soma-serve` behind a binary):
//! listens on TCP or a unix socket, answers line-delimited JSON
//! scheduling requests, and keeps every fresh result in the same
//! content-addressed ledger the `lab` orchestrator uses — so repeat
//! requests come back bit-identical from disk, across restarts, with
//! `cached: true` and zero search work.
//!
//! ```sh
//! cargo run --release -p soma-bench --bin serve -- --listen unix:/tmp/soma.sock
//! cargo run --release -p soma-bench --bin serve -- \
//!     --listen tcp:127.0.0.1:7777 --ledger runs/serve.jsonl \
//!     --max-inflight 4 --budget 2000000
//! ```
//!
//! The wire protocol is specified in `specs/PROTOCOL.md`; the knob
//! table lives in README's "Serving" section. SIGINT/SIGTERM drain the
//! daemon gracefully: in-flight searches finish and flush, new submits
//! are refused with `shutting-down`, and the process exits 0 with a
//! clean, replayable ledger.
//!
//! `--chaos <seed>` arms the deterministic fault plan
//! ([`soma_spec::fault::FaultConfig::CHAOS`]) behind the ledger writer
//! and the response stream: torn/corrupted appends, dropped
//! connections mid-frame, injected search panics and slow cells — all
//! reproducible from the seed. Never the default; it exists for the CI
//! chaos gate and for soak-testing clients.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use soma_search::Parallelism;
use soma_serve::{shutdown, start, Listen, ServerConfig};
use soma_spec::fault::{FaultConfig, FaultPlan};

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve --listen <unix:PATH|tcp:HOST:PORT> [--ledger <path>] \
         [--max-inflight N] [--budget N] [--threads <auto|seq|N>] [--chaos <seed>] [--version]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--version") {
        println!("{}", soma_bench::version_line("serve"));
        return ExitCode::SUCCESS;
    }

    let mut listen: Option<Listen> = None;
    let mut ledger = PathBuf::from("target/serve/ledger.jsonl");
    let mut max_inflight = 8usize;
    let mut budget = 0u64;
    let mut parallelism = Parallelism::Auto;
    let mut chaos: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| args.next();
        match arg.as_str() {
            "--listen" => match value(&mut args).map(|v| v.parse()) {
                Some(Ok(l)) => listen = Some(l),
                Some(Err(e)) => {
                    eprintln!("serve: --listen: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--ledger" => match value(&mut args) {
                Some(p) => ledger = PathBuf::from(p),
                None => return usage(),
            },
            "--max-inflight" => match value(&mut args).map(|v| v.parse()) {
                Some(Ok(n)) => max_inflight = n,
                _ => return usage(),
            },
            "--budget" => match value(&mut args).map(|v| v.parse()) {
                Some(Ok(n)) => budget = n,
                _ => return usage(),
            },
            "--threads" => match value(&mut args).map(|v| v.parse()) {
                Some(Ok(par)) => parallelism = par,
                Some(Err(e)) => {
                    eprintln!("serve: --threads: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--chaos" => match value(&mut args).map(|v| v.parse()) {
                Some(Ok(seed)) => chaos = Some(seed),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(listen) = listen else {
        return usage();
    };

    shutdown::install_signal_handlers();
    let config = ServerConfig {
        max_inflight,
        max_evals: budget,
        parallelism,
        faults: chaos.map(|seed| Arc::new(FaultPlan::seeded(seed, FaultConfig::CHAOS))),
        ..ServerConfig::new(listen, &ledger)
    };
    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot start: {e}");
            return ExitCode::from(2);
        }
    };
    let budget_str = if budget == 0 { "unlimited".to_string() } else { format!("{budget} evals") };
    eprintln!(
        "[serve] listening on {} (ledger {}, {} row(s) warm, max-inflight {max_inflight}, \
         budget {budget_str})",
        handle.listen(),
        ledger.display(),
        handle.stats().ledger_rows,
    );
    let health = handle.ledger_health();
    if !health.is_clean() || health.duplicates > 0 {
        eprintln!(
            "[serve] ledger repair: {} row(s) quarantined{}, {} duplicate hash(es) \
             (last write wins); see {}",
            health.quarantined,
            if health.truncated { ", torn tail dropped" } else { "" },
            health.duplicates,
            soma_spec::quarantine_path(&ledger).display()
        );
    }
    if let Some(seed) = chaos {
        eprintln!("[serve] CHAOS MODE: injecting deterministic faults (seed {seed})");
    }

    // The accept loop runs on its own thread; this one just waits for a
    // signal. Polling (not parking) because the handler may only flip
    // an atomic.
    while !shutdown::stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("[serve] stop requested — draining in-flight requests");
    let stats = handle.stats();
    handle.shutdown();
    eprintln!(
        "[serve] done: {} served ({} cached), {} rejected, {} ledger row(s)",
        stats.served, stats.cache_hits, stats.rejected, stats.ledger_rows
    );
    ExitCode::SUCCESS
}
