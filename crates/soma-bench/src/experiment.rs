//! Executes a parsed [`ExperimentSpec`]: one [`Scheduler`] portfolio run
//! per cell, in cell order, deterministically — the engine behind
//! `soma-bench --bin run` and the `ci_smoke` spec-reproduction gate.
//!
//! A cell's result is **exactly** what the equivalent hand-written
//! driver produces: `Scheduler::new(&cell.net, &cell.hw)
//! .config(spec.config.clone()).seeds(spec.seeds.clone()).run()` — no
//! hidden seed salting, no effort rescaling. A committed `.soma` file
//! plus this function *is* the run configuration.

use soma_search::{Scheduler, SearchConfig, SearchOutcome};
use soma_spec::{ExperimentCell, ExperimentSpec};

/// One executed experiment cell.
#[derive(Debug)]
pub struct ExperimentRow {
    /// The resolved cell (scenario id, network, platform).
    pub cell: ExperimentCell,
    /// The search outcome of the cell's seed portfolio.
    pub outcome: SearchOutcome,
}

/// Runs every cell of the experiment in order, invoking `progress` after
/// each finished cell. Deterministic: same spec text, same results.
pub fn run_experiment(
    spec: &ExperimentSpec,
    progress: impl FnMut(&ExperimentCell, &SearchOutcome),
) -> Vec<ExperimentRow> {
    run_cells(spec.cells(), &spec.config, &spec.seeds, progress)
}

/// Runs an explicit cell list (e.g. an experiment narrowed by the
/// `SOMA_WORKLOAD` filter) under one configuration and seed portfolio.
pub fn run_cells(
    cells: Vec<ExperimentCell>,
    config: &SearchConfig,
    seeds: &[u64],
    mut progress: impl FnMut(&ExperimentCell, &SearchOutcome),
) -> Vec<ExperimentRow> {
    cells
        .into_iter()
        .map(|cell| {
            let outcome = Scheduler::new(&cell.net, &cell.hw)
                .config(config.clone())
                .seeds(seeds.iter().copied())
                .run();
            progress(&cell, &outcome);
            ExperimentRow { cell, outcome }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_search::SearchConfig;
    use soma_spec::read_experiment;

    #[test]
    fn spec_run_equals_hand_written_driver() {
        let text = "soma-experiment v1\nname t\nscenario fig2@edge/b1\nseeds 7\neffort 0.01\nend\n";
        let spec = read_experiment(text).unwrap();
        let rows = run_experiment(&spec, |_, _| {});
        assert_eq!(rows.len(), 1);

        let net = soma_model::zoo::fig2(1);
        let hw = soma_arch::HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.01, seed: 7, ..SearchConfig::default() };
        let direct = Scheduler::new(&net, &hw).config(cfg).run();
        let got = &rows[0].outcome;
        assert_eq!(got.best.encoding, direct.best.encoding);
        assert_eq!(got.best.report, direct.best.report);
        assert_eq!(got.best.cost.to_bits(), direct.best.cost.to_bits());
        assert_eq!(got.evals, direct.evals);
    }
}
